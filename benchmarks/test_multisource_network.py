"""Benchmark of the multi-source reconfigurable-network substrate.

Not a figure of the paper, but the application its introduction motivates:
per-source self-adjusting trees composed into a bounded-degree datacenter
topology.  The benchmark routes a clustered traffic trace through the network
with Rotor-Push trees and with oblivious static trees and records both
runtimes and the resulting cost/degree statistics.
"""

from __future__ import annotations

from repro.network import MultiSourceNetwork, degree_statistics, multi_source_topology, trace_from_workloads
from repro.workloads import MarkovWorkload

N_NODES = 64
SOURCES = [0, 1, 2, 3]
REQUESTS_PER_SOURCE = 1_000


def _make_trace():
    workloads = {
        source: MarkovWorkload(
            N_NODES, n_neighbours=3, self_loop=0.7, neighbour_probability=0.2, seed=source + 1
        )
        for source in SOURCES
    }
    return trace_from_workloads(
        N_NODES, workloads, requests_per_source=REQUESTS_PER_SOURCE, interleave_seed=9
    )


def _route(algorithm: str):
    network = MultiSourceNetwork(N_NODES, sources=SOURCES, algorithm=algorithm, base_seed=4)
    summary = network.serve_trace(_make_trace())
    return network, summary


def test_multisource_rotor_push(benchmark):
    network, summary = benchmark.pedantic(_route, args=("rotor-push",), rounds=1, iterations=1)
    stats = degree_statistics(multi_source_topology(network))
    benchmark.extra_info["cost_summary"] = summary
    benchmark.extra_info["degree_statistics"] = stats
    assert summary["n_requests"] == len(SOURCES) * REQUESTS_PER_SOURCE
    assert stats["max_degree"] <= 4 * len(SOURCES)


def test_multisource_static_oblivious(benchmark):
    network, summary = benchmark.pedantic(_route, args=("static-oblivious",), rounds=1, iterations=1)
    benchmark.extra_info["cost_summary"] = summary
    assert summary["total_adjustment_cost"] == 0


def test_multisource_rotor_beats_static_on_clustered_traffic():
    _, rotor_summary = _route("rotor-push")
    _, static_summary = _route("static-oblivious")
    assert rotor_summary["total_access_cost"] < static_summary["total_access_cost"]
