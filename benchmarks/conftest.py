"""Shared configuration for the benchmark harness.

Every figure and table of the paper's evaluation has one benchmark module in
this directory.  The benchmarks serve two purposes:

1. they *regenerate the data* behind the corresponding figure (the series are
   attached to the benchmark's ``extra_info`` so they appear in the
   pytest-benchmark report and can be exported with ``--benchmark-json``), and
2. they measure how long the reproduction takes at the chosen scale, which is
   the quantity to watch when scaling up towards the paper's full parameters.

The scale is selected with the ``REPRO_BENCH_SCALE`` environment variable
(default ``tiny``; see :mod:`repro.experiments.config` for the scale table).
Heavy experiment benchmarks run exactly once per session via
``benchmark.pedantic``; micro-benchmarks of the core operations use the normal
pytest-benchmark calibration loop.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import get_scale

#: Scale used by all experiment benchmarks (override with REPRO_BENCH_SCALE).
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Name of the experiment scale used by the benchmark harness."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_config():
    """The :class:`repro.experiments.config.ExperimentScale` of the harness."""
    return get_scale(BENCH_SCALE)


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
