"""Benchmarks for the analytical results checked empirically.

Covers the paper's theory contributions:

* Theorem 7 (Rotor-Push is 12-competitive) - the per-round amortised
  inequality of the credit argument is checked on random input;
* Lemma 8 (no working-set property) - the adversarial construction drives the
  access cost towards the tree depth while the working set stays constant;
* the Section 1.1 lower bound against the naive Move-To-Front generalisation;
* measured cost to working-set-bound ratios for all algorithms (the empirical
  counterpart of the competitive ratios in Table 1).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.table1_properties import (
    run_mtf_lower_bound,
    run_potential_check,
    run_working_set_violation,
    run_ws_bound_ratios,
)


def test_theorem7_amortised_inequality(benchmark):
    summary = run_once(benchmark, run_potential_check, depth=6, n_requests=3_000)
    benchmark.extra_info["summary"] = summary
    assert summary["violations"] == 0.0
    assert summary["max_ratio"] <= 1.0 + 1e-9


def test_lemma8_working_set_violation(benchmark):
    results = run_once(benchmark, run_working_set_violation, [4, 6, 8, 10], 2_500)
    benchmark.extra_info["per_depth"] = [
        {
            "depth": r.depth,
            "working_set_limit": r.working_set_limit,
            "max_access_cost": r.max_access_cost,
            "ratio": r.max_cost_to_log_rank_ratio,
        }
        for r in results
    ]
    # The access cost reaches the tree depth even though the working set stays
    # at 2x - 1 elements, and the violation ratio keeps growing with the depth.
    deepest = results[-1]
    assert deepest.max_access_cost >= deepest.depth
    ratios = [r.max_cost_to_log_rank_ratio for r in results]
    assert ratios == sorted(ratios)


def test_section11_mtf_lower_bound(benchmark):
    table = run_once(benchmark, run_mtf_lower_bound, [3, 5, 7, 9], 40)
    benchmark.extra_info["rows"] = [
        {key: str(value) for key, value in row.items()} for row in table.rows
    ]
    rows = sorted(table.rows, key=lambda row: row["depth"])
    # MTF's steady-state access cost grows linearly with the depth while the
    # number of requested elements grows only linearly in the depth too - the
    # offline optimum would pay O(log depth).
    costs = [row["mean_access_cost"] for row in rows]
    assert costs == sorted(costs)
    assert costs[-1] >= rows[-1]["depth"]


def test_cost_to_working_set_bound_ratios(benchmark):
    table = run_once(benchmark, run_ws_bound_ratios, n_nodes=511, n_requests=6_000)
    ratios = {row["algorithm"]: row["cost_to_ws_bound"] for row in table.rows}
    benchmark.extra_info["ratios"] = ratios
    # The measured ratios stay below the proven competitive ratios (the WS
    # bound is itself a lower bound on OPT, so these are conservative).
    assert ratios["rotor-push"] <= 12
    assert ratios["random-push"] <= 16
    assert ratios["move-half"] <= 64
