#!/usr/bin/env python
"""Perf-trajectory benchmark: serve throughput and parallel trial scaling.

Emits ``BENCH_serve.json`` so that every perf-oriented PR can be measured
against its predecessors on the same hardware.  The measured layers:

* **serve throughput** — whole-run requests/second per algorithm on the
  microbench configuration (1,023-node tree, combined-locality workload,
  ``keep_records=False``), once per serve backend (``python`` scalar loops
  versus ``array`` typed-array placement + vectorised batch serving), plus
  the streaming serve cost with per-request cost records kept; and
* **backend equivalence** — a guard that both backends produce identical
  totals and placements before any throughput number is trusted; and
* **parallel trial scaling** — wall-clock of ``compare_algorithms`` at
  ``n_jobs=1`` versus ``n_jobs=<cpus>``, together with a determinism check
  that both produce identical aggregates; and
* **fan-out payloads** — build time, pickled size and parallel dispatch
  wall-clock of materialised-sequence payloads versus spec-shipped streaming
  payloads for the same trial grid, with a determinism cross-check; and
* **multi-source scenarios** — serve throughput of a spec-shipped
  :class:`repro.plans.NetworkPlan` (per-source trees routing a streamed
  traffic trace), payload size, and an ``n_jobs`` determinism check; and
* **resilience** — cold-run versus warm-cache wall-clock of the smoke
  golden plan through the checkpoint store (``repro.run(plan, cache=...,
  resume=True)``), with a bit-identity check between the two; and
* **corpus scenario** — end-to-end wall-clock of the corpus pipeline plan
  (synthetic corpus → complexity map + per-algorithm cost table), serial
  versus parallel, with an ``n_jobs`` determinism check over both tables; and
* **live serving** — sustained requests/second and p50/p99 enqueue-to-reply
  latency of a real ``repro serve`` daemon (asyncio TCP endpoint, ingest
  log attached) under concurrent client threads, gated on the recorded log
  replaying to the bit-identical live cost table; and
* **telemetry overhead** — the same trial fan-out timed with the real
  :class:`repro.telemetry.MetricsRegistry` versus a
  :class:`~repro.telemetry.NullRegistry` floor, gated on the always-on
  instrumentation costing under :data:`TELEMETRY_BUDGET_PCT` percent (with
  an absolute noise floor so micro-runs don't flap) and on both arms
  producing bit-identical results.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick] [--out BENCH_serve.json]

``--quick`` shrinks the workload for CI smoke runs (a few seconds); the
default configuration matches the numbers recorded in ``BENCH_serve.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import pickle

from repro.algorithms.registry import make_algorithm
from repro.core import backend as backend_mod
from repro.experiments import build_corpus_pipeline_plan
from repro.network.traffic import TrafficSpec
from repro.plans import NetworkPlan, RunConfig, load_golden_plan, plan_with_overrides
from repro.plans.execute import build_network_payloads, last_run_stats, run as run_plan
from repro.resilience import ResultStore
from repro.sim.runner import TrialRunner, compare_algorithms, execute_payloads
from repro.workloads.composite import CombinedLocalityWorkload
from repro.workloads.spec import WorkloadSpec

#: Steady-state whole-run serve cost (microseconds/request, best of 3) of the
#: seed revision (commit 00cf76e) on the reference container, measured with
#: the same configuration as :func:`bench_serve`.  Kept here so every future
#: run reports its speedup against the original implementation.
SEED_BASELINE_US_PER_REQUEST = {
    "rotor-push": 4.548,
    "random-push": 4.341,
    "move-half": 6.729,
    "max-push": 8.053,
    "move-to-front": 3.173,
    "static-oblivious": 2.435,
}

#: All benchmarked algorithms: the seed-baselined six plus Static-Opt (added
#: with the array backend, which vectorises its whole serve loop; it has no
#: seed-era baseline to compare against).
ALGORITHMS = list(SEED_BASELINE_US_PER_REQUEST) + ["static-opt"]


def _chunks_for(n_nodes: int, n_requests: int, backend: str):
    """Materialise the benchmark stream in the backend's transport format.

    Generation happens outside the timed region; what is timed is exactly
    what a pool worker does with chunks in hand: ``run_stream`` into the
    serve path.
    """
    workload = CombinedLocalityWorkload(n_nodes, 1.4, 0.5, seed=1)
    as_array = backend == "array" and backend_mod.HAS_NUMPY
    return list(workload.iter_requests(n_requests, as_array=as_array))


def bench_serve(
    n_nodes: int, n_requests: int, repeats: int, backend: str, reference: dict = None
) -> dict:
    """Whole-run serve throughput per algorithm (keep_records=False fast loop).

    ``reference`` (the python-backend result, when benchmarking the array
    backend) adds a ``speedup_vs_python`` figure per algorithm.
    """
    chunks = _chunks_for(n_nodes, n_requests, backend)
    results = {}
    for name in ALGORITHMS:
        best = float("inf")
        for _ in range(repeats):
            instance = make_algorithm(
                name,
                n_nodes=n_nodes,
                placement_seed=2,
                seed=3,
                keep_records=False,
                backend=backend,
            )
            start = time.perf_counter()
            instance.run_stream(chunks)
            best = min(best, time.perf_counter() - start)
        us_per_request = best / n_requests * 1e6
        entry = {
            "backend": backend,
            "us_per_request": round(us_per_request, 4),
            "requests_per_sec": round(n_requests / best),
        }
        baseline = SEED_BASELINE_US_PER_REQUEST.get(name)
        if baseline is not None:
            entry["seed_us_per_request"] = baseline
            entry["speedup_vs_seed"] = round(baseline / us_per_request, 2)
        if reference is not None:
            entry["speedup_vs_python"] = round(
                reference[name]["us_per_request"] / us_per_request, 2
            )
        results[name] = entry
    return results


def bench_serve_with_records(
    n_nodes: int, n_requests: int, repeats: int, backend: str
) -> dict:
    """Streaming serve cost with per-request cost records retained.

    Measures the columnar record path end to end: the run buffers every
    record and the consumer then reads all of them (iterating
    ``RunResult.per_request`` materialises one :class:`RequestCost` per
    request), so buffering *and* lazy materialisation are both inside the
    timed region — comparable to the pre-columnar numbers, which built one
    record object per request while serving.
    """
    chunks = _chunks_for(n_nodes, n_requests, backend)
    results = {}
    for name in ("rotor-push", "static-oblivious"):
        best = float("inf")
        for _ in range(repeats):
            instance = make_algorithm(
                name,
                n_nodes=n_nodes,
                placement_seed=2,
                seed=3,
                keep_records=True,
                backend=backend,
            )
            start = time.perf_counter()
            result = instance.run_stream(chunks)
            consumed = sum(record.access_cost for record in result.per_request)
            best = min(best, time.perf_counter() - start)
        assert len(result.per_request) == n_requests
        assert consumed == result.total_access_cost
        results[name] = {
            "backend": backend,
            "us_per_request": round(best / n_requests * 1e6, 4),
            "requests_per_sec": round(n_requests / best),
        }
    return results


def bench_backend_equivalence(n_nodes: int, n_requests: int) -> dict:
    """Assert both backends produce identical costs and placements."""
    identical = True
    for name in ALGORITHMS:
        outcomes = {}
        for backend in ("python", "array"):
            chunks = _chunks_for(n_nodes, n_requests, backend)
            instance = make_algorithm(
                name,
                n_nodes=n_nodes,
                placement_seed=2,
                seed=3,
                keep_records=False,
                backend=backend,
            )
            result = instance.run_stream(chunks)
            outcomes[backend] = (
                result.total_access_cost,
                result.total_adjustment_cost,
                result.n_requests,
                instance.network.placement(),
            )
        identical = identical and outcomes["python"] == outcomes["array"]
    return {"identical": identical}


def bench_parallel(n_nodes: int, n_requests: int, n_trials: int) -> dict:
    """Wall-clock of compare_algorithms at n_jobs=1 vs n_jobs=<cpus> + determinism."""
    algorithms = ["rotor-push", "random-push", "move-half", "max-push"]

    def factory(seed: int) -> CombinedLocalityWorkload:
        return CombinedLocalityWorkload(n_nodes, 1.4, 0.5, seed=seed)

    def timed(n_jobs: int):
        start = time.perf_counter()
        aggregated = compare_algorithms(
            algorithms,
            factory,
            n_nodes=n_nodes,
            config=RunConfig(
                n_requests=n_requests, n_trials=n_trials, n_jobs=n_jobs
            ),
        )
        return time.perf_counter() - start, aggregated

    cpus = os.cpu_count() or 1
    serial_seconds, serial = timed(1)
    parallel_jobs = max(2, cpus)
    parallel_seconds, parallel = timed(parallel_jobs)
    identical = all(
        serial[name].access_cost == parallel[name].access_cost
        and serial[name].adjustment_cost == parallel[name].adjustment_cost
        and serial[name].total_cost == parallel[name].total_cost
        for name in algorithms
    )
    return {
        "cpus": cpus,
        "n_trials": n_trials,
        "n_jobs_parallel": parallel_jobs,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(serial_seconds / parallel_seconds, 2),
        "deterministic": identical,
    }


def bench_fanout(n_nodes: int, n_requests: int, n_trials: int, n_jobs: int) -> dict:
    """Payload build + dispatch cost: materialised sequences vs shipped specs."""
    algorithms = ["rotor-push", "static-oblivious"]

    def factory(seed: int) -> CombinedLocalityWorkload:
        return CombinedLocalityWorkload(n_nodes, 1.4, 0.5, seed=seed)

    runner = TrialRunner(
        n_nodes=n_nodes, n_requests=n_requests, n_trials=n_trials, base_seed=1
    )

    start = time.perf_counter()
    sequences = runner.trial_sequences(factory)
    materialised = runner.build_payloads(algorithms, sequences)
    materialised_build = time.perf_counter() - start
    materialised_bytes = len(pickle.dumps(materialised))

    start = time.perf_counter()
    sources = runner.trial_sources(factory)
    spec_payloads = runner.build_payloads(algorithms, sources)
    spec_build = time.perf_counter() - start
    spec_bytes = len(pickle.dumps(spec_payloads))

    start = time.perf_counter()
    materialised_results = execute_payloads(materialised, n_jobs)
    materialised_dispatch = time.perf_counter() - start

    start = time.perf_counter()
    spec_results = execute_payloads(spec_payloads, n_jobs)
    spec_dispatch = time.perf_counter() - start

    identical = all(
        left.to_dict() == right.to_dict()
        for left, right in zip(materialised_results, spec_results)
    )
    return {
        "n_payloads": len(spec_payloads),
        "n_jobs": n_jobs,
        "materialised": {
            "build_seconds": round(materialised_build, 4),
            "payload_bytes": materialised_bytes,
            "dispatch_seconds": round(materialised_dispatch, 3),
        },
        "spec": {
            "build_seconds": round(spec_build, 4),
            "payload_bytes": spec_bytes,
            "dispatch_seconds": round(spec_dispatch, 3),
        },
        "payload_bytes_ratio": round(materialised_bytes / max(1, spec_bytes), 1),
        "deterministic": identical,
    }


def bench_multisource(
    n_nodes: int, n_sources: int, requests_per_source: int, n_jobs: int
) -> dict:
    """Spec-shipped multi-source serve throughput + payload size + determinism.

    Times ``repro.run`` on a :class:`repro.plans.NetworkPlan` (the PR-5
    plan-native path: workers rebuild the network and stream the trace), then
    re-runs it at ``n_jobs`` workers and cross-checks bit-identity.  The
    payload size shows what actually crosses the process boundary — specs,
    never a trace.
    """
    traffic = TrafficSpec.create(
        n_nodes,
        {
            source: WorkloadSpec.create(
                "combined-locality",
                n_elements=n_nodes,
                zipf_exponent=1.4,
                repeat_probability=0.5,
            )
            for source in range(n_sources)
        },
        interleaving="uniform_pairs",
    )
    plan = NetworkPlan(
        name="bench_multisource",
        traffic=traffic,
        algorithm="rotor-push",
        config=RunConfig(
            n_requests=requests_per_source, n_trials=2, base_seed=1
        ),
    )
    payload_bytes = len(pickle.dumps(build_network_payloads(plan)))
    total_requests = plan.config.n_trials * n_sources * requests_per_source

    start = time.perf_counter()
    serial = run_plan(plan)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_plan(plan_with_overrides(plan, n_jobs=n_jobs))
    parallel_seconds = time.perf_counter() - start

    return {
        "n_nodes": n_nodes,
        "n_sources": n_sources,
        "requests_per_source": requests_per_source,
        "n_trials": plan.config.n_trials,
        "payload_bytes": payload_bytes,
        "us_per_request": round(serial_seconds / total_requests * 1e6, 4),
        "requests_per_sec": round(total_requests / serial_seconds),
        "n_jobs_parallel": n_jobs,
        "parallel_seconds": round(parallel_seconds, 3),
        "serial_seconds": round(serial_seconds, 3),
        "deterministic": serial.rows == parallel.rows,
    }


def bench_resilience(n_trials: int, n_requests: int) -> dict:
    """Cold-run vs warm-cache wall-clock of the smoke golden plan.

    The checkpoint layer's overhead budget: the cold run pays one content
    hash + atomic write per trial on top of the plain fan-out; the warm
    ``resume=True`` re-run serves every trial from the store and should cost
    hashing + JSON parsing only.  Both must produce the bit-identical table.
    """
    plan = plan_with_overrides(
        load_golden_plan("smoke"), n_trials=n_trials, n_requests=n_requests
    )
    baseline = run_plan(plan)
    with tempfile.TemporaryDirectory(prefix="bench-resilience-") as cache_dir:
        start = time.perf_counter()
        cold = run_plan(plan, cache=cache_dir)
        cold_seconds = time.perf_counter() - start
        entries = len(ResultStore(cache_dir))
        start = time.perf_counter()
        warm = run_plan(plan, cache=cache_dir, resume=True)
        warm_seconds = time.perf_counter() - start
        stats = last_run_stats()
    return {
        "plan": "smoke",
        "n_trials": n_trials,
        "n_requests": n_requests,
        "entries": entries,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(cold_seconds / max(warm_seconds, 1e-9), 1),
        "warm_cache_hits": stats.cache_hits,
        "warm_executed": stats.executed,
        "deterministic": baseline.rows == cold.rows == warm.rows,
    }


def bench_corpus(n_books: int, scale: float, max_requests: int, n_jobs: int) -> dict:
    """End-to-end wall-clock of the corpus pipeline scenario plan.

    The PR-7 scenario path: ``corpus`` recipe specs ship to pool workers,
    which rebuild the synthetic books and stream the sliding-window sequence
    into the serve path; the complexity map is computed parent-side.  Serial
    and parallel runs must produce bit-identical tables.
    """
    plan = build_corpus_pipeline_plan(
        n_books=n_books, scale=scale, max_requests=max_requests
    )
    start = time.perf_counter()
    serial = run_plan(plan)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_plan(plan_with_overrides(plan, n_jobs=n_jobs))
    parallel_seconds = time.perf_counter() - start

    n_payloads = len(serial["corpus_costs"].rows)
    return {
        "n_books": n_books,
        "scale": scale,
        "max_requests": max_requests,
        "n_payloads": n_payloads,
        "serial_seconds": round(serial_seconds, 3),
        "n_jobs_parallel": n_jobs,
        "parallel_seconds": round(parallel_seconds, 3),
        "deterministic": all(
            serial[key].rows == parallel[key].rows for key in serial
        ),
    }


def bench_live(
    n_nodes: int, n_sources: int, n_requests: int, batch_size: int
) -> dict:
    """Sustained live-serve throughput and enqueue-to-reply latency.

    One real :class:`repro.serve.server.ServeServer` (asyncio daemon, TCP,
    ingest log attached) driven by one concurrent client thread per source;
    every ``request_batch`` round-trip is timed client-side, giving the
    enqueue-to-reply latency distribution under concurrent load.  The
    recorded ingest log is then replayed through ``repro.run`` and must
    reproduce the live cost table exactly — the determinism gate of the
    live-serve subsystem.
    """
    import random
    import threading

    from repro.serve.client import ServeClient
    from repro.serve.replay import build_replay_plan
    from repro.serve.server import ServeServer

    with tempfile.TemporaryDirectory(prefix="bench-live-") as root:
        log_dir = Path(root) / "ingest"
        server = ServeServer(
            n_nodes=n_nodes, algorithm="rotor-push", log_dir=str(log_dir)
        ).start()
        latencies: list = []
        lock = threading.Lock()

        def drive(index: int) -> None:
            with ServeClient(server.address) as client:
                client.open(f"source-{index}")
                rng = random.Random(1_000 + index)
                local = []
                remaining = n_requests
                while remaining:
                    size = min(batch_size, remaining)
                    batch = [rng.randrange(n_nodes) for _ in range(size)]
                    begin = time.perf_counter()
                    client.request_batch(batch)
                    local.append(time.perf_counter() - begin)
                    remaining -= size
                client.drain()
            with lock:
                latencies.extend(local)

        threads = [
            threading.Thread(target=drive, args=(index,), daemon=True)
            for index in range(n_sources)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        live_table = server.engine.cost_table()
        server.stop()
        replayed = run_plan(build_replay_plan(log_dir))

    total = n_sources * n_requests
    ordered = sorted(latencies)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(int(len(ordered) * 0.99), len(ordered) - 1)]
    return {
        "n_nodes": n_nodes,
        "n_sources": n_sources,
        "requests_per_source": n_requests,
        "batch_size": batch_size,
        "wall_seconds": round(wall, 3),
        "req_per_s": round(total / wall),
        "batch_p50_ms": round(p50 * 1_000, 3),
        "batch_p99_ms": round(p99 * 1_000, 3),
        "deterministic": replayed.rows == live_table.rows
        and replayed.format_text() == live_table.format_text(),
    }


#: Telemetry overhead budget: full instrumentation may cost at most this
#: fraction of the NullRegistry floor on the trial fan-out.
TELEMETRY_BUDGET_PCT = 2.0

#: Absolute wall-clock slack under which an overhead measurement is treated
#: as CI noise rather than a regression (quick runs finish in well under a
#: second, where scheduler jitter alone exceeds 2%).
TELEMETRY_NOISE_FLOOR_SECONDS = 0.05


def bench_telemetry(n_nodes: int, n_requests: int, n_trials: int, repeats: int) -> dict:
    """Instrumentation overhead: default registry vs the NullRegistry floor.

    Runs the identical serial trial fan-out ``repeats`` times per arm
    (alternating arms so clock drift hits both equally), keeps the best
    wall-clock of each, and reports the relative overhead.  The arms must
    also produce bit-identical result documents — telemetry that moves
    results is a bug regardless of its cost.
    """
    from repro.telemetry.registry import MetricsRegistry, NullRegistry, use_registry

    algorithms = ["rotor-push", "static-oblivious"]

    def factory(seed: int) -> CombinedLocalityWorkload:
        return CombinedLocalityWorkload(n_nodes, 1.4, 0.5, seed=seed)

    runner = TrialRunner(
        n_nodes=n_nodes, n_requests=n_requests, n_trials=n_trials, base_seed=1
    )
    payloads = runner.build_payloads(algorithms, runner.trial_sources(factory))

    best = {"instrumented": float("inf"), "floor": float("inf")}
    documents: dict = {}
    for _ in range(repeats):
        for arm, registry_factory in (
            ("floor", NullRegistry),
            ("instrumented", MetricsRegistry),
        ):
            with use_registry(registry_factory()):
                start = time.perf_counter()
                results = execute_payloads(payloads, 1)
                elapsed = time.perf_counter() - start
            best[arm] = min(best[arm], elapsed)
            documents[arm] = [result.to_dict() for result in results]

    delta = best["instrumented"] - best["floor"]
    overhead_pct = delta / best["floor"] * 100
    return {
        "n_payloads": len(payloads),
        "repeats": repeats,
        "floor_seconds": round(best["floor"], 4),
        "instrumented_seconds": round(best["instrumented"], 4),
        "overhead_pct": round(overhead_pct, 3),
        "budget_pct": TELEMETRY_BUDGET_PCT,
        "within_budget": (
            overhead_pct <= TELEMETRY_BUDGET_PCT
            or delta <= TELEMETRY_NOISE_FLOOR_SECONDS
        ),
        "deterministic": documents["floor"] == documents["instrumented"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke configuration")
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)

    if args.quick:
        serve_nodes, serve_requests, repeats = 255, 4_000, 2
        par_nodes, par_requests, par_trials = 255, 2_000, 2
        multi_nodes, multi_sources, multi_rps = 255, 8, 500
        resil_trials, resil_requests = 2, 2_000
        corpus_books, corpus_scale, corpus_requests = 2, 0.05, 2_000
        live_nodes, live_sources, live_requests, live_batch = 255, 2, 600, 8
    else:
        serve_nodes, serve_requests, repeats = 1_023, 20_000, 3
        par_nodes, par_requests, par_trials = 1_023, 30_000, 4
        multi_nodes, multi_sources, multi_rps = 1_023, 16, 2_000
        resil_trials, resil_requests = 3, 20_000
        corpus_books, corpus_scale, corpus_requests = 3, 0.15, 30_000
        live_nodes, live_sources, live_requests, live_batch = 1_023, 4, 5_000, 16

    serve_python = bench_serve(serve_nodes, serve_requests, repeats, "python")
    report = {
        "benchmark": "BENCH_serve",
        "quick": args.quick,
        "config": {
            "serve": {"n_nodes": serve_nodes, "n_requests": serve_requests},
            "parallel": {
                "n_nodes": par_nodes,
                "n_requests": par_requests,
                "n_trials": par_trials,
            },
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "numpy": backend_mod.np.__version__ if backend_mod.HAS_NUMPY else None,
        },
        "backend_equivalence": bench_backend_equivalence(
            serve_nodes, min(serve_requests, 5_000)
        ),
        "serve_fast_loop": serve_python,
        "serve_fast_loop_array": bench_serve(
            serve_nodes, serve_requests, repeats, "array", reference=serve_python
        ),
        "serve_with_records": bench_serve_with_records(
            serve_nodes, serve_requests, repeats, "python"
        ),
        "serve_with_records_array": bench_serve_with_records(
            serve_nodes, serve_requests, repeats, "array"
        ),
        "parallel_trials": bench_parallel(par_nodes, par_requests, par_trials),
        "fanout_payloads": bench_fanout(
            par_nodes, par_requests, par_trials, max(2, os.cpu_count() or 1)
        ),
        "multisource": bench_multisource(
            multi_nodes, multi_sources, multi_rps, max(2, os.cpu_count() or 1)
        ),
        "resilience": bench_resilience(resil_trials, resil_requests),
        "live_serve": bench_live(
            live_nodes, live_sources, live_requests, live_batch
        ),
        "corpus_scenario": bench_corpus(
            corpus_books,
            corpus_scale,
            corpus_requests,
            max(2, os.cpu_count() or 1),
        ),
        "telemetry": bench_telemetry(
            par_nodes, par_requests, max(2, par_trials // 2), repeats
        ),
    }

    payload = json.dumps(report, indent=2)
    print(payload)
    if args.out:
        Path(args.out).write_text(payload + "\n")
        print(f"\nwrote {args.out}", file=sys.stderr)

    if not report["backend_equivalence"]["identical"]:
        print("ERROR: array backend diverged from python backend", file=sys.stderr)
        return 1
    if not report["parallel_trials"]["deterministic"]:
        print("ERROR: parallel run diverged from serial run", file=sys.stderr)
        return 1
    if not report["fanout_payloads"]["deterministic"]:
        print("ERROR: spec dispatch diverged from materialised dispatch", file=sys.stderr)
        return 1
    if not report["multisource"]["deterministic"]:
        print("ERROR: parallel multisource run diverged from serial", file=sys.stderr)
        return 1
    if not report["resilience"]["deterministic"]:
        print("ERROR: cached/resumed run diverged from direct run", file=sys.stderr)
        return 1
    if report["resilience"]["warm_executed"] != 0:
        print("ERROR: warm-cache run re-executed trials", file=sys.stderr)
        return 1
    if not report["corpus_scenario"]["deterministic"]:
        print("ERROR: parallel corpus scenario diverged from serial", file=sys.stderr)
        return 1
    if not report["live_serve"]["deterministic"]:
        print("ERROR: ingest-log replay diverged from the live session", file=sys.stderr)
        return 1
    if not report["telemetry"]["deterministic"]:
        print("ERROR: instrumented run diverged from the NullRegistry run", file=sys.stderr)
        return 1
    if not report["telemetry"]["within_budget"]:
        print(
            f"ERROR: telemetry overhead {report['telemetry']['overhead_pct']}% "
            f"exceeds the {TELEMETRY_BUDGET_PCT}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
