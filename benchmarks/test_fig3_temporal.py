"""Benchmark / regeneration target for Figure 3 (Q2, temporal locality sweep).

Regenerates, for every algorithm and repeat probability ``p``, the average
access and adjustment cost per request.  Paper shape: all self-adjusting
algorithms get cheaper as ``p`` grows; Rotor-Push and Random-Push are the best
and drop below Static-Opt at high ``p``; Max-Push's adjustment cost dominates.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.q2_temporal import run_q2, series_for_plot


def test_fig3_temporal_locality(benchmark, bench_scale):
    table = run_once(benchmark, run_q2, bench_scale)
    totals = series_for_plot(table, metric="mean_total_cost")
    access = series_for_plot(table, metric="mean_access_cost")
    adjust = series_for_plot(table, metric="mean_adjustment_cost")
    benchmark.extra_info["total_cost_series"] = totals
    benchmark.extra_info["access_cost_series"] = access
    benchmark.extra_info["adjustment_cost_series"] = adjust

    # Self-adjusting algorithms benefit from temporal locality.
    for algorithm in ("rotor-push", "random-push", "move-half", "max-push"):
        assert totals[algorithm][-1] < totals[algorithm][0]
    # Rotor-Push and Random-Push overtake Static-Opt at the highest p.
    assert totals["rotor-push"][-1] < totals["static-opt"][-1]
    assert totals["random-push"][-1] < totals["static-opt"][-1]
    # Max-Push pays the highest adjustment cost at every p value.
    for index in range(len(adjust["max-push"])):
        assert adjust["max-push"][index] == max(
            adjust[name][index] for name in adjust
        )
    # The static trees never adjust.
    assert all(value == 0.0 for value in adjust["static-oblivious"])
    assert all(value == 0.0 for value in adjust["static-opt"])
