"""Benchmark / regeneration target for Figure 4 (Q3, spatial locality sweep).

Regenerates, per algorithm and Zipf exponent ``a``, the average access and
adjustment cost per request.  Paper shape: all self-adjusting algorithms
exploit spatial locality; Rotor-Push, Random-Push and Max-Push achieve similar
access costs; Static-Opt remains the cheapest overall in the purely spatial
scenarios; the self-adjusting trees overtake Static-Oblivious as ``a`` grows.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.q3_spatial import run_q3, series_for_plot


def test_fig4_spatial_locality(benchmark, bench_scale):
    table = run_once(benchmark, run_q3, bench_scale)
    totals = series_for_plot(table, metric="mean_total_cost")
    access = series_for_plot(table, metric="mean_access_cost")
    benchmark.extra_info["total_cost_series"] = totals
    benchmark.extra_info["access_cost_series"] = access

    # Spatial locality reduces the cost of every self-adjusting algorithm.
    for algorithm in ("rotor-push", "random-push", "max-push", "move-half"):
        assert totals[algorithm][-1] < totals[algorithm][0]
    # Static-Opt is the best algorithm at every exponent of the sweep.
    for index in range(len(totals["static-opt"])):
        assert totals["static-opt"][index] == min(
            totals[name][index] for name in totals
        )
    # At the most skewed setting the self-adjusting trees beat Static-Oblivious.
    assert totals["rotor-push"][-1] < totals["static-oblivious"][-1]
    assert totals["random-push"][-1] < totals["static-oblivious"][-1]
