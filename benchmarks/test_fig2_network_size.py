"""Benchmark / regeneration targets for Figures 2a and 2b (Q1, network-size sweep).

The regenerated series is, per self-adjusting algorithm and tree size, the
difference of its average total cost minus Static-Oblivious's - negative values
mean self-adjustment pays off.  The paper's shape to reproduce: the benefit
grows (the difference becomes more negative) as the tree gets larger, under
both high temporal locality (p = 0.9, Figure 2a) and high spatial locality
(Zipf a = 2.2, Figure 2b).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.q1_network_size import benefit_by_size, run_q1_spatial, run_q1_temporal


def _series(table):
    algorithms = sorted({row["algorithm"] for row in table.rows})
    return {algorithm: benefit_by_size(table, algorithm) for algorithm in algorithms}


def test_fig2a_size_sweep_temporal(benchmark, bench_scale):
    table = run_once(benchmark, run_q1_temporal, bench_scale)
    series = _series(table)
    benchmark.extra_info["difference_vs_static_oblivious"] = series
    # Paper shape: the rotor-push benefit is larger (more negative) on the
    # largest tree of the sweep than on the smallest.
    assert series["rotor-push"][-1] < series["rotor-push"][0]
    assert series["random-push"][-1] < series["random-push"][0]


def test_fig2b_size_sweep_spatial(benchmark, bench_scale):
    table = run_once(benchmark, run_q1_spatial, bench_scale)
    series = _series(table)
    benchmark.extra_info["difference_vs_static_oblivious"] = series
    assert series["rotor-push"][-1] < series["rotor-push"][0]
    # Under Zipf a = 2.2 every self-adjusting algorithm ends up cheaper than
    # the oblivious static tree on the largest size (negative difference).
    for algorithm, values in series.items():
        assert values[-1] < 0, f"{algorithm} should beat Static-Oblivious at the largest size"
