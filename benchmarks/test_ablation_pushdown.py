"""Ablation benchmarks for the design decisions called out in DESIGN.md.

* **Push-down realisation** - the augmented push-down can be executed as
  explicit adjacent swaps (faithful to the proof of Lemma 1) or as a direct
  cyclic shift with an analytic swap charge; both yield identical trees and
  costs, so the cheaper one is used in large simulations.  The ablation
  measures how much the fast path buys.
* **Flip-rank queries** - flip-ranks are recomputed on demand from the rotor
  pointers (O(depth) per query, zero maintenance cost on the serve path); the
  ablation measures the query cost against the rotor-walk simulation
  alternative so the trade-off recorded in DESIGN.md stays quantified.
* **Move-Half realisation** - explicit path swaps vs analytic exchange.
"""

from __future__ import annotations

from repro.algorithms import make_algorithm
from repro.core import CompleteBinaryTree, RotorState
from repro.workloads import CombinedLocalityWorkload

DEPTH = 8
N_NODES = (1 << (DEPTH + 1)) - 1
N_REQUESTS = 4_000


def _run(algorithm_name: str, **kwargs) -> float:
    workload = CombinedLocalityWorkload(N_NODES, 1.4, 0.5, seed=11)
    sequence = workload.generate(N_REQUESTS)
    algorithm = make_algorithm(
        algorithm_name, n_nodes=N_NODES, placement_seed=5, seed=7, keep_records=False, **kwargs
    )
    return algorithm.run(sequence).total_cost


def test_ablation_rotor_push_cycle_fast_path(benchmark):
    """Rotor-Push with the direct cyclic shift (the default fast path)."""
    total = benchmark.pedantic(_run, args=("rotor-push",), kwargs={"exact_swaps": False}, rounds=3, iterations=1)
    benchmark.extra_info["total_cost"] = total


def test_ablation_rotor_push_exact_swaps(benchmark):
    """Rotor-Push materialising every adjacent swap (the Lemma 1 procedure)."""
    total = benchmark.pedantic(_run, args=("rotor-push",), kwargs={"exact_swaps": True}, rounds=3, iterations=1)
    benchmark.extra_info["total_cost"] = total


def test_ablation_costs_identical_between_realisations():
    """The ablation is purely about runtime: costs and trees must be identical."""
    assert _run("rotor-push", exact_swaps=False) == _run("rotor-push", exact_swaps=True)


def test_ablation_move_half_exact_swaps(benchmark):
    total = benchmark.pedantic(_run, args=("move-half",), kwargs={"exact_swaps": True}, rounds=3, iterations=1)
    benchmark.extra_info["total_cost"] = total


def test_ablation_move_half_analytic_exchange(benchmark):
    total = benchmark.pedantic(_run, args=("move-half",), kwargs={"exact_swaps": False}, rounds=3, iterations=1)
    benchmark.extra_info["total_cost"] = total


def test_ablation_flip_rank_on_demand(benchmark):
    """Recompute flip-ranks from pointers (the implementation used by the analysis)."""
    state = RotorState(CompleteBinaryTree.from_depth(10))
    nodes = list(state.tree.nodes_at_level(10))[:512]

    def query_all():
        return sum(state.flip_rank(node) for node in nodes)

    assert benchmark(query_all) >= 0


def test_ablation_flip_rank_via_simulation(benchmark):
    """Obtain the same information by simulating flips (the naive alternative)."""
    state = RotorState(CompleteBinaryTree.from_depth(6))

    def simulate_level():
        visited = state.simulate_flip_sequence(6, (1 << 6) - 1)
        return len(visited)

    assert benchmark(simulate_level) == 64
