"""Benchmark / regeneration target for Table 1 (algorithm properties).

Reproduces the property table: determinism, empirical working-set-property
ratios (via the Lemma 8 adversarial construction for Rotor-Push), measured
cost-to-working-set-bound ratios and the known competitive ratios.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.table1_properties import run_table1


def test_table1_properties(benchmark):
    table = run_once(benchmark, run_table1, adversary_depths=[4, 6, 8], n_nodes=255, n_requests=4_000)
    assert len(table) == 6
    by_algorithm = {row["algorithm"]: row for row in table.rows}
    # Headline checks of the paper's Table 1.
    assert by_algorithm["rotor-push"]["known_competitive_ratio"] == 12
    assert by_algorithm["random-push"]["known_competitive_ratio"] == 16
    assert (
        by_algorithm["rotor-push"]["ws_property_ratio"]
        > by_algorithm["random-push"]["ws_property_ratio"]
    )
    benchmark.extra_info["table"] = [
        {key: str(value) for key, value in row.items()} for row in table.rows
    ]
