"""Benchmark / regeneration target for Figure 6 (Q5, complexity map of the corpus).

Places every book-derived request sequence on the temporal / non-temporal
complexity map.  Paper shape: the books have moderate temporal complexity and
high non-temporal complexity, i.e. they carry usable locality of both kinds but
are far from maximally compressible.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.q5_corpus import run_q5_complexity_map


def test_fig6_complexity_map(benchmark, bench_scale):
    table = run_once(benchmark, run_q5_complexity_map, bench_scale)
    benchmark.extra_info["complexity_points"] = [
        {
            "dataset": row["dataset"],
            "temporal": row["temporal_complexity"],
            "non_temporal": row["non_temporal_complexity"],
        }
        for row in table.rows
    ]
    assert len(table) == 5
    for row in table.rows:
        # Text-derived traces must show real temporal structure (complexity
        # clearly below 1) while keeping fairly high non-temporal complexity,
        # which is the region the paper's five books occupy.
        assert row["temporal_complexity"] < 0.95
        assert row["non_temporal_complexity"] > 0.4
