"""Micro-benchmarks of the core operations and per-algorithm serve throughput.

These are conventional pytest-benchmark timing loops (not figure
regenerations): they quantify the cost of the substrate primitives that every
experiment is built on, which is what matters when scaling runs towards the
paper's 65,535-node / 10^6-request configuration.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms import make_algorithm
from repro.core import CompleteBinaryTree, RotorState, TreeNetwork
from repro.core.pushdown import apply_pushdown_cycle
from repro.workloads import CombinedLocalityWorkload

DEPTH = 9  # 1,023 nodes
N_NODES = (1 << (DEPTH + 1)) - 1


def test_tree_path_queries(benchmark):
    tree = CompleteBinaryTree.from_depth(DEPTH)
    leaves = list(tree.leaves())

    def query():
        total = 0
        for leaf in leaves[:256]:
            total += len(tree.path_to_root(leaf))
        return total

    assert benchmark(query) > 0


def test_rotor_flip_and_flip_rank(benchmark):
    state = RotorState(CompleteBinaryTree.from_depth(DEPTH))
    leaf = state.tree.first_node_at_level(DEPTH)

    def flip_and_rank():
        state.flip(DEPTH)
        return state.flip_rank(leaf)

    assert benchmark(flip_and_rank) >= 0


def test_pushdown_cycle_throughput(benchmark):
    network = TreeNetwork(CompleteBinaryTree.from_depth(DEPTH))
    tree = network.tree
    rng = random.Random(7)
    leaf_level = tree.depth

    def one_pushdown():
        offset_u = rng.randrange(tree.level_size(leaf_level))
        offset_v = rng.randrange(tree.level_size(leaf_level))
        u = tree.node_at(leaf_level, offset_u)
        v = tree.node_at(leaf_level, offset_v)
        network.ledger.open_request(0, leaf_level)
        swaps = apply_pushdown_cycle(network, u, v)
        network.ledger.close_request()
        return swaps

    assert benchmark(one_pushdown) >= 0


@pytest.mark.parametrize(
    "algorithm",
    ["rotor-push", "random-push", "move-half", "max-push", "static-oblivious"],
)
def test_algorithm_serve_throughput(benchmark, algorithm):
    """Time per served request for every online algorithm on a 1,023-node tree."""
    workload = CombinedLocalityWorkload(N_NODES, 1.4, 0.5, seed=1)
    sequence = workload.generate(20_000)
    instance = make_algorithm(
        algorithm, n_nodes=N_NODES, placement_seed=2, seed=3, keep_records=False
    )
    iterator = iter(sequence)

    def serve_one():
        nonlocal iterator
        try:
            element = next(iterator)
        except StopIteration:
            iterator = iter(sequence)
            element = next(iterator)
        return instance.serve(element)

    result = benchmark(serve_one)
    assert result.access_cost >= 1
