"""Benchmark / regeneration target for Figure 7 (Q5, per-book algorithm costs).

Runs all six algorithms on every corpus dataset and regenerates the per-book
cost bars.  Paper shape: Rotor-Push and Random-Push are the best self-adjusting
algorithms with near-identical performance, their access cost is close to
Static-Opt's, and the adjustment cost remains visible because the corpus data
has only moderate locality.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.q5_corpus import run_q5_costs


def test_fig7_corpus_costs(benchmark, bench_scale):
    table = run_once(benchmark, run_q5_costs, bench_scale)
    benchmark.extra_info["rows"] = [
        {key: str(value) for key, value in row.items()} for row in table.rows
    ]
    datasets = sorted({row["dataset"] for row in table.rows})
    assert len(datasets) == 5

    for dataset in datasets:
        rows = {row["algorithm"]: row for row in table.rows if row["dataset"] == dataset}
        rotor = rows["rotor-push"]
        random_push = rows["random-push"]
        # Rotor-Push and Random-Push perform nearly identically on every book.
        assert abs(rotor["mean_total_cost"] - random_push["mean_total_cost"]) <= 0.5
        # Among the self-adjusting algorithms, Rotor/Random are at (or within a
        # small margin of) the best total cost, and Max-Push is never the best
        # (its adjustment cost dominates).  At reduced scale Move-Half can be
        # marginally cheaper, exactly as the paper notes for Q2.
        self_adjusting = ["rotor-push", "random-push", "move-half", "max-push"]
        best = min(self_adjusting, key=lambda name: rows[name]["mean_total_cost"])
        assert best != "max-push"
        best_cost = rows[best]["mean_total_cost"]
        assert rotor["mean_total_cost"] <= best_cost * 1.25
        # Their access cost is in the same ballpark as the static optimum's.
        assert rotor["mean_access_cost"] <= rows["static-opt"]["mean_access_cost"] * 2.5
