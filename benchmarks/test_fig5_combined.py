"""Benchmark / regeneration targets for Figures 5a and 5b (Q4).

Figure 5a: total-cost difference of Rotor-Push minus Static-Oblivious over the
grid of temporal (``p``) and spatial (``a``) locality parameters - combined
locality gives the largest improvements (most negative corner at high p / a).

Figure 5b: histogram of the per-request access-cost difference between
Rotor-Push and Random-Push over uniform sequences - tightly concentrated
around zero with a near-zero mean (the paper reports a mean of -0.0003 and
differences bounded by 4 in absolute value).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.q4_combined import run_q4_histogram, run_q4_wireframe, wireframe_grid


def test_fig5a_combined_locality_wireframe(benchmark, bench_scale):
    table = run_once(benchmark, run_q4_wireframe, bench_scale)
    probabilities, exponents, grid = wireframe_grid(table)
    benchmark.extra_info["p_values"] = probabilities
    benchmark.extra_info["a_values"] = exponents
    benchmark.extra_info["difference_grid"] = grid
    # The high-locality corner improves on the no-locality corner.
    assert grid[-1][-1] < grid[0][0]
    # Along the last row (highest p) the difference decreases with a.
    assert grid[-1][-1] <= grid[-1][0]


def test_fig5b_rotor_vs_random_histogram(benchmark, bench_scale):
    histogram, summary = run_once(benchmark, run_q4_histogram, bench_scale)
    benchmark.extra_info["mean_difference"] = summary["mean_difference"]
    benchmark.extra_info["max_abs_difference"] = summary["max_abs_difference"]
    benchmark.extra_info["histogram"] = {
        str(value): count for value, count, _ in histogram.as_rows()
    }
    # Concentration around zero, as in the paper.
    assert abs(summary["mean_difference"]) < 0.25
    assert histogram.probability(0) > 0.5
    assert summary["max_abs_difference"] <= 12
