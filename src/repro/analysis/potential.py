"""Credits and potential functions from the Rotor-Push competitive analysis.

Section 4.2 of the paper defines, for every element ``e``, a *credit* built
from two weights that compare the element's level in Rotor-Push's tree
(``l(e)``) with its level in the optimum's tree (``l_opt(e)``):

* the level-weight ``w_LEV(e) = l(e) - 2 l_opt(e) - 1`` when
  ``l(e) >= 2 l_opt(e) + 2`` and 0 otherwise (equation (1));
* the flip-rank-weight ``w_FRNK(e) = 1 - frnk(e) / 2**l(e)`` when
  ``l(e) >= 2 l_opt(e) + 1`` and 0 otherwise (equation (2));
* the credit ``c(e) = f * (w_LEV(e) + w_FRNK(e))`` with ``f = 4``.

Theorem 7 proves that per round the amortised cost of Rotor-Push (actual cost
plus credit change) is at most ``12 * (h* + 1)`` where ``h*`` is the level of
the requested element in the optimum's tree.  The Random-Push analysis
(Section 5) uses only the level-weight with ``f_R = 8`` and yields the factor
16 in expectation.

This module exposes those weights and a :class:`PotentialTracker` that checks
the per-round amortised inequality empirically against a *reference* placement
standing in for the optimum (any fixed placement is valid for the per-round
part-2 inequality, since the proof does not use properties of OPT beyond its
levels).  The tracker is used by the property-based tests and by the
competitive-bound benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.algorithms.rotor_push import RotorPush
from repro.core.state import TreeNetwork
from repro.core.tree import CompleteBinaryTree
from repro.exceptions import AlgorithmError
from repro.types import ElementId

__all__ = [
    "ROTOR_PUSH_CREDIT_FACTOR",
    "ROTOR_PUSH_COMPETITIVE_RATIO",
    "RANDOM_PUSH_CREDIT_FACTOR",
    "RANDOM_PUSH_COMPETITIVE_RATIO",
    "level_weight",
    "flip_rank_weight",
    "element_credit",
    "total_credit",
    "RoundCheck",
    "PotentialTracker",
]

#: The constant ``f`` of the Rotor-Push credits (Section 4.2).
ROTOR_PUSH_CREDIT_FACTOR = 4

#: Competitive ratio proven for Rotor-Push (Theorem 7).
ROTOR_PUSH_COMPETITIVE_RATIO = 12

#: The constant ``f_R`` of the Random-Push credits (Section 5).
RANDOM_PUSH_CREDIT_FACTOR = 8

#: Competitive ratio proven for Random-Push (Theorem 11).
RANDOM_PUSH_COMPETITIVE_RATIO = 16


def level_weight(level: int, opt_level: int) -> int:
    """Return ``w_LEV`` of an element at ``level`` whose OPT level is ``opt_level``."""
    if level >= 2 * opt_level + 2:
        return level - 2 * opt_level - 1
    return 0


def flip_rank_weight(level: int, opt_level: int, flip_rank: int) -> float:
    """Return ``w_FRNK`` of an element at ``level`` with the given flip-rank."""
    if level >= 2 * opt_level + 1:
        return 1.0 - flip_rank / float(1 << level)
    return 0.0


def element_credit(
    level: int,
    opt_level: int,
    flip_rank: int,
    factor: int = ROTOR_PUSH_CREDIT_FACTOR,
) -> float:
    """Return the credit ``c(e) = f * (w_LEV + w_FRNK)`` of a single element."""
    return factor * (level_weight(level, opt_level) + flip_rank_weight(level, opt_level, flip_rank))


def total_credit(
    network: TreeNetwork,
    opt_levels: Sequence[int],
    factor: int = ROTOR_PUSH_CREDIT_FACTOR,
) -> float:
    """Return the sum of credits of all elements of ``network``.

    ``opt_levels[e]`` is the level of element ``e`` in the reference (OPT)
    tree.  The network must carry rotor pointers (the flip-rank weight needs
    them).
    """
    if network.rotor is None:
        raise AlgorithmError("total_credit requires a network with rotor pointers")
    tree = network.tree
    if len(opt_levels) != tree.n_nodes:
        raise AlgorithmError(
            f"opt_levels has {len(opt_levels)} entries, expected {tree.n_nodes}"
        )
    rotor = network.rotor
    credit = 0.0
    for element in range(tree.n_nodes):
        node = network.node_of(element)
        credit += element_credit(
            tree.level(node), opt_levels[element], rotor.flip_rank(node), factor
        )
    return credit


@dataclass(frozen=True)
class RoundCheck:
    """Outcome of checking the amortised inequality for a single round.

    Attributes
    ----------
    element:
        The requested element.
    algorithm_cost:
        Actual cost paid by Rotor-Push in the round (access + swaps).
    credit_change:
        Total change of credits caused by the round.
    opt_cost:
        ``h* + 1`` where ``h*`` is the requested element's level in the
        reference tree.
    amortised_cost:
        ``algorithm_cost + credit_change``.
    bound:
        ``12 * opt_cost`` (the right-hand side of Theorem 7's inequality).
    """

    element: ElementId
    algorithm_cost: float
    credit_change: float
    opt_cost: float
    amortised_cost: float
    bound: float

    @property
    def holds(self) -> bool:
        """Whether the amortised inequality holds for this round (with float slack)."""
        return self.amortised_cost <= self.bound + 1e-9


class PotentialTracker:
    """Empirically verify Theorem 7's per-round amortised inequality.

    The tracker owns a :class:`RotorPush` instance and a *fixed* reference
    placement (standing in for OPT's tree, which performs no swaps).  After
    each served request it recomputes the total credit and records whether

    ``cost(Rotor-Push) + delta(credit) <= 12 * (h* + 1)``

    held, where ``h*`` is the requested element's level in the reference tree.

    Parameters
    ----------
    depth:
        Tree depth for both trees.
    reference_placement:
        ``reference_placement[node] = element`` for the OPT stand-in; defaults
        to the identity placement.
    placement:
        Initial placement of the Rotor-Push tree; defaults to the identity
        placement (so that initial credits are zero when the reference is also
        the identity).
    """

    def __init__(
        self,
        depth: int,
        reference_placement: Sequence[ElementId] = None,
        placement: Sequence[ElementId] = None,
    ) -> None:
        tree = CompleteBinaryTree.from_depth(depth)
        network = TreeNetwork(tree, placement=placement, with_rotor=True)
        self.algorithm = RotorPush(network)
        if reference_placement is None:
            reference_placement = list(range(tree.n_nodes))
        if sorted(reference_placement) != list(range(tree.n_nodes)):
            raise AlgorithmError("reference placement is not a bijection")
        self._opt_levels: List[int] = [0] * tree.n_nodes
        for node, element in enumerate(reference_placement):
            self._opt_levels[element] = tree.level(node)
        self._current_credit = total_credit(network, self._opt_levels)
        self.rounds: List[RoundCheck] = []

    @property
    def opt_levels(self) -> List[int]:
        """Levels of every element in the reference (OPT) tree."""
        return list(self._opt_levels)

    def serve(self, element: ElementId) -> RoundCheck:
        """Serve one request through Rotor-Push and check the amortised inequality."""
        record = self.algorithm.serve(element)
        new_credit = total_credit(self.algorithm.network, self._opt_levels)
        opt_cost = self._opt_levels[element] + 1
        check = RoundCheck(
            element=element,
            algorithm_cost=float(record.total_cost),
            credit_change=new_credit - self._current_credit,
            opt_cost=float(opt_cost),
            amortised_cost=float(record.total_cost) + (new_credit - self._current_credit),
            bound=float(ROTOR_PUSH_COMPETITIVE_RATIO * opt_cost),
        )
        self._current_credit = new_credit
        self.rounds.append(check)
        return check

    def run(self, sequence: Sequence[ElementId]) -> List[RoundCheck]:
        """Serve a whole sequence, returning the per-round checks."""
        return [self.serve(element) for element in sequence]

    def all_hold(self) -> bool:
        """Whether the inequality held in every round served so far."""
        return all(check.holds for check in self.rounds)

    def summary(self) -> Dict[str, float]:
        """Return aggregate statistics of the checks performed so far."""
        if not self.rounds:
            return {"rounds": 0.0, "violations": 0.0, "max_ratio": 0.0}
        ratios = [
            check.amortised_cost / check.bound if check.bound else 0.0
            for check in self.rounds
        ]
        return {
            "rounds": float(len(self.rounds)),
            "violations": float(sum(0 if check.holds else 1 for check in self.rounds)),
            "max_ratio": max(ratios),
        }
