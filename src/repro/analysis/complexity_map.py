"""Trace-complexity map (temporal vs non-temporal complexity).

Figure 6 of the paper positions each corpus-derived trace on the *complexity
map* introduced by Avin, Ghobadi, Griner and Schmid ("On the complexity of
traffic traces and implications", SIGMETRICS 2020): a two-dimensional plot of
*temporal complexity* against *non-temporal complexity*, both estimated from
the sizes of compressed representations of the trace.

This module implements the compression-based estimators:

* the trace is serialised to bytes (fixed-width element identifiers);
* ``c_original`` is the compressed size of the trace itself;
* ``c_shuffled`` is the compressed size of a random permutation of the trace,
  which preserves frequencies but destroys temporal structure;
* ``c_uniform`` is the compressed size of an i.i.d. uniform trace over the same
  universe and of the same length, which has neither temporal nor frequency
  structure.

The *temporal complexity* is ``c_original / c_shuffled`` (1 means no temporal
structure beyond frequencies; smaller means more temporal structure), and the
*non-temporal complexity* is ``c_shuffled / c_uniform`` (1 means a uniform
frequency distribution; smaller means more skew).  Both are clipped to
``[0, 1]``.  These are the same quantities, up to normalisation constants, as
the ones used in the paper's Figure 6, and they land corpus-like traces in the
same qualitative region (moderate temporal, high non-temporal complexity).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.exceptions import WorkloadError
from repro.types import ElementId

__all__ = ["ComplexityPoint", "trace_complexity", "compressed_size"]


@dataclass(frozen=True)
class ComplexityPoint:
    """Position of a trace on the complexity map.

    Attributes
    ----------
    temporal_complexity:
        ``c_original / c_shuffled`` clipped to ``[0, 1]``.
    non_temporal_complexity:
        ``c_shuffled / c_uniform`` clipped to ``[0, 1]``.
    compressed_original, compressed_shuffled, compressed_uniform:
        The raw compressed byte sizes behind the two ratios.
    """

    temporal_complexity: float
    non_temporal_complexity: float
    compressed_original: int
    compressed_shuffled: int
    compressed_uniform: int


def _encode(sequence: Sequence[ElementId], width: int) -> bytes:
    return b"".join(int(element).to_bytes(width, "big") for element in sequence)


def compressed_size(
    sequence: Sequence[ElementId],
    width: Optional[int] = None,
    level: int = 6,
) -> int:
    """Return the zlib-compressed size (bytes) of the fixed-width encoded sequence."""
    if width is None:
        width = _width_for(sequence)
    return len(zlib.compress(_encode(sequence, width), level))


def _width_for(sequence: Sequence[ElementId]) -> int:
    maximum = max(sequence, default=0)
    width = 1
    while maximum >= 1 << (8 * width):
        width += 1
    return width


def trace_complexity(
    sequence: Sequence[ElementId],
    universe_size: Optional[int] = None,
    seed: int = 0,
    compression_level: int = 6,
) -> ComplexityPoint:
    """Return the complexity-map coordinates of ``sequence``.

    Parameters
    ----------
    sequence:
        The trace to analyse (must be non-empty).
    universe_size:
        Size of the element universe used for the uniform reference trace;
        defaults to the number of distinct elements in the trace.
    seed:
        Seed of the shuffling and of the uniform reference trace, so the
        estimate is reproducible.
    compression_level:
        zlib compression level (1-9).
    """
    if not sequence:
        raise WorkloadError("cannot compute the complexity of an empty trace")
    if universe_size is None:
        universe_size = len(set(sequence))
    if universe_size <= 0:
        raise WorkloadError(f"universe_size must be positive, got {universe_size}")

    rng = random.Random(seed)
    width = max(_width_for(sequence), _width_for([universe_size - 1]))

    original = list(sequence)
    shuffled = list(sequence)
    rng.shuffle(shuffled)
    uniform = [rng.randrange(universe_size) for _ in range(len(sequence))]

    c_original = len(zlib.compress(_encode(original, width), compression_level))
    c_shuffled = len(zlib.compress(_encode(shuffled, width), compression_level))
    c_uniform = len(zlib.compress(_encode(uniform, width), compression_level))

    temporal = min(1.0, c_original / c_shuffled) if c_shuffled else 1.0
    non_temporal = min(1.0, c_shuffled / c_uniform) if c_uniform else 1.0
    return ComplexityPoint(
        temporal_complexity=temporal,
        non_temporal_complexity=non_temporal,
        compressed_original=c_original,
        compressed_shuffled=c_shuffled,
        compressed_uniform=c_uniform,
    )
