"""Analysis tools: working sets, entropy, complexity maps, potentials, bounds.

These modules implement the quantitative notions the paper uses to reason
about and evaluate the algorithms:

* :mod:`repro.analysis.working_set` - ranks, the working-set bound and the
  working-set property;
* :mod:`repro.analysis.entropy` - empirical entropy and locality statistics of
  request sequences;
* :mod:`repro.analysis.complexity_map` - the compression-based temporal /
  non-temporal complexity estimates behind Figure 6;
* :mod:`repro.analysis.potential` - the credits of the Theorem 7 / Theorem 11
  amortised analyses, with an empirical per-round checker;
* :mod:`repro.analysis.bounds` - cost lower bounds and empirical competitive
  ratios.
"""

from repro.analysis.bounds import (
    LowerBounds,
    compute_lower_bounds,
    empirical_competitive_ratio,
    static_optimum_cost,
)
from repro.analysis.complexity_map import ComplexityPoint, compressed_size, trace_complexity
from repro.analysis.entropy import (
    distinct_elements,
    empirical_entropy,
    frequency_distribution,
    locality_summary,
    repeat_fraction,
)
from repro.analysis.potential import (
    RANDOM_PUSH_COMPETITIVE_RATIO,
    RANDOM_PUSH_CREDIT_FACTOR,
    ROTOR_PUSH_COMPETITIVE_RATIO,
    ROTOR_PUSH_CREDIT_FACTOR,
    PotentialTracker,
    RoundCheck,
    element_credit,
    flip_rank_weight,
    level_weight,
    total_credit,
)
from repro.analysis.working_set import (
    FenwickTree,
    max_working_set_violation,
    mru_placement,
    ranks_of_sequence,
    working_set_bound,
    working_set_property_ratios,
)

__all__ = [
    "ComplexityPoint",
    "FenwickTree",
    "LowerBounds",
    "PotentialTracker",
    "RANDOM_PUSH_COMPETITIVE_RATIO",
    "RANDOM_PUSH_CREDIT_FACTOR",
    "ROTOR_PUSH_COMPETITIVE_RATIO",
    "ROTOR_PUSH_CREDIT_FACTOR",
    "RoundCheck",
    "compressed_size",
    "compute_lower_bounds",
    "distinct_elements",
    "element_credit",
    "empirical_competitive_ratio",
    "empirical_entropy",
    "flip_rank_weight",
    "frequency_distribution",
    "level_weight",
    "locality_summary",
    "max_working_set_violation",
    "mru_placement",
    "ranks_of_sequence",
    "repeat_fraction",
    "static_optimum_cost",
    "total_credit",
    "trace_complexity",
    "working_set_bound",
    "working_set_property_ratios",
]
