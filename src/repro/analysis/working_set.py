"""Working sets, ranks, the working-set bound and the working-set property.

Section 2 of the paper defines, for a request sequence ``sigma``:

* the *working set* of an element ``e`` at round ``t``: the set of distinct
  elements (including ``e``) accessed since the previous access of ``e``;
* the *rank* of ``e`` at round ``t``: the size of that working set;
* the *working-set bound* ``WS(sigma) = sum_t log2(rank_t(sigma_t))``, which is
  (up to a constant factor) a lower bound on the cost of any algorithm; and
* the *working-set property* of a self-adjusting tree: every access costs
  ``O(log rank)``.

Ranks are computed with a Fenwick (binary indexed) tree over last-occurrence
positions, giving ``O(m log m)`` total time for a sequence of length ``m``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.core.cost import RequestCost
from repro.exceptions import WorkloadError
from repro.types import ElementId

__all__ = [
    "FenwickTree",
    "ranks_of_sequence",
    "working_set_bound",
    "working_set_property_ratios",
    "max_working_set_violation",
    "mru_placement",
]


class FenwickTree:
    """A classic binary indexed tree over ``size`` positions supporting prefix sums."""

    __slots__ = ("_size", "_data")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise WorkloadError(f"Fenwick tree size must be non-negative, got {size}")
        self._size = size
        self._data = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` at ``index`` (0-based)."""
        if not 0 <= index < self._size:
            raise WorkloadError(f"index {index} outside Fenwick tree of size {self._size}")
        position = index + 1
        while position <= self._size:
            self._data[position] += delta
            position += position & (-position)

    def prefix_sum(self, count: int) -> int:
        """Return the sum of the first ``count`` positions (0-based, exclusive end)."""
        if count < 0 or count > self._size:
            raise WorkloadError(f"count {count} outside Fenwick tree of size {self._size}")
        total = 0
        position = count
        while position > 0:
            total += self._data[position]
            position -= position & (-position)
        return total

    def range_sum(self, start: int, end: int) -> int:
        """Return the sum over positions ``[start, end)``."""
        return self.prefix_sum(end) - self.prefix_sum(start)

    @property
    def size(self) -> int:
        """Number of positions."""
        return self._size


def ranks_of_sequence(
    sequence: Sequence[ElementId],
    first_access: str = "distinct-so-far",
    universe_size: Optional[int] = None,
) -> List[int]:
    """Return the rank (working-set size) of every request of ``sequence``.

    Parameters
    ----------
    sequence:
        The request sequence.
    first_access:
        How to rank an element's very first access: ``"distinct-so-far"``
        (default) counts the distinct elements accessed up to and including the
        request; ``"universe"`` uses ``universe_size`` (all elements count as
        potentially unseen, the most conservative choice for lower bounds).
    universe_size:
        Required when ``first_access="universe"``.
    """
    if first_access not in ("distinct-so-far", "universe"):
        raise WorkloadError(
            f"first_access must be 'distinct-so-far' or 'universe', got {first_access!r}"
        )
    if first_access == "universe" and (universe_size is None or universe_size <= 0):
        raise WorkloadError("universe_size must be given (and positive) for 'universe' mode")

    m = len(sequence)
    tree = FenwickTree(m)
    last_position: Dict[ElementId, int] = {}
    ranks: List[int] = []
    for position, element in enumerate(sequence):
        previous = last_position.get(element)
        if previous is None:
            if first_access == "universe":
                ranks.append(int(universe_size))
            else:
                ranks.append(len(last_position) + 1)
        else:
            # Distinct elements accessed strictly after `previous`, plus the
            # element itself.
            ranks.append(tree.range_sum(previous + 1, position) + 1)
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[element] = position
    return ranks


def working_set_bound(
    sequence: Sequence[ElementId],
    first_access: str = "distinct-so-far",
    universe_size: Optional[int] = None,
) -> float:
    """Return ``WS(sigma) = sum_t log2(rank_t)`` for the sequence.

    The paper (following Avin et al., LATIN 2020) shows this quantity is, up to
    a constant factor, a lower bound on the total cost of any algorithm,
    including the offline optimum.  Ranks of 1 (immediate repetitions)
    contribute ``log2(1) = 0``; to keep the bound meaningful as a per-request
    cost lower bound, callers usually combine it with the trivial bound of one
    unit per request (see :mod:`repro.analysis.bounds`).
    """
    ranks = ranks_of_sequence(sequence, first_access=first_access, universe_size=universe_size)
    return float(sum(math.log2(rank) for rank in ranks if rank >= 1))


def working_set_property_ratios(
    sequence: Sequence[ElementId],
    costs: Sequence[RequestCost],
    first_access: str = "distinct-so-far",
    universe_size: Optional[int] = None,
) -> List[float]:
    """Return, per request, ``access_cost / (log2(rank) + 1)``.

    An algorithm with the working-set property keeps these ratios bounded by a
    constant; Rotor-Push on the Lemma 8 adversarial sequence makes them grow
    linearly in the tree depth.
    """
    if len(sequence) != len(costs):
        raise WorkloadError(
            f"sequence length {len(sequence)} does not match cost records {len(costs)}"
        )
    ranks = ranks_of_sequence(sequence, first_access=first_access, universe_size=universe_size)
    ratios: List[float] = []
    for rank, record in zip(ranks, costs):
        denominator = math.log2(rank) + 1.0
        ratios.append(record.access_cost / denominator)
    return ratios


def max_working_set_violation(
    sequence: Sequence[ElementId],
    costs: Sequence[RequestCost],
) -> float:
    """Return the maximum access-cost-to-log-rank ratio over the sequence."""
    ratios = working_set_property_ratios(sequence, costs)
    return max(ratios) if ratios else 0.0


def mru_placement(
    n_nodes: int,
    sequence_prefix: Sequence[ElementId],
) -> List[ElementId]:
    """Return an MRU-tree placement after serving ``sequence_prefix``.

    Elements are ordered by recency of use (most recent first; elements never
    accessed come last, ordered by identifier) and placed in BFS order, which
    is exactly the Most-Recently-Used tree used by the paper's analysis of
    Random-Push: more recently accessed elements are never further from the
    root than less recently accessed ones.
    """
    last_seen: Dict[ElementId, int] = {}
    for position, element in enumerate(sequence_prefix):
        if not 0 <= element < n_nodes:
            raise WorkloadError(
                f"element {element} outside universe of size {n_nodes}"
            )
        last_seen[element] = position
    by_recency = sorted(
        range(n_nodes), key=lambda e: (-last_seen.get(e, -1), e)
    )
    return by_recency
