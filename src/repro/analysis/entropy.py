"""Empirical entropy and simple locality statistics of request sequences.

The paper reports the empirical entropy of every synthetic sequence it
generates (Section 6.1): for a sequence ``sigma`` with element frequencies
``f(e)`` (normalised to probabilities), the empirical entropy is
``sum_e f(e) * log2(1 / f(e))``.  This module computes that quantity plus a few
auxiliary locality measures used in experiment metadata and reports.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Sequence

from repro.types import ElementId

__all__ = [
    "empirical_entropy",
    "repeat_fraction",
    "distinct_elements",
    "frequency_distribution",
    "locality_summary",
]


def frequency_distribution(sequence: Sequence[ElementId]) -> Dict[ElementId, float]:
    """Return the normalised frequency of every element appearing in ``sequence``."""
    if not sequence:
        return {}
    counts = Counter(sequence)
    total = float(len(sequence))
    return {element: count / total for element, count in counts.items()}


def empirical_entropy(sequence: Sequence[ElementId]) -> float:
    """Return the empirical entropy (in bits) of the sequence's frequency distribution.

    An empty sequence has entropy 0 by convention.
    """
    frequencies = frequency_distribution(sequence)
    return float(
        sum(-probability * math.log2(probability) for probability in frequencies.values())
    )


def repeat_fraction(sequence: Sequence[ElementId]) -> float:
    """Return the fraction of requests identical to their predecessor.

    This is the natural empirical estimate of the temporal-locality parameter
    ``p`` used by the Q2 workloads.
    """
    if len(sequence) < 2:
        return 0.0
    repeats = sum(
        1 for index in range(1, len(sequence)) if sequence[index] == sequence[index - 1]
    )
    return repeats / (len(sequence) - 1)


def distinct_elements(sequence: Sequence[ElementId]) -> int:
    """Return the number of distinct elements appearing in the sequence."""
    return len(set(sequence))


def locality_summary(sequence: Sequence[ElementId]) -> Dict[str, float]:
    """Return a dictionary of simple locality statistics for reports and metadata."""
    return {
        "length": float(len(sequence)),
        "distinct": float(distinct_elements(sequence)),
        "entropy_bits": empirical_entropy(sequence),
        "repeat_fraction": repeat_fraction(sequence),
    }
