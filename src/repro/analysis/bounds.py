"""Cost lower bounds and empirical competitive-ratio estimation.

Competitive analysis compares an online algorithm's cost to the offline
optimum.  The true optimum is intractable to compute for interesting sizes, so
the library exposes the standard lower bounds used by the paper:

* the *working-set bound* ``WS(sigma)`` (shown in the LATIN 2020 paper to lower
  bound every algorithm up to a constant factor),
* the trivial bound of one unit per request (every access costs at least 1),
* the *static optimum* cost (the best fixed frequency-ordered tree, a valid
  lower bound for any algorithm that never adjusts and a useful reference for
  self-adjusting ones).

:func:`empirical_competitive_ratio` divides an algorithm's measured cost by the
largest applicable lower bound, giving a conservative (over-)estimate of the
competitive ratio on that particular sequence.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.algorithms.base import RunResult
from repro.algorithms.static_opt import frequency_placement
from repro.analysis.working_set import working_set_bound
from repro.core.tree import CompleteBinaryTree
from repro.exceptions import AlgorithmError
from repro.types import ElementId

__all__ = [
    "LowerBounds",
    "static_optimum_cost",
    "compute_lower_bounds",
    "empirical_competitive_ratio",
]


@dataclass(frozen=True)
class LowerBounds:
    """Collection of lower bounds on the total cost of serving one sequence.

    Attributes
    ----------
    trivial:
        One unit per request.
    working_set:
        The working-set bound ``WS(sigma)`` (in cost units).
    static_optimum:
        Cost of the best static frequency-ordered tree (no adjustments).
    """

    trivial: float
    working_set: float
    static_optimum: float

    @property
    def best(self) -> float:
        """The largest of the three bounds (never below 1 for non-empty sequences)."""
        return max(self.trivial, self.working_set, 0.0)


def static_optimum_cost(n_nodes: int, sequence: Sequence[ElementId]) -> float:
    """Return the total access cost of the optimal *static* tree for ``sequence``.

    Elements are placed by decreasing frequency in BFS order (the Static-Opt
    placement); the cost of a request is the element's level plus one.
    """
    tree = CompleteBinaryTree(n_nodes)
    placement = frequency_placement(n_nodes, sequence)
    level_of_element = {
        element: tree.level(node) for node, element in enumerate(placement)
    }
    counts = Counter(sequence)
    return float(
        sum(count * (level_of_element[element] + 1) for element, count in counts.items())
    )


def compute_lower_bounds(
    n_nodes: int,
    sequence: Sequence[ElementId],
    include_static: bool = True,
) -> LowerBounds:
    """Compute all lower bounds for serving ``sequence`` on an ``n_nodes`` tree."""
    trivial = float(len(sequence))
    ws_bound = working_set_bound(sequence)
    static_cost = (
        static_optimum_cost(n_nodes, sequence) if include_static else math.inf
    )
    return LowerBounds(
        trivial=trivial,
        working_set=ws_bound,
        static_optimum=static_cost,
    )


def empirical_competitive_ratio(
    result: RunResult,
    sequence: Sequence[ElementId],
    bounds: Optional[LowerBounds] = None,
) -> float:
    """Return ``total_cost / best_lower_bound`` for one run.

    This over-estimates the true competitive ratio (the lower bounds are not
    tight), so observing a value below the proven ratio is consistent with the
    theory while a value far above it would indicate a bug.
    """
    if result.n_requests != len(sequence):
        raise AlgorithmError(
            f"run served {result.n_requests} requests but the sequence has {len(sequence)}"
        )
    if not sequence:
        return 0.0
    if bounds is None:
        bounds = compute_lower_bounds(result.n_nodes, sequence)
    denominator = bounds.best
    if denominator <= 0:
        raise AlgorithmError("lower bound is non-positive; cannot form a ratio")
    return result.total_cost / denominator
