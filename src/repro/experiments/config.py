"""Experiment scales and shared configuration.

The paper's experiments use trees of 65,535 nodes, one million requests and ten
repetitions per configuration.  Running that in pure Python takes hours, so
every experiment in this package accepts a *scale* selecting how closely to
approach the paper's parameters:

========  ============  ==============  ========  =================================
scale     tree nodes    requests        trials    intended use
========  ============  ==============  ========  =================================
tiny      255           3,000           2         unit tests, CI, quick smoke runs
small     1,023         20,000          3         benchmarks, local iteration
default   4,095         100,000         3         overnight-quality results
paper     65,535        1,000,000       10        full reproduction of the figures
========  ============  ==============  ========  =================================

All scales exercise exactly the same code paths; the qualitative shape of every
figure (which algorithm wins, where crossovers happen) is stable across scales,
which is itself one of the paper's Q1 findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import ExperimentError
from repro.plans.model import RunConfig

__all__ = ["ExperimentScale", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Parameters controlling the size of every experiment at one scale.

    Attributes
    ----------
    name:
        Scale identifier (``tiny`` / ``small`` / ``default`` / ``paper``).
    n_nodes:
        Tree size used by the single-size experiments (Q2-Q4).
    n_requests:
        Requests per trial.
    n_trials:
        Number of repetitions (the paper uses 10).
    q1_sizes:
        Tree sizes of the Q1 size sweep.
    temporal_probabilities:
        The Q2 grid of repeat probabilities ``p``.
    zipf_exponents:
        The Q3 grid of Zipf exponents ``a``.
    q4_probabilities, q4_exponents:
        The Q4 grid (coarser than Q2/Q3 in the paper).
    corpus_scale:
        Multiplier applied to the synthetic corpus book lengths for Q5.
    base_seed:
        Base random seed shared by all experiments at this scale.
    """

    name: str
    n_nodes: int
    n_requests: int
    n_trials: int
    q1_sizes: List[int] = field(default_factory=list)
    temporal_probabilities: List[float] = field(
        default_factory=lambda: [0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9]
    )
    zipf_exponents: List[float] = field(
        default_factory=lambda: [1.001, 1.3, 1.6, 1.9, 2.2]
    )
    q4_probabilities: List[float] = field(
        default_factory=lambda: [0.0, 0.25, 0.5, 0.75, 0.9]
    )
    q4_exponents: List[float] = field(
        default_factory=lambda: [1.001, 1.3, 1.6, 1.9, 2.2]
    )
    corpus_scale: float = 1.0
    base_seed: int = 42

    def run_config(
        self,
        n_requests: Optional[int] = None,
        n_trials: Optional[int] = None,
        keep_records: bool = False,
        n_jobs: int = 1,
        chunk_size: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> RunConfig:
        """Return this scale's run shape as a :class:`repro.plans.RunConfig`.

        The bridge between the scale table and the plan layer: every q1–q5
        plan builder derives its stage configs from here, overriding only
        what the experiment itself varies (e.g. the per-size request count
        of the Q1 sweep).
        """
        return RunConfig(
            n_requests=self.n_requests if n_requests is None else n_requests,
            n_trials=self.n_trials if n_trials is None else n_trials,
            base_seed=self.base_seed,
            keep_records=keep_records,
            n_jobs=n_jobs,
            chunk_size=chunk_size,
            backend=backend,
        )


SCALES: Dict[str, ExperimentScale] = {
    "tiny": ExperimentScale(
        name="tiny",
        n_nodes=255,
        n_requests=3_000,
        n_trials=2,
        q1_sizes=[63, 255],
        corpus_scale=0.05,
    ),
    "small": ExperimentScale(
        name="small",
        n_nodes=1_023,
        n_requests=20_000,
        n_trials=3,
        q1_sizes=[255, 1_023, 4_095],
        corpus_scale=0.2,
    ),
    "default": ExperimentScale(
        name="default",
        n_nodes=4_095,
        n_requests=100_000,
        n_trials=3,
        q1_sizes=[255, 1_023, 4_095, 16_383],
        corpus_scale=0.5,
    ),
    "paper": ExperimentScale(
        name="paper",
        n_nodes=65_535,
        n_requests=1_000_000,
        n_trials=10,
        q1_sizes=[255, 1_023, 4_095, 16_383, 65_535],
        corpus_scale=1.0,
    ),
}


def get_scale(scale: str) -> ExperimentScale:
    """Return the named scale, raising a helpful error for unknown names."""
    try:
        return SCALES[scale]
    except KeyError:
        raise ExperimentError(
            f"unknown scale {scale!r}; available: {', '.join(SCALES)}"
        ) from None
