"""Experiment harnesses reproducing the paper's evaluation (Section 6).

One module per research question / figure:

* :mod:`repro.experiments.q1_network_size` - Figures 2a/2b;
* :mod:`repro.experiments.q2_temporal` - Figure 3;
* :mod:`repro.experiments.q3_spatial` - Figure 4;
* :mod:`repro.experiments.q4_combined` - Figures 5a/5b;
* :mod:`repro.experiments.q5_corpus` - Figures 6/7;
* :mod:`repro.experiments.table1_properties` - Table 1 and the analytical
  results (Lemma 8, Theorem 7) checked empirically;
* :mod:`repro.experiments.multisource` - the multi-source network scenario
  (per-source self-adjusting trees routing a spec-described traffic trace);
* :mod:`repro.experiments.datacenter` - the reconfigurable-datacenter
  scenario (per-algorithm network stages plus a source-count traffic sweep);
* :mod:`repro.experiments.adversarial` - the adversarial constructions
  (Lemma 8, the MTF lower bound, Theorem 7) as spec-shipped payloads;
* :mod:`repro.experiments.corpus_pipeline` - the raw-text corpus pipeline
  on ``corpus`` recipe specs (complexity map plus per-dataset costs);
* :mod:`repro.experiments.report` - runs everything and writes EXPERIMENTS.md.

Every experiment is a declarative plan: the ``build_*_plan`` functions return
:class:`repro.plans.ExperimentPlan` / :class:`repro.plans.SweepPlan` objects
(pure data, JSON round-trippable — the shipped golden copies live under
``src/repro/experiments/plans/``), and the ``run_*`` functions execute those
plans through :func:`repro.run`.  Importing this package also registers the
experiment-specific plan assemblers (``q1_panel``, ``q4_wireframe``,
``q4_histogram``, ``q5_complexity_map``, ``q5_costs``, ``table1``,
``datacenter``, ``adversarial``, ``corpus_pipeline``).
"""

from repro.experiments.adversarial import build_adversarial_plan, run_adversarial
from repro.experiments.config import SCALES, ExperimentScale, get_scale
from repro.experiments.corpus_pipeline import (
    build_corpus_pipeline_plan,
    run_corpus_pipeline,
)
from repro.experiments.datacenter import (
    build_datacenter_plan,
    build_datacenter_sweep_plan,
    datacenter_traffic,
    run_datacenter,
)
from repro.experiments.multisource import build_multisource_plan, run_multisource
from repro.experiments.q1_network_size import (
    build_q1_plan,
    build_q1_spatial_plan,
    build_q1_temporal_plan,
    run_q1,
    run_q1_spatial,
    run_q1_temporal,
)
from repro.experiments.q2_temporal import build_q2_plan, run_q2
from repro.experiments.q3_spatial import build_q3_plan, run_q3
from repro.experiments.q4_combined import (
    build_q4_histogram_plan,
    build_q4_plan,
    build_q4_wireframe_plan,
    run_q4,
    run_q4_histogram,
    run_q4_wireframe,
)
from repro.experiments.q5_corpus import (
    build_q5_complexity_plan,
    build_q5_costs_plan,
    build_q5_plan,
    run_q5,
    run_q5_complexity_map,
    run_q5_costs,
)
from repro.experiments.report import generate_report, render_report, run_all_experiments
from repro.experiments.table1_properties import (
    build_table1_plan,
    run_mtf_lower_bound,
    run_potential_check,
    run_table1,
    run_working_set_violation,
    run_ws_bound_ratios,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "build_adversarial_plan",
    "build_corpus_pipeline_plan",
    "build_datacenter_plan",
    "build_datacenter_sweep_plan",
    "build_multisource_plan",
    "build_q1_plan",
    "build_q1_spatial_plan",
    "build_q1_temporal_plan",
    "build_q2_plan",
    "build_q3_plan",
    "build_q4_histogram_plan",
    "build_q4_plan",
    "build_q4_wireframe_plan",
    "build_q5_complexity_plan",
    "build_q5_costs_plan",
    "build_q5_plan",
    "build_table1_plan",
    "datacenter_traffic",
    "generate_report",
    "get_scale",
    "render_report",
    "run_adversarial",
    "run_all_experiments",
    "run_corpus_pipeline",
    "run_datacenter",
    "run_mtf_lower_bound",
    "run_multisource",
    "run_potential_check",
    "run_q1",
    "run_q1_spatial",
    "run_q1_temporal",
    "run_q2",
    "run_q3",
    "run_q4",
    "run_q4_histogram",
    "run_q4_wireframe",
    "run_q5",
    "run_q5_complexity_map",
    "run_q5_costs",
    "run_table1",
    "run_working_set_violation",
    "run_ws_bound_ratios",
]
