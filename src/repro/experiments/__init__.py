"""Experiment harnesses reproducing the paper's evaluation (Section 6).

One module per research question / figure:

* :mod:`repro.experiments.q1_network_size` - Figures 2a/2b;
* :mod:`repro.experiments.q2_temporal` - Figure 3;
* :mod:`repro.experiments.q3_spatial` - Figure 4;
* :mod:`repro.experiments.q4_combined` - Figures 5a/5b;
* :mod:`repro.experiments.q5_corpus` - Figures 6/7;
* :mod:`repro.experiments.table1_properties` - Table 1 and the analytical
  results (Lemma 8, Theorem 7) checked empirically;
* :mod:`repro.experiments.report` - runs everything and writes EXPERIMENTS.md.
"""

from repro.experiments.config import SCALES, ExperimentScale, get_scale
from repro.experiments.q1_network_size import run_q1, run_q1_spatial, run_q1_temporal
from repro.experiments.q2_temporal import run_q2
from repro.experiments.q3_spatial import run_q3
from repro.experiments.q4_combined import run_q4_histogram, run_q4_wireframe
from repro.experiments.q5_corpus import run_q5, run_q5_complexity_map, run_q5_costs
from repro.experiments.report import generate_report, render_report, run_all_experiments
from repro.experiments.table1_properties import (
    run_mtf_lower_bound,
    run_potential_check,
    run_table1,
    run_working_set_violation,
    run_ws_bound_ratios,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "generate_report",
    "get_scale",
    "render_report",
    "run_all_experiments",
    "run_mtf_lower_bound",
    "run_potential_check",
    "run_q1",
    "run_q1_spatial",
    "run_q1_temporal",
    "run_q2",
    "run_q3",
    "run_q4_histogram",
    "run_q4_wireframe",
    "run_q5",
    "run_q5_complexity_map",
    "run_q5_costs",
    "run_table1",
    "run_working_set_violation",
    "run_ws_bound_ratios",
]
