"""The paper's adversarial constructions as one declarative plan.

Three theory results demonstrated empirically (formerly the imperative
``examples/adversarial_analysis.py`` script):

* **Lemma 8** — Rotor-Push lacks the working-set *property*: the adaptive
  adversary confines its requests to ``2x - 1`` elements, yet the access cost
  keeps climbing to the full tree depth;
* **Section 1.1** — the naive Move-To-Front generalisation is not
  constant-competitive: on a round-robin path sequence it pays ~depth per
  request, the :math:`\\Omega(\\log n / \\log\\log n)` gap;
* **Theorem 7** — the credit/potential inequality of the 12-competitiveness
  proof, checked round by round on random input.

The plan is assembler-only: adaptive adversaries are closed-loop (each
request depends on the algorithm's current state), so they cannot be a
workload spec — instead the construction itself is registry-validated data
(:class:`repro.workloads.AdversarySpec`) and the ``adversarial`` assembler
ships it to the workers as :class:`repro.sim.runner.AdversarySource`
payloads.  Every (construction, depth) cell is one payload, so ``--jobs``
fans the whole analysis out and ``cache_dir`` checkpoints it like any other
plan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.potential import PotentialTracker
from repro.analysis.working_set import max_working_set_violation
from repro.exceptions import PlanError
from repro.plans import ExperimentPlan, RunConfig
from repro.plans.execute import StageResult, register_assembler, run as run_plan
from repro.resilience.retry import RetryPolicy
from repro.sim.results import ResultTable
from repro.sim.runner import AdversarySource, TrialPayload, execute_payloads
from repro.workloads import UniformWorkload
from repro.workloads.adversarial import AdversarySpec

__all__ = [
    "build_adversarial_plan",
    "run_adversarial",
]

#: Default construction shapes (the former script's constants).
LEMMA8_DEPTHS = (4, 6, 8, 10)
LEMMA8_REQUESTS = 2_500
MTF_DEPTHS = (3, 5, 7, 9, 11)
MTF_CYCLES = 30
THEOREM7_DEPTH = 6
THEOREM7_REQUESTS = 3_000
THEOREM7_SEED = 3


def build_adversarial_plan(
    lemma8_depths: Sequence[int] = LEMMA8_DEPTHS,
    lemma8_requests: int = LEMMA8_REQUESTS,
    mtf_depths: Sequence[int] = MTF_DEPTHS,
    mtf_cycles: int = MTF_CYCLES,
    theorem7_depth: int = THEOREM7_DEPTH,
    theorem7_requests: int = THEOREM7_REQUESTS,
    theorem7_seed: int = THEOREM7_SEED,
    n_jobs: int = 1,
    backend: Optional[str] = None,
) -> ExperimentPlan:
    """Build the adversarial-analysis plan (assembler-only).

    The parameters *are* the experiment: each depth list names one
    :class:`~repro.workloads.AdversarySpec` per entry; construction and
    simulation happen worker-side when the plan runs.
    """
    return ExperimentPlan.create(
        name="adversarial",
        assembler="adversarial",
        params={
            "lemma8_depths": tuple(int(depth) for depth in lemma8_depths),
            "lemma8_requests": int(lemma8_requests),
            "mtf_depths": tuple(int(depth) for depth in mtf_depths),
            "mtf_cycles": int(mtf_cycles),
            "theorem7_depth": int(theorem7_depth),
            "theorem7_requests": int(theorem7_requests),
            "theorem7_seed": int(theorem7_seed),
        },
        config=RunConfig(
            n_requests=0,  # request counts are per-construction parameters
            n_trials=1,
            base_seed=0,
            n_jobs=n_jobs,
            backend=backend,
        ),
    )


def _lemma8_table(
    depths: Sequence[int], payload_results: List
) -> ResultTable:
    """Fold the Lemma 8 payload results into the working-set violation table."""
    table = ResultTable(
        name="lemma8",
        columns=[
            "depth",
            "working_set_limit",
            "max_access_cost",
            "cost_to_log_rank_ratio",
        ],
    )
    for depth, result in zip(depths, payload_results):
        records = result.per_request
        sequence = [record.element for record in records]
        table.add_row(
            depth=depth,
            working_set_limit=2 * (depth + 1) - 1,
            max_access_cost=max(record.access_cost for record in records),
            cost_to_log_rank_ratio=max_working_set_violation(sequence, records),
        )
    return table


def _mtf_table(depths: Sequence[int], payload_results: List) -> ResultTable:
    """Fold the Section 1.1 payload results into the MTF lower-bound table."""
    table = ResultTable(
        name="mtf_lower_bound",
        columns=["depth", "n_requests", "mean_access_cost", "path_length"],
    )
    for depth, result in zip(depths, payload_results):
        table.add_row(
            depth=depth,
            n_requests=result.n_requests,
            mean_access_cost=result.total_access_cost / result.n_requests,
            path_length=depth + 1,
        )
    return table


def _theorem7_table(depth: int, n_requests: int, seed: int) -> ResultTable:
    """Check the Theorem 7 per-round amortised inequality on random input.

    Runs in the parent: the tracker observes every round of one serve pass,
    so there is nothing to fan out.
    """
    tracker = PotentialTracker(depth=depth)
    workload = UniformWorkload(tracker.algorithm.network.tree.n_nodes, seed=seed)
    tracker.run(workload.generate(n_requests))
    summary = tracker.summary()
    table = ResultTable(
        name="theorem7",
        columns=["depth", "rounds", "violations", "max_ratio"],
    )
    table.add_row(
        depth=depth,
        rounds=int(summary["rounds"]),
        violations=int(summary["violations"]),
        max_ratio=summary["max_ratio"],
    )
    return table


@register_assembler("adversarial")
def _assemble_adversarial(
    plan: ExperimentPlan, stages: List[StageResult]
) -> Dict[str, ResultTable]:
    """Run all three adversarial constructions and return their tables."""
    if stages:
        raise PlanError("assembler 'adversarial' is assembler-only")
    if plan.config is None:
        raise PlanError("assembler 'adversarial' needs the plan's config")
    params = plan.param_dict()
    config = plan.config
    lemma8_depths = [int(depth) for depth in params["lemma8_depths"]]
    mtf_depths = [int(depth) for depth in params["mtf_depths"]]

    payloads: List[TrialPayload] = []
    for index, depth in enumerate(lemma8_depths):
        # Lemma 8 needs the per-request records (max costs + violation ratio).
        payloads.append(
            TrialPayload(
                algorithm="rotor-push",
                source=AdversarySource(
                    adversary=AdversarySpec.create("rotor-working-set", depth=depth),
                    n_requests=int(params["lemma8_requests"]),
                ),
                n_nodes=(1 << (depth + 1)) - 1,
                placement_seed=None,
                algorithm_seed=None,
                keep_records=True,
                trial=index,
                metadata={"scenario": "lemma8", "depth": depth},
                backend=config.backend,
            )
        )
    for index, depth in enumerate(mtf_depths):
        payloads.append(
            TrialPayload(
                algorithm="move-to-front",
                source=AdversarySource(
                    adversary=AdversarySpec.create("mtf-lower-bound", depth=depth),
                    n_requests=int(params["mtf_cycles"]) * (depth + 1),
                ),
                n_nodes=(1 << (depth + 1)) - 1,
                placement_seed=None,
                algorithm_seed=None,
                keep_records=False,
                trial=index,
                metadata={"scenario": "mtf_lower_bound", "depth": depth},
                backend=config.backend,
            )
        )
    results = execute_payloads(
        payloads,
        config.n_jobs,
        worker_timeout=config.worker_timeout,
        retry=RetryPolicy.for_config(config),
        cache_dir=config.cache_dir,
    )
    n_lemma8 = len(lemma8_depths)
    return {
        "lemma8": _lemma8_table(lemma8_depths, results[:n_lemma8]),
        "mtf_lower_bound": _mtf_table(mtf_depths, results[n_lemma8:]),
        "theorem7": _theorem7_table(
            int(params["theorem7_depth"]),
            int(params["theorem7_requests"]),
            int(params["theorem7_seed"]),
        ),
    }


def run_adversarial(
    n_jobs: int = 1,
    backend: Optional[str] = None,
) -> Dict[str, ResultTable]:
    """Run the adversarial analysis and return its tables keyed by result."""
    return run_plan(build_adversarial_plan(n_jobs=n_jobs, backend=backend))
