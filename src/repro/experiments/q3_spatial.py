"""Q3 - which algorithm performs best with increasing spatial locality?

Reproduces Figure 4: fix the tree size, sweep the Zipf exponent
``a in {1.001, 1.3, 1.6, 1.9, 2.2}`` and report, per algorithm, the average
access and adjustment cost per request.  The paper's findings: all
self-adjusting algorithms exploit spatial locality (Rotor-Push, Random-Push and
Max-Push achieve similar access costs), the reconfiguration cost pays off
versus Static-Oblivious from roughly ``a = 1.6``, and Static-Opt remains the
cheapest option in these purely spatial scenarios.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.algorithms.registry import PAPER_ALGORITHMS
from repro.analysis.entropy import empirical_entropy
from repro.experiments.config import get_scale
from repro.plans import SweepPlan
from repro.plans.execute import run as run_plan
from repro.sim.results import ResultTable
from repro.workloads.spec import WorkloadSpec
from repro.workloads.zipf import ZipfWorkload

__all__ = ["build_q3_plan", "run_q3", "series_for_plot", "sequence_entropies"]


def build_q3_plan(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> SweepPlan:
    """Build the Figure 4 plan: an ``a`` sweep of a Zipf workload template."""
    config = get_scale(scale)
    return SweepPlan(
        name="fig4_spatial_locality",
        workload=WorkloadSpec.create("zipf", n_elements=config.n_nodes),
        algorithms=tuple(PAPER_ALGORITHMS),
        points=tuple({"a": float(a)} for a in config.zipf_exponents),
        bind={"a": "exponent"},
        n_nodes=config.n_nodes,
        config=config.run_config(
            n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
        ),
    )


def run_q3(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ResultTable:
    """Run the Figure 4 sweep and return its data table."""
    return run_plan(build_q3_plan(scale, n_jobs, chunk_size, backend))


def series_for_plot(table: ResultTable, metric: str = "mean_total_cost") -> Dict[str, List[float]]:
    """Return per-algorithm series over the Zipf exponent grid for plotting."""
    series: Dict[str, List[float]] = {}
    exponents = sorted({float(row["a"]) for row in table.rows})
    for algorithm in sorted({str(row["algorithm"]) for row in table.rows}):
        values: List[float] = []
        for exponent in exponents:
            match = [
                row
                for row in table.rows
                if row["algorithm"] == algorithm and float(row["a"]) == exponent
            ]
            values.append(float(match[0][metric]) if match else 0.0)
        series[algorithm] = values
    return series


def sequence_entropies(scale: str = "tiny", n_samples: int = 1) -> Dict[float, float]:
    """Return the measured empirical entropy for every Zipf exponent of the grid.

    The paper reports entropies (11.07, 6.47, 3.88, 2.63, 1.92) at 65,535 nodes;
    the same monotone decrease with ``a`` holds at every scale.
    """
    config = get_scale(scale)
    entropies: Dict[float, float] = {}
    for exponent in config.zipf_exponents:
        values = []
        for sample in range(max(1, n_samples)):
            workload = ZipfWorkload(
                config.n_nodes, exponent, seed=config.base_seed + sample
            )
            values.append(empirical_entropy(workload.generate(config.n_requests)))
        entropies[exponent] = sum(values) / len(values)
    return entropies
