"""Q3 - which algorithm performs best with increasing spatial locality?

Reproduces Figure 4: fix the tree size, sweep the Zipf exponent
``a in {1.001, 1.3, 1.6, 1.9, 2.2}`` and report, per algorithm, the average
access and adjustment cost per request.  The paper's findings: all
self-adjusting algorithms exploit spatial locality (Rotor-Push, Random-Push and
Max-Push achieve similar access costs), the reconfiguration cost pays off
versus Static-Oblivious from roughly ``a = 1.6``, and Static-Opt remains the
cheapest option in these purely spatial scenarios.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.algorithms.registry import PAPER_ALGORITHMS
from repro.analysis.entropy import empirical_entropy
from repro.experiments.config import get_scale
from repro.sim.results import ResultTable
from repro.sim.sweep import ParameterSweep
from repro.workloads.zipf import ZipfWorkload

__all__ = ["run_q3", "series_for_plot", "sequence_entropies"]


def run_q3(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ResultTable:
    """Run the Figure 4 sweep and return its data table."""
    config = get_scale(scale)
    sweep = ParameterSweep(
        points=[{"a": exponent} for exponent in config.zipf_exponents],
        workload_factory=lambda point, seed: ZipfWorkload(
            config.n_nodes, float(point["a"]), seed=seed
        ),
        algorithms=list(PAPER_ALGORITHMS),
        n_nodes=config.n_nodes,
        n_requests=config.n_requests,
        n_trials=config.n_trials,
        base_seed=config.base_seed,
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        backend=backend,
    )
    return sweep.run(table_name="fig4_spatial_locality")


def series_for_plot(table: ResultTable, metric: str = "mean_total_cost") -> Dict[str, List[float]]:
    """Return per-algorithm series over the Zipf exponent grid for plotting."""
    series: Dict[str, List[float]] = {}
    exponents = sorted({float(row["a"]) for row in table.rows})
    for algorithm in sorted({str(row["algorithm"]) for row in table.rows}):
        values: List[float] = []
        for exponent in exponents:
            match = [
                row
                for row in table.rows
                if row["algorithm"] == algorithm and float(row["a"]) == exponent
            ]
            values.append(float(match[0][metric]) if match else 0.0)
        series[algorithm] = values
    return series


def sequence_entropies(scale: str = "tiny", n_samples: int = 1) -> Dict[float, float]:
    """Return the measured empirical entropy for every Zipf exponent of the grid.

    The paper reports entropies (11.07, 6.47, 3.88, 2.63, 1.92) at 65,535 nodes;
    the same monotone decrease with ``a`` holds at every scale.
    """
    config = get_scale(scale)
    entropies: Dict[float, float] = {}
    for exponent in config.zipf_exponents:
        values = []
        for sample in range(max(1, n_samples)):
            workload = ZipfWorkload(
                config.n_nodes, exponent, seed=config.base_seed + sample
            )
            values.append(empirical_entropy(workload.generate(config.n_requests)))
        entropies[exponent] = sum(values) / len(values)
    return entropies
