"""Q1 - how does the benefit of self-adjustment depend on the network size?

Reproduces Figures 2a and 2b: for tree sizes 255 ... 65,535 (scaled down at the
smaller experiment scales), run the four self-adjusting algorithms and the
demand-oblivious static tree on high-locality sequences - temporal locality
``p = 0.9`` for Figure 2a and Zipf ``a = 2.2`` for Figure 2b - and report the
*difference* of each self-adjusting algorithm's average total cost minus
Static-Oblivious's average total cost.  Negative values mean self-adjustment
pays off; the paper's finding is that the benefit grows with the tree size.

The experiment is a declarative plan: :func:`build_q1_plan` (and the
per-panel builders) return :class:`repro.plans.ExperimentPlan` objects — one
:class:`repro.plans.TrialPlan` stage per tree size plus the ``q1_panel``
assembler registered here, which turns the per-size aggregates into the
difference table.  ``run_q1*`` are thin wrappers executing those plans via
:func:`repro.run`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.algorithms.registry import SELF_ADJUSTING_ALGORITHMS, StaticOblivious
from repro.exceptions import PlanError
from repro.experiments.config import get_scale
from repro.plans import ExperimentPlan, TrialPlan
from repro.plans.execute import StageResult, register_assembler, run as run_plan
from repro.sim.results import ResultTable
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "Q1_TEMPORAL_P",
    "Q1_ZIPF_A",
    "build_q1_plan",
    "build_q1_temporal_plan",
    "build_q1_spatial_plan",
    "run_q1",
    "run_q1_temporal",
    "run_q1_spatial",
]

#: Temporal-locality parameter of Figure 2a.
Q1_TEMPORAL_P = 0.9

#: Zipf exponent of Figure 2b.
Q1_ZIPF_A = 2.2

_BASELINE = StaticOblivious.name

_Q1_COLUMNS = [
    "tree_size",
    "locality",
    "algorithm",
    "mean_total_cost",
    "baseline_total_cost",
    "difference",
]


def _size_sweep_plan(
    scale: str,
    locality: str,
    table_name: str,
    n_jobs: int,
    chunk_size: Optional[int],
    backend: Optional[str],
) -> ExperimentPlan:
    """Build one Q1 panel: a TrialPlan per tree size + the panel assembler."""
    config = get_scale(scale)
    algorithms = tuple(SELF_ADJUSTING_ALGORITHMS) + (_BASELINE,)
    stages = []
    for tree_size in config.q1_sizes:
        n_requests = min(config.n_requests, max(1_000, tree_size * 20))
        if locality == "temporal":
            workload = WorkloadSpec.create(
                "temporal", n_elements=tree_size, repeat_probability=Q1_TEMPORAL_P
            )
        else:
            workload = WorkloadSpec.create(
                "zipf", n_elements=tree_size, exponent=Q1_ZIPF_A
            )
        stages.append(
            (
                str(tree_size),
                TrialPlan(
                    n_nodes=tree_size,
                    workload=workload,
                    algorithms=algorithms,
                    config=config.run_config(
                        n_requests=n_requests,
                        n_jobs=n_jobs,
                        chunk_size=chunk_size,
                        backend=backend,
                    ),
                    name=f"{table_name}_size_{tree_size}",
                ),
            )
        )
    return ExperimentPlan.create(
        name=table_name,
        stages=tuple(stages),
        assembler="q1_panel",
        params={
            "locality": locality,
            "baseline": _BASELINE,
            "algorithms": tuple(SELF_ADJUSTING_ALGORITHMS),
        },
    )


@register_assembler("q1_panel")
def _assemble_q1_panel(plan: ExperimentPlan, stages: List[StageResult]) -> ResultTable:
    """Turn per-size trial aggregates into the Figure 2 difference table."""
    params = plan.param_dict()
    baseline = str(params["baseline"])
    algorithms = [str(name) for name in params["algorithms"]]
    locality = params["locality"]
    table = ResultTable(name=plan.name, columns=list(_Q1_COLUMNS))
    for stage in stages:
        if stage.aggregated is None:
            raise PlanError(
                f"assembler 'q1_panel' needs trial stages, got {stage.plan!r}"
            )
        baseline_cost = stage.aggregated[baseline].mean_total_cost
        for algorithm in algorithms:
            cost = stage.aggregated[algorithm].mean_total_cost
            table.add_row(
                tree_size=stage.plan.n_nodes,
                locality=locality,
                algorithm=algorithm,
                mean_total_cost=cost,
                baseline_total_cost=baseline_cost,
                difference=cost - baseline_cost,
            )
    return table


def build_q1_temporal_plan(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ExperimentPlan:
    """Build the Figure 2a plan (size sweep under temporal locality ``p = 0.9``)."""
    return _size_sweep_plan(
        scale,
        "temporal",
        "fig2a_network_size_temporal",
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        backend=backend,
    )


def build_q1_spatial_plan(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ExperimentPlan:
    """Build the Figure 2b plan (size sweep under Zipf spatial locality ``a = 2.2``)."""
    return _size_sweep_plan(
        scale,
        "spatial",
        "fig2b_network_size_spatial",
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        backend=backend,
    )


def build_q1_plan(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ExperimentPlan:
    """Build the full Q1 plan: both panels keyed by figure identifier."""
    return ExperimentPlan.create(
        name="q1_network_size",
        stages=(
            ("fig2a", build_q1_temporal_plan(scale, n_jobs, chunk_size, backend)),
            ("fig2b", build_q1_spatial_plan(scale, n_jobs, chunk_size, backend)),
        ),
        assembler="tables",
    )


def run_q1_temporal(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ResultTable:
    """Reproduce Figure 2a (size sweep under temporal locality ``p = 0.9``)."""
    return run_plan(build_q1_temporal_plan(scale, n_jobs, chunk_size, backend))


def run_q1_spatial(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ResultTable:
    """Reproduce Figure 2b (size sweep under Zipf spatial locality ``a = 2.2``)."""
    return run_plan(build_q1_spatial_plan(scale, n_jobs, chunk_size, backend))


def run_q1(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, ResultTable]:
    """Run both Q1 panels and return them keyed by figure identifier."""
    return run_plan(build_q1_plan(scale, n_jobs, chunk_size, backend))


def benefit_by_size(table: ResultTable, algorithm: str) -> List[float]:
    """Extract the cost differences of ``algorithm`` ordered by tree size (plot series)."""
    rows = [row for row in table.rows if row["algorithm"] == algorithm]
    rows.sort(key=lambda row: row["tree_size"])
    return [float(row["difference"]) for row in rows]
