"""Q1 - how does the benefit of self-adjustment depend on the network size?

Reproduces Figures 2a and 2b: for tree sizes 255 ... 65,535 (scaled down at the
smaller experiment scales), run the four self-adjusting algorithms and the
demand-oblivious static tree on high-locality sequences - temporal locality
``p = 0.9`` for Figure 2a and Zipf ``a = 2.2`` for Figure 2b - and report the
*difference* of each self-adjusting algorithm's average total cost minus
Static-Oblivious's average total cost.  Negative values mean self-adjustment
pays off; the paper's finding is that the benefit grows with the tree size.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.algorithms.registry import SELF_ADJUSTING_ALGORITHMS, StaticOblivious
from repro.experiments.config import ExperimentScale, get_scale
from repro.sim.results import ResultTable
from repro.sim.runner import TrialRunner
from repro.workloads.temporal import TemporalWorkload
from repro.workloads.zipf import ZipfWorkload

__all__ = [
    "Q1_TEMPORAL_P",
    "Q1_ZIPF_A",
    "run_q1",
    "run_q1_temporal",
    "run_q1_spatial",
]

#: Temporal-locality parameter of Figure 2a.
Q1_TEMPORAL_P = 0.9

#: Zipf exponent of Figure 2b.
Q1_ZIPF_A = 2.2

_BASELINE = StaticOblivious.name


def _run_size_sweep(
    scale: ExperimentScale,
    locality: str,
    table_name: str,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ResultTable:
    """Shared implementation for both Q1 panels."""
    algorithms = list(SELF_ADJUSTING_ALGORITHMS) + [_BASELINE]
    table = ResultTable(
        name=table_name,
        columns=[
            "tree_size",
            "locality",
            "algorithm",
            "mean_total_cost",
            "baseline_total_cost",
            "difference",
        ],
    )
    for tree_size in scale.q1_sizes:
        n_requests = min(scale.n_requests, max(1_000, tree_size * 20))
        runner = TrialRunner(
            n_nodes=tree_size,
            n_requests=n_requests,
            n_trials=scale.n_trials,
            base_seed=scale.base_seed,
            n_jobs=n_jobs,
            chunk_size=chunk_size,
            backend=backend,
        )

        if locality == "temporal":
            def factory(seed: int, _size: int = tree_size) -> TemporalWorkload:
                return TemporalWorkload(_size, Q1_TEMPORAL_P, seed=seed)

        else:
            def factory(seed: int, _size: int = tree_size) -> ZipfWorkload:
                return ZipfWorkload(_size, Q1_ZIPF_A, seed=seed)

        aggregated = TrialRunner.aggregate(runner.run(algorithms, factory))
        baseline_cost = aggregated[_BASELINE].mean_total_cost
        for algorithm in SELF_ADJUSTING_ALGORITHMS:
            cost = aggregated[algorithm].mean_total_cost
            table.add_row(
                tree_size=tree_size,
                locality=locality,
                algorithm=algorithm,
                mean_total_cost=cost,
                baseline_total_cost=baseline_cost,
                difference=cost - baseline_cost,
            )
    return table


def run_q1_temporal(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ResultTable:
    """Reproduce Figure 2a (size sweep under temporal locality ``p = 0.9``)."""
    return _run_size_sweep(
        get_scale(scale),
        "temporal",
        "fig2a_network_size_temporal",
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        backend=backend,
    )


def run_q1_spatial(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ResultTable:
    """Reproduce Figure 2b (size sweep under Zipf spatial locality ``a = 2.2``)."""
    return _run_size_sweep(
        get_scale(scale),
        "spatial",
        "fig2b_network_size_spatial",
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        backend=backend,
    )


def run_q1(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, ResultTable]:
    """Run both Q1 panels and return them keyed by figure identifier."""
    return {
        "fig2a": run_q1_temporal(
            scale, n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
        ),
        "fig2b": run_q1_spatial(
            scale, n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
        ),
    }


def benefit_by_size(table: ResultTable, algorithm: str) -> List[float]:
    """Extract the cost differences of ``algorithm`` ordered by tree size (plot series)."""
    rows = [row for row in table.rows if row["algorithm"] == algorithm]
    rows.sort(key=lambda row: row["tree_size"])
    return [float(row["difference"]) for row in rows]
