"""Q4 - Rotor-Push under combined locality, and Rotor-Push vs Random-Push.

Reproduces the two panels of Figure 5:

* **Figure 5a** - the wireframe of the total-cost difference between Rotor-Push
  and Static-Oblivious over the grid of temporal (``p``) and spatial (``a``)
  locality parameters.  Combined locality gives the largest improvements.
* **Figure 5b** - the histogram (log-scale y-axis) of the *per-request* access
  cost difference between Rotor-Push and Random-Push over uniform request
  sequences.  The distribution concentrates sharply around zero with a mean of
  roughly ``-0.0003`` in the paper; the reproduction checks the same
  concentration and near-zero mean.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algorithms.registry import RotorPush, RandomPush, StaticOblivious
from repro.experiments.config import get_scale
from repro.sim.metrics import Histogram, histogram_of_differences, per_request_cost_difference
from repro.sim.results import ResultTable
from repro.sim.runner import SpecSource, TrialPayload, TrialRunner, execute_payloads
from repro.workloads.composite import CombinedLocalityWorkload
from repro.workloads.spec import DEFAULT_CHUNK_SIZE, WorkloadSpec

__all__ = ["run_q4_wireframe", "run_q4_histogram", "wireframe_grid"]


def run_q4_wireframe(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ResultTable:
    """Run the Figure 5a grid and return one row per (p, a) point.

    All (p, a, trial, algorithm) work items of the grid are flattened into a
    single (optionally parallel) pass; workloads cross the process boundary
    as specs and are streamed in the workers.  Results are bit-identical for
    every ``n_jobs``.
    """
    config = get_scale(scale)
    algorithms = [RotorPush.name, StaticOblivious.name]
    table = ResultTable(
        name="fig5a_combined_locality",
        columns=[
            "p",
            "a",
            "rotor_total_cost",
            "static_oblivious_total_cost",
            "difference",
        ],
    )
    runner = TrialRunner(
        n_nodes=config.n_nodes,
        n_requests=config.n_requests,
        n_trials=config.n_trials,
        base_seed=config.base_seed,
        chunk_size=chunk_size,
        backend=backend,
    )
    all_payloads: List[TrialPayload] = []
    cells: List[Tuple[float, float, List[TrialPayload]]] = []
    for probability in config.q4_probabilities:
        for exponent in config.q4_exponents:
            sources = runner.trial_sources(
                lambda seed, _p=probability, _a=exponent: CombinedLocalityWorkload(
                    config.n_nodes, _a, _p, seed=seed
                )
            )
            payloads = runner.build_payloads(algorithms, sources)
            all_payloads.extend(payloads)
            cells.append((probability, exponent, payloads))
    all_results = execute_payloads(all_payloads, n_jobs)
    cursor = 0
    for probability, exponent, payloads in cells:
        results = all_results[cursor : cursor + len(payloads)]
        cursor += len(payloads)
        aggregated = TrialRunner.aggregate(
            TrialRunner.collect(algorithms, payloads, results)
        )
        rotor_cost = aggregated[RotorPush.name].mean_total_cost
        static_cost = aggregated[StaticOblivious.name].mean_total_cost
        table.add_row(
            p=probability,
            a=exponent,
            rotor_total_cost=rotor_cost,
            static_oblivious_total_cost=static_cost,
            difference=rotor_cost - static_cost,
        )
    return table


def wireframe_grid(table: ResultTable) -> Tuple[List[float], List[float], List[List[float]]]:
    """Re-shape the Figure 5a table into (p values, a values, difference grid)."""
    probabilities = sorted({float(row["p"]) for row in table.rows})
    exponents = sorted({float(row["a"]) for row in table.rows})
    grid: List[List[float]] = []
    for probability in probabilities:
        row_values: List[float] = []
        for exponent in exponents:
            match = [
                row
                for row in table.rows
                if float(row["p"]) == probability and float(row["a"]) == exponent
            ]
            row_values.append(float(match[0]["difference"]) if match else 0.0)
        grid.append(row_values)
    return probabilities, exponents, grid


def run_q4_histogram(
    scale: str = "tiny",
    n_sequences: int = None,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> Tuple[Histogram, Dict[str, float]]:
    """Run the Figure 5b comparison and return the histogram plus summary statistics.

    Rotor-Push and Random-Push serve the *same* uniform sequences from the
    *same* initial placements: both payloads of a pair carry the same
    uniform-workload spec, so the workers regenerate identical streams.  With
    ``n_jobs > 1`` the per-sequence simulations run on a process pool; the
    histogram is identical for every ``n_jobs``.
    """
    config = get_scale(scale)
    if n_sequences is None:
        n_sequences = max(2, config.n_trials)
    payloads: List[TrialPayload] = []
    for index in range(n_sequences):
        spec = WorkloadSpec.create(
            "uniform", seed=config.base_seed + index, n_elements=config.n_nodes
        )
        # both algorithms of the pair serve this stream: shared lets the
        # worker generate it once
        source = SpecSource(
            spec,
            config.n_requests,
            DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size,
            shared=True,
        )
        placement_seed = config.base_seed + 500 + index
        payloads.append(
            TrialPayload(
                algorithm=RotorPush.name,
                source=source,
                n_nodes=config.n_nodes,
                placement_seed=placement_seed,
                algorithm_seed=None,
                keep_records=True,
                trial=index,
                backend=backend,
            )
        )
        payloads.append(
            TrialPayload(
                algorithm=RandomPush.name,
                source=source,
                n_nodes=config.n_nodes,
                placement_seed=placement_seed,
                algorithm_seed=config.base_seed + 900 + index,
                keep_records=True,
                trial=index,
                backend=backend,
            )
        )
    results = execute_payloads(payloads, n_jobs)
    differences: List[int] = []
    for pair_start in range(0, len(results), 2):
        rotor_result = results[pair_start]
        random_result = results[pair_start + 1]
        differences.extend(
            per_request_cost_difference(rotor_result, random_result, which="access")
        )
    histogram = histogram_of_differences(differences)
    summary = {
        "mean_difference": histogram.mean(),
        "max_abs_difference": float(max((abs(v) for v in histogram.support()), default=0)),
        "n_samples": float(histogram.total),
        "n_sequences": float(n_sequences),
    }
    return histogram, summary
