"""Q4 - Rotor-Push under combined locality, and Rotor-Push vs Random-Push.

Reproduces the two panels of Figure 5:

* **Figure 5a** - the wireframe of the total-cost difference between Rotor-Push
  and Static-Oblivious over the grid of temporal (``p``) and spatial (``a``)
  locality parameters.  Combined locality gives the largest improvements.
* **Figure 5b** - the histogram (log-scale y-axis) of the *per-request* access
  cost difference between Rotor-Push and Random-Push over uniform request
  sequences.  The distribution concentrates sharply around zero with a mean of
  roughly ``-0.0003`` in the paper; the reproduction checks the same
  concentration and near-zero mean.

Both panels are declarative plans.  The wireframe is a
:class:`repro.plans.SweepPlan` over the ``(p, a)`` grid whose generic sweep
table the ``q4_wireframe`` assembler reshapes into the difference table.  The
histogram's payload structure is bespoke (paired Rotor/Random payloads
serving the *same* uniform stream from the *same* initial placement, with
their own seed derivation), so it ships as an assembler-only
:class:`repro.plans.ExperimentPlan` whose ``q4_histogram`` assembler builds
those payloads from the plan's config — through the same
:func:`repro.sim.runner.execute_payloads` machinery as always.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algorithms.registry import RotorPush, RandomPush, StaticOblivious
from repro.exceptions import PlanError
from repro.experiments.config import get_scale
from repro.plans import ExperimentPlan, SweepPlan
from repro.plans.execute import StageResult, register_assembler, run as run_plan
from repro.sim.metrics import Histogram, histogram_of_differences, per_request_cost_difference
from repro.sim.results import ResultTable
from repro.sim.runner import SpecSource, TrialPayload, execute_payloads
from repro.workloads.spec import DEFAULT_CHUNK_SIZE, WorkloadSpec

__all__ = [
    "build_q4_plan",
    "build_q4_wireframe_plan",
    "build_q4_histogram_plan",
    "run_q4",
    "run_q4_wireframe",
    "run_q4_histogram",
    "wireframe_grid",
]


def build_q4_wireframe_plan(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ExperimentPlan:
    """Build the Figure 5a plan: a ``(p, a)`` grid sweep plus the reshaper."""
    config = get_scale(scale)
    algorithms = (RotorPush.name, StaticOblivious.name)
    points = tuple(
        {"p": float(p), "a": float(a)}
        for p in config.q4_probabilities
        for a in config.q4_exponents
    )
    sweep = SweepPlan(
        name="fig5a_combined_locality_grid",
        workload=WorkloadSpec.create("combined-locality", n_elements=config.n_nodes),
        algorithms=algorithms,
        points=points,
        bind={"p": "repeat_probability", "a": "zipf_exponent"},
        n_nodes=config.n_nodes,
        config=config.run_config(
            n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
        ),
    )
    return ExperimentPlan.create(
        name="fig5a_combined_locality",
        stages=(("grid", sweep),),
        assembler="q4_wireframe",
        params={"rotor": RotorPush.name, "baseline": StaticOblivious.name},
    )


@register_assembler("q4_wireframe")
def _assemble_q4_wireframe(
    plan: ExperimentPlan, stages: List[StageResult]
) -> ResultTable:
    """Reshape the grid sweep's table into the Figure 5a difference table."""
    if len(stages) != 1 or stages[0].table is None:
        raise PlanError("assembler 'q4_wireframe' expects one sweep stage")
    params = plan.param_dict()
    rotor, baseline = str(params["rotor"]), str(params["baseline"])
    costs: Dict[Tuple[float, float], Dict[str, float]] = {}
    order: List[Tuple[float, float]] = []
    for row in stages[0].table.rows:
        point = (float(row["p"]), float(row["a"]))
        if point not in costs:
            costs[point] = {}
            order.append(point)
        costs[point][str(row["algorithm"])] = float(row["mean_total_cost"])
    table = ResultTable(
        name=plan.name,
        columns=[
            "p",
            "a",
            "rotor_total_cost",
            "static_oblivious_total_cost",
            "difference",
        ],
    )
    for probability, exponent in order:
        cell = costs[(probability, exponent)]
        rotor_cost = cell[rotor]
        static_cost = cell[baseline]
        table.add_row(
            p=probability,
            a=exponent,
            rotor_total_cost=rotor_cost,
            static_oblivious_total_cost=static_cost,
            difference=rotor_cost - static_cost,
        )
    return table


def run_q4_wireframe(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ResultTable:
    """Run the Figure 5a grid and return one row per (p, a) point.

    All (p, a, trial, algorithm) work items of the grid are flattened into a
    single (optionally parallel) pass; workloads cross the process boundary
    as specs and are streamed in the workers.  Results are bit-identical for
    every ``n_jobs``.
    """
    return run_plan(build_q4_wireframe_plan(scale, n_jobs, chunk_size, backend))


def wireframe_grid(table: ResultTable) -> Tuple[List[float], List[float], List[List[float]]]:
    """Re-shape the Figure 5a table into (p values, a values, difference grid)."""
    probabilities = sorted({float(row["p"]) for row in table.rows})
    exponents = sorted({float(row["a"]) for row in table.rows})
    grid: List[List[float]] = []
    for probability in probabilities:
        row_values: List[float] = []
        for exponent in exponents:
            match = [
                row
                for row in table.rows
                if float(row["p"]) == probability and float(row["a"]) == exponent
            ]
            row_values.append(float(match[0]["difference"]) if match else 0.0)
        grid.append(row_values)
    return probabilities, exponents, grid


def build_q4_histogram_plan(
    scale: str = "tiny",
    n_sequences: Optional[int] = None,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ExperimentPlan:
    """Build the Figure 5b plan (assembler-only: bespoke paired payloads)."""
    config = get_scale(scale)
    return ExperimentPlan.create(
        name="fig5b_rotor_vs_random",
        assembler="q4_histogram",
        params={
            "n_nodes": config.n_nodes,
            "n_sequences": n_sequences,
            "rotor": RotorPush.name,
            "random": RandomPush.name,
        },
        config=config.run_config(
            keep_records=True, n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
        ),
    )


@register_assembler("q4_histogram")
def _assemble_q4_histogram(
    plan: ExperimentPlan, stages: List[StageResult]
) -> Tuple[Histogram, Dict[str, float]]:
    """Build, execute and fold the paired Rotor/Random payloads of Figure 5b."""
    if stages:
        raise PlanError("assembler 'q4_histogram' is assembler-only (no stages)")
    if plan.config is None:
        raise PlanError("assembler 'q4_histogram' needs the plan's config")
    params = plan.param_dict()
    config = plan.config
    n_nodes = int(params["n_nodes"])
    n_sequences = params.get("n_sequences")
    if n_sequences is None:
        n_sequences = max(2, config.n_trials)
    n_sequences = int(n_sequences)
    rotor, random_push = str(params["rotor"]), str(params["random"])
    base_seed = config.base_seed
    chunk = DEFAULT_CHUNK_SIZE if config.chunk_size is None else config.chunk_size
    payloads: List[TrialPayload] = []
    for index in range(n_sequences):
        spec = WorkloadSpec.create(
            "uniform", seed=base_seed + index, n_elements=n_nodes
        )
        # both algorithms of the pair serve this stream: shared lets the
        # worker generate it once
        source = SpecSource(spec, config.n_requests, chunk, shared=True)
        placement_seed = base_seed + 500 + index
        payloads.append(
            TrialPayload(
                algorithm=rotor,
                source=source,
                n_nodes=n_nodes,
                placement_seed=placement_seed,
                algorithm_seed=None,
                keep_records=True,
                trial=index,
                backend=config.backend,
            )
        )
        payloads.append(
            TrialPayload(
                algorithm=random_push,
                source=source,
                n_nodes=n_nodes,
                placement_seed=placement_seed,
                algorithm_seed=base_seed + 900 + index,
                keep_records=True,
                trial=index,
                backend=config.backend,
            )
        )
    results = execute_payloads(payloads, config.n_jobs)
    differences: List[int] = []
    for pair_start in range(0, len(results), 2):
        rotor_result = results[pair_start]
        random_result = results[pair_start + 1]
        differences.extend(
            per_request_cost_difference(rotor_result, random_result, which="access")
        )
    histogram = histogram_of_differences(differences)
    summary = {
        "mean_difference": histogram.mean(),
        "max_abs_difference": float(max((abs(v) for v in histogram.support()), default=0)),
        "n_samples": float(histogram.total),
        "n_sequences": float(n_sequences),
    }
    return histogram, summary


def run_q4_histogram(
    scale: str = "tiny",
    n_sequences: int = None,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> Tuple[Histogram, Dict[str, float]]:
    """Run the Figure 5b comparison and return the histogram plus summary statistics.

    Rotor-Push and Random-Push serve the *same* uniform sequences from the
    *same* initial placements: both payloads of a pair carry the same
    uniform-workload spec, so the workers regenerate identical streams.  With
    ``n_jobs > 1`` the per-sequence simulations run on a process pool; the
    histogram is identical for every ``n_jobs``.
    """
    return run_plan(
        build_q4_histogram_plan(scale, n_sequences, n_jobs, chunk_size, backend)
    )


def build_q4_plan(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ExperimentPlan:
    """Build the full Q4 plan: wireframe and histogram keyed by figure."""
    return ExperimentPlan.create(
        name="q4_combined_locality",
        stages=(
            ("fig5a", build_q4_wireframe_plan(scale, n_jobs, chunk_size, backend)),
            ("fig5b", build_q4_histogram_plan(scale, None, n_jobs, chunk_size, backend)),
        ),
        assembler="tables",
    )


def run_q4(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, object]:
    """Run both Q4 panels and return them keyed by figure identifier."""
    return run_plan(build_q4_plan(scale, n_jobs, chunk_size, backend))
