"""The raw-text corpus pipeline as one declarative plan.

The end-to-end Figure 6/7 pipeline on a small corpus (formerly the imperative
``examples/corpus_pipeline.py`` script): slide a three-letter window over
each text to obtain a request sequence, place every sequence on the
complexity map, then run all six paper algorithms on each sequence and
compare costs.

Unlike :mod:`repro.experiments.q5_corpus` (which ships materialised corpus
traces as :class:`~repro.sim.runner.SequenceSource` data), this pipeline
leans on the ``corpus`` *recipe* workload kind: each dataset is a
:class:`~repro.workloads.WorkloadSpec` — a file path or a few synthetic-book
integers — shipped to the workers as a shared
:class:`~repro.sim.runner.SpecSource` and rebuilt there, bit-identically.
The plan is assembler-only because its parameters (book count, corpus scale,
window, optional file paths) *are* the corpus; everything downstream derives
from them deterministically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.algorithms.registry import PAPER_ALGORITHMS
from repro.analysis.complexity_map import trace_complexity
from repro.analysis.entropy import locality_summary
from repro.exceptions import PlanError
from repro.plans import ExperimentPlan, RunConfig
from repro.plans.execute import StageResult, register_assembler, run as run_plan
from repro.resilience.retry import RetryPolicy
from repro.sim.results import ResultTable
from repro.sim.runner import SpecSource, TrialPayload, execute_payloads
from repro.workloads.corpus import synthetic_corpus_specs
from repro.workloads.spec import DEFAULT_CHUNK_SIZE, WorkloadSpec

__all__ = [
    "build_corpus_pipeline_plan",
    "run_corpus_pipeline",
]

#: Default pipeline shape (the former script's constants).
N_BOOKS = 3
CORPUS_SCALE = 0.15
WINDOW = 3
MAX_REQUESTS = 30_000
CORPUS_BASE_SEED = 1


def build_corpus_pipeline_plan(
    n_books: int = N_BOOKS,
    scale: float = CORPUS_SCALE,
    window: int = WINDOW,
    paths: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    max_requests: int = MAX_REQUESTS,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ExperimentPlan:
    """Build the corpus-pipeline plan (assembler-only).

    With ``paths`` the corpus is the named text files (each becomes a
    file-backed ``corpus`` spec — such plans only run where the files
    exist); without, it is the deterministic synthetic corpus named by
    ``(n_books, scale)``.
    """
    params: Dict[str, object] = {
        "window": int(window),
        "algorithms": tuple(algorithms or PAPER_ALGORITHMS),
    }
    if paths is not None:
        params["paths"] = tuple(str(path) for path in paths)
    else:
        params["n_books"] = int(n_books)
        params["scale"] = float(scale)
    return ExperimentPlan.create(
        name="corpus",
        assembler="corpus_pipeline",
        params=params,
        config=RunConfig(
            n_requests=int(max_requests),
            n_trials=1,
            base_seed=CORPUS_BASE_SEED,
            n_jobs=n_jobs,
            chunk_size=chunk_size,
            backend=backend,
        ),
    )


def _corpus_specs(params: Dict[str, object]) -> List[WorkloadSpec]:
    """Return the corpus recipe specs named by plan parameters."""
    window = int(params.get("window", WINDOW))
    if "paths" in params:
        return [
            WorkloadSpec.create("corpus", path=str(path), window=window)
            for path in params["paths"]
        ]
    return synthetic_corpus_specs(
        n_books=int(params.get("n_books", N_BOOKS)),
        scale=float(params.get("scale", CORPUS_SCALE)),
        window=window,
    )


def _complexity_table(workloads) -> ResultTable:
    """Compute the Figure 6-style complexity-map coordinates (parent-side)."""
    table = ResultTable(
        name="complexity_map",
        columns=["dataset", "requests", "distinct_triples", "temporal", "non_temporal", "entropy"],
    )
    for workload in workloads:
        sequence = workload.full_sequence()
        point = trace_complexity(sequence, universe_size=workload.n_distinct)
        stats = locality_summary(sequence)
        table.add_row(
            dataset=workload.title,
            requests=len(sequence),
            distinct_triples=workload.n_distinct,
            temporal=point.temporal_complexity,
            non_temporal=point.non_temporal_complexity,
            entropy=stats["entropy_bits"],
        )
    return table


@register_assembler("corpus_pipeline")
def _assemble_corpus_pipeline(
    plan: ExperimentPlan, stages: List[StageResult]
) -> Dict[str, ResultTable]:
    """Run the pipeline: complexity map parent-side, cost runs fanned out."""
    if stages:
        raise PlanError("assembler 'corpus_pipeline' is assembler-only")
    if plan.config is None:
        raise PlanError("assembler 'corpus_pipeline' needs the plan's config")
    params = plan.param_dict()
    config = plan.config
    specs = _corpus_specs(params)
    workloads = [spec.build() for spec in specs]
    algorithms = [str(name) for name in params["algorithms"]]

    map_table = _complexity_table(workloads)

    chunk = DEFAULT_CHUNK_SIZE if config.chunk_size is None else config.chunk_size
    payloads: List[TrialPayload] = []
    for index, (spec, workload) in enumerate(zip(specs, workloads)):
        # One shared recipe spec per dataset: workers rebuild the corpus from
        # a few integers (or a file path) instead of unpickling the trace.
        # SequenceWorkload streaming stops at the trace length, so
        # n_requests acts as the same per-book cap the script applied.
        source = SpecSource(
            spec=spec,
            n_requests=config.n_requests,
            chunk_size=chunk,
            shared=True,
        )
        for algorithm in algorithms:
            payloads.append(
                TrialPayload(
                    algorithm=algorithm,
                    source=source,
                    n_nodes=workload.n_elements,
                    placement_seed=config.base_seed,
                    algorithm_seed=config.base_seed + 1,
                    keep_records=False,
                    trial=index,
                    metadata={"dataset": workload.title},
                    backend=config.backend,
                )
            )
    results = execute_payloads(
        payloads,
        config.n_jobs,
        worker_timeout=config.worker_timeout,
        retry=RetryPolicy.for_config(config),
        cache_dir=config.cache_dir,
    )
    cost_table = ResultTable(
        name="corpus_costs",
        columns=["dataset", "algorithm", "access", "adjustment", "total"],
    )
    for payload, result in zip(payloads, results):
        cost_table.add_row(
            dataset=payload.metadata["dataset"],
            algorithm=payload.algorithm_name,
            access=result.average_access_cost,
            adjustment=result.average_adjustment_cost,
            total=result.average_total_cost,
        )
    return {"complexity_map": map_table, "corpus_costs": cost_table}


def run_corpus_pipeline(
    paths: Optional[Sequence[str]] = None,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, ResultTable]:
    """Run the corpus pipeline and return its tables keyed by figure."""
    return run_plan(
        build_corpus_pipeline_plan(
            paths=paths, n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
        )
    )
