"""Multi-source network scenarios as declarative plans.

The datacenter-facing companion of q1–q5: instead of one source serving one
request sequence, a :class:`repro.plans.NetworkPlan` describes a whole
reconfigurable network — every source owns a self-adjusting tree over the
shared node set and a :class:`repro.network.traffic.TrafficSpec` describes the
traffic each source routes.  The shipped ``multisource`` golden plan compares
the paper's deterministic rotor algorithm against Max-Push (Strict-MRU) on the
same skewed multi-source traffic, reported per source and in aggregate by the
built-in ``trace_costs`` assembler.

Everything here is plan plumbing: :func:`build_multisource_plan` returns pure
data (pinned equal to ``experiments/plans/multisource.json`` by the golden
tests) and :func:`run_multisource` executes it through :func:`repro.run` like
every other experiment.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import get_scale
from repro.network.traffic import TrafficSpec
from repro.plans import ExperimentPlan, NetworkPlan
from repro.plans.execute import run as run_plan
from repro.sim.results import ResultTable
from repro.workloads.spec import WorkloadSpec

__all__ = ["build_multisource_plan", "run_multisource"]

#: The two tree algorithms the golden scenario compares (the paper's
#: deterministic winner versus the working-set-optimal MRU maintainer).
MULTISOURCE_ALGORITHMS = ("rotor-push", "max-push")


def _scenario_traffic(n_nodes: int, n_sources: int) -> TrafficSpec:
    """Describe the golden scenario's traffic: skewed sources, mixed locality.

    Even-indexed sources send Zipf-distributed traffic (spatial locality),
    odd-indexed sources temporal-locality traffic; the interleaving is
    ``weighted`` with weights decaying by source index, modelling the
    elephant/mice skew of datacenter workloads (the first sources front-load
    most of the traffic).  Workload seeds are left unstamped — the plan layer
    seeds every trial via :meth:`TrafficSpec.with_seed`.
    """
    source_workloads = {}
    weights = {}
    for index in range(n_sources):
        if index % 2 == 0:
            workload = WorkloadSpec.create(
                "zipf", n_elements=n_nodes, exponent=1.6
            )
        else:
            workload = WorkloadSpec.create(
                "temporal", n_elements=n_nodes, repeat_probability=0.6
            )
        source_workloads[index] = workload
        weights[index] = 1.0 / (1 + index)
    return TrafficSpec.create(
        n_nodes,
        source_workloads,
        interleaving="weighted",
        weights=weights,
    )


def build_multisource_plan(
    scale: str = "tiny",
    n_sources: int = 8,
    algorithms: Sequence[str] = MULTISOURCE_ALGORITHMS,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ExperimentPlan:
    """Build the multi-source scenario plan: one network stage per algorithm.

    ``config.n_requests`` of each stage counts requests *per source* — the
    scale's request budget is divided by the source count so the whole trace
    stays comparable to a single-source run at the same scale.
    """
    config = get_scale(scale)
    traffic = _scenario_traffic(config.n_nodes, n_sources)
    run_config = config.run_config(
        n_requests=max(1, config.n_requests // n_sources),
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        backend=backend,
    )
    stages = tuple(
        (
            algorithm,
            NetworkPlan(
                name=f"multisource_{algorithm}",
                traffic=traffic,
                algorithm=algorithm,
                config=run_config,
            ),
        )
        for algorithm in algorithms
    )
    return ExperimentPlan(
        name="multisource",
        stages=stages,
        assembler="trace_costs",
    )


def run_multisource(
    scale: str = "tiny",
    n_sources: int = 8,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ResultTable:
    """Run the multi-source scenario and return the per-source cost table."""
    return run_plan(
        build_multisource_plan(
            scale,
            n_sources=n_sources,
            n_jobs=n_jobs,
            chunk_size=chunk_size,
            backend=backend,
        )
    )
