"""Q5 - do experiments with (corpus-like) real data reflect the synthetic insights?

Reproduces Figures 6 and 7 on the five-book corpus:

* **Figure 6** - the complexity map: each book-derived request sequence is
  placed at its (temporal complexity, non-temporal complexity) coordinates
  computed from compressed trace sizes.  The paper's books land at temporal
  complexity 0.3-0.5 and non-temporal complexity 0.8-1.0 (moderate to high
  locality).
* **Figure 7** - per-book performance of all six algorithms (average access and
  adjustment cost per request).

Because the Canterbury corpus is not available offline, the default corpus is
the deterministic synthetic five-book corpus
(:mod:`repro.workloads.synthetic_text`); pass explicit
:class:`repro.workloads.corpus.CorpusWorkload` objects (e.g. built from real
files) to reproduce the original datasets exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.algorithms.registry import PAPER_ALGORITHMS
from repro.analysis.complexity_map import trace_complexity
from repro.analysis.entropy import locality_summary
from repro.experiments.config import get_scale
from repro.sim.results import ResultTable
from repro.sim.runner import SequenceSource, TrialPayload, execute_payloads
from repro.workloads.corpus import CorpusWorkload, synthetic_corpus_workloads

__all__ = ["corpus_for_scale", "run_q5_complexity_map", "run_q5_costs", "run_q5"]


def corpus_for_scale(
    scale: str = "tiny",
    workloads: Optional[Sequence[CorpusWorkload]] = None,
) -> List[CorpusWorkload]:
    """Return the corpus workloads used at the given scale (synthetic by default)."""
    if workloads is not None:
        return list(workloads)
    config = get_scale(scale)
    return synthetic_corpus_workloads(n_books=5, scale=config.corpus_scale)


def run_q5_complexity_map(
    scale: str = "tiny",
    workloads: Optional[Sequence[CorpusWorkload]] = None,
) -> ResultTable:
    """Compute the Figure 6 complexity-map coordinates for every corpus dataset."""
    table = ResultTable(
        name="fig6_complexity_map",
        columns=[
            "dataset",
            "n_requests",
            "n_distinct",
            "temporal_complexity",
            "non_temporal_complexity",
            "entropy_bits",
        ],
    )
    for workload in corpus_for_scale(scale, workloads):
        sequence = workload.full_sequence()
        point = trace_complexity(sequence, universe_size=workload.n_distinct)
        stats = locality_summary(sequence)
        table.add_row(
            dataset=workload.title,
            n_requests=len(sequence),
            n_distinct=workload.n_distinct,
            temporal_complexity=point.temporal_complexity,
            non_temporal_complexity=point.non_temporal_complexity,
            entropy_bits=stats["entropy_bits"],
        )
    return table


def run_q5_costs(
    scale: str = "tiny",
    workloads: Optional[Sequence[CorpusWorkload]] = None,
    algorithms: Optional[Sequence[str]] = None,
    max_requests: Optional[int] = None,
    n_jobs: int = 1,
    backend: Optional[str] = None,
) -> ResultTable:
    """Run all algorithms on every corpus dataset (Figure 7 data).

    The (dataset, algorithm) runs are independent; with ``n_jobs > 1`` they
    are fanned out over a process pool with bit-identical results.
    """
    config = get_scale(scale)
    algorithm_names = list(algorithms or PAPER_ALGORITHMS)
    table = ResultTable(
        name="fig7_corpus_costs",
        columns=[
            "dataset",
            "algorithm",
            "n_requests",
            "tree_size",
            "mean_access_cost",
            "mean_adjustment_cost",
            "mean_total_cost",
        ],
    )
    limit = max_requests if max_requests is not None else config.n_requests
    payloads: List[TrialPayload] = []
    for index, workload in enumerate(corpus_for_scale(scale, workloads)):
        # Corpus traces are data, not a recipe: ship the (truncated) sequence
        # itself.  All algorithms on a dataset share one source object.
        source = SequenceSource(tuple(workload.full_sequence()[:limit]))
        for algorithm in algorithm_names:
            payloads.append(
                TrialPayload(
                    algorithm=algorithm,
                    source=source,
                    n_nodes=workload.n_elements,
                    placement_seed=config.base_seed,
                    algorithm_seed=config.base_seed + 1,
                    keep_records=False,
                    trial=index,
                    metadata={"dataset": workload.title},
                    backend=backend,
                )
            )
    results = execute_payloads(payloads, n_jobs)
    for payload, result in zip(payloads, results):
        table.add_row(
            dataset=payload.metadata["dataset"],
            algorithm=payload.algorithm,
            n_requests=result.n_requests,
            tree_size=payload.n_nodes,
            mean_access_cost=result.average_access_cost,
            mean_adjustment_cost=result.average_adjustment_cost,
            mean_total_cost=result.average_total_cost,
        )
    return table


def run_q5(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, ResultTable]:
    """Run both Q5 analyses on the same corpus and return them keyed by figure.

    ``chunk_size`` is accepted for interface uniformity with the other
    experiment drivers; corpus traces cross the process boundary as data
    (:class:`repro.sim.runner.SequenceSource`), so it has no effect here.
    """
    workloads = corpus_for_scale(scale)
    return {
        "fig6": run_q5_complexity_map(scale, workloads),
        "fig7": run_q5_costs(scale, workloads, n_jobs=n_jobs, backend=backend),
    }
