"""Q5 - do experiments with (corpus-like) real data reflect the synthetic insights?

Reproduces Figures 6 and 7 on the five-book corpus:

* **Figure 6** - the complexity map: each book-derived request sequence is
  placed at its (temporal complexity, non-temporal complexity) coordinates
  computed from compressed trace sizes.  The paper's books land at temporal
  complexity 0.3-0.5 and non-temporal complexity 0.8-1.0 (moderate to high
  locality).
* **Figure 7** - per-book performance of all six algorithms (average access and
  adjustment cost per request).

Because the Canterbury corpus is not available offline, the default corpus is
the deterministic synthetic five-book corpus
(:mod:`repro.workloads.synthetic_text`); pass explicit
:class:`repro.workloads.corpus.CorpusWorkload` objects (e.g. built from real
files) to reproduce the original datasets exactly.

The default (synthetic-corpus) experiments are declarative plans: the corpus
is itself deterministic data derived from ``(n_books, corpus_scale)``, so the
plans are assembler-only :class:`repro.plans.ExperimentPlan` objects carrying
those parameters — corpus *traces* are data, not specs, and are rebuilt
inside the assemblers.  Explicitly passed workloads keep the imperative path
(they cannot be described by a plan document).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.registry import PAPER_ALGORITHMS
from repro.analysis.complexity_map import trace_complexity
from repro.analysis.entropy import locality_summary
from repro.exceptions import PlanError
from repro.experiments.config import get_scale
from repro.plans import ExperimentPlan
from repro.plans.execute import StageResult, register_assembler, run as run_plan
from repro.sim.results import ResultTable
from repro.sim.runner import SequenceSource, TrialPayload, execute_payloads
from repro.workloads.corpus import CorpusWorkload, synthetic_corpus_workloads

__all__ = [
    "build_q5_plan",
    "build_q5_complexity_plan",
    "build_q5_costs_plan",
    "corpus_for_scale",
    "run_q5_complexity_map",
    "run_q5_costs",
    "run_q5",
]

#: Number of synthetic books in the default corpus.
_N_BOOKS = 5


def corpus_for_scale(
    scale: str = "tiny",
    workloads: Optional[Sequence[CorpusWorkload]] = None,
) -> List[CorpusWorkload]:
    """Return the corpus workloads used at the given scale (synthetic by default)."""
    if workloads is not None:
        return list(workloads)
    config = get_scale(scale)
    return synthetic_corpus_workloads(n_books=_N_BOOKS, scale=config.corpus_scale)


@lru_cache(maxsize=2)
def _corpus_cache(n_books: int, corpus_scale: float) -> Tuple[CorpusWorkload, ...]:
    """Build (once) the deterministic synthetic corpus for these parameters.

    Memoised so the fig6 and fig7 assemblers of one ``run_q5`` pass share a
    single corpus build, as the pre-plan implementation did.  Safe to share:
    both consumers only read ``full_sequence()`` (pure trace data).
    """
    return tuple(synthetic_corpus_workloads(n_books=n_books, scale=corpus_scale))


def _rebuild_corpus(params: Dict[str, object]) -> List[CorpusWorkload]:
    """Return the deterministic synthetic corpus named by plan parameters."""
    return list(
        _corpus_cache(
            int(params.get("n_books", _N_BOOKS)),
            float(params.get("corpus_scale", 1.0)),
        )
    )


def _complexity_table(workloads: Sequence[CorpusWorkload]) -> ResultTable:
    """Compute the Figure 6 complexity-map coordinates for ``workloads``."""
    table = ResultTable(
        name="fig6_complexity_map",
        columns=[
            "dataset",
            "n_requests",
            "n_distinct",
            "temporal_complexity",
            "non_temporal_complexity",
            "entropy_bits",
        ],
    )
    for workload in workloads:
        sequence = workload.full_sequence()
        point = trace_complexity(sequence, universe_size=workload.n_distinct)
        stats = locality_summary(sequence)
        table.add_row(
            dataset=workload.title,
            n_requests=len(sequence),
            n_distinct=workload.n_distinct,
            temporal_complexity=point.temporal_complexity,
            non_temporal_complexity=point.non_temporal_complexity,
            entropy_bits=stats["entropy_bits"],
        )
    return table


def _costs_table(
    workloads: Sequence[CorpusWorkload],
    algorithms: Sequence[str],
    limit: int,
    base_seed: int,
    n_jobs: int,
    backend: Optional[str],
) -> ResultTable:
    """Run ``algorithms`` on every corpus dataset (Figure 7 data)."""
    table = ResultTable(
        name="fig7_corpus_costs",
        columns=[
            "dataset",
            "algorithm",
            "n_requests",
            "tree_size",
            "mean_access_cost",
            "mean_adjustment_cost",
            "mean_total_cost",
        ],
    )
    payloads: List[TrialPayload] = []
    for index, workload in enumerate(workloads):
        # Corpus traces are data, not a recipe: ship the (truncated) sequence
        # itself.  All algorithms on a dataset share one source object.
        source = SequenceSource(tuple(workload.full_sequence()[:limit]))
        for algorithm in algorithms:
            payloads.append(
                TrialPayload(
                    algorithm=algorithm,
                    source=source,
                    n_nodes=workload.n_elements,
                    placement_seed=base_seed,
                    algorithm_seed=base_seed + 1,
                    keep_records=False,
                    trial=index,
                    metadata={"dataset": workload.title},
                    backend=backend,
                )
            )
    results = execute_payloads(payloads, n_jobs)
    for payload, result in zip(payloads, results):
        table.add_row(
            dataset=payload.metadata["dataset"],
            algorithm=payload.algorithm_name,
            n_requests=result.n_requests,
            tree_size=payload.n_nodes,
            mean_access_cost=result.average_access_cost,
            mean_adjustment_cost=result.average_adjustment_cost,
            mean_total_cost=result.average_total_cost,
        )
    return table


def build_q5_complexity_plan(scale: str = "tiny") -> ExperimentPlan:
    """Build the Figure 6 plan (assembler-only: pure trace analysis)."""
    config = get_scale(scale)
    return ExperimentPlan.create(
        name="fig6_complexity_map",
        assembler="q5_complexity_map",
        params={"n_books": _N_BOOKS, "corpus_scale": config.corpus_scale},
    )


@register_assembler("q5_complexity_map")
def _assemble_q5_complexity(
    plan: ExperimentPlan, stages: List[StageResult]
) -> ResultTable:
    if stages:
        raise PlanError("assembler 'q5_complexity_map' is assembler-only")
    return _complexity_table(_rebuild_corpus(plan.param_dict()))


def build_q5_costs_plan(
    scale: str = "tiny",
    algorithms: Optional[Sequence[str]] = None,
    max_requests: Optional[int] = None,
    n_jobs: int = 1,
    backend: Optional[str] = None,
) -> ExperimentPlan:
    """Build the Figure 7 plan (assembler-only: trace-backed payloads)."""
    config = get_scale(scale)
    limit = max_requests if max_requests is not None else config.n_requests
    return ExperimentPlan.create(
        name="fig7_corpus_costs",
        assembler="q5_costs",
        params={
            "n_books": _N_BOOKS,
            "corpus_scale": config.corpus_scale,
            "algorithms": tuple(algorithms or PAPER_ALGORITHMS),
        },
        config=config.run_config(n_requests=limit, n_jobs=n_jobs, backend=backend),
    )


@register_assembler("q5_costs")
def _assemble_q5_costs(plan: ExperimentPlan, stages: List[StageResult]) -> ResultTable:
    if stages:
        raise PlanError("assembler 'q5_costs' is assembler-only")
    if plan.config is None:
        raise PlanError("assembler 'q5_costs' needs the plan's config")
    params = plan.param_dict()
    return _costs_table(
        _rebuild_corpus(params),
        [str(name) for name in params["algorithms"]],
        limit=plan.config.n_requests,
        base_seed=plan.config.base_seed,
        n_jobs=plan.config.n_jobs,
        backend=plan.config.backend,
    )


def run_q5_complexity_map(
    scale: str = "tiny",
    workloads: Optional[Sequence[CorpusWorkload]] = None,
) -> ResultTable:
    """Compute the Figure 6 complexity-map coordinates for every corpus dataset."""
    if workloads is not None:
        return _complexity_table(list(workloads))
    return run_plan(build_q5_complexity_plan(scale))


def run_q5_costs(
    scale: str = "tiny",
    workloads: Optional[Sequence[CorpusWorkload]] = None,
    algorithms: Optional[Sequence[str]] = None,
    max_requests: Optional[int] = None,
    n_jobs: int = 1,
    backend: Optional[str] = None,
) -> ResultTable:
    """Run all algorithms on every corpus dataset (Figure 7 data).

    The (dataset, algorithm) runs are independent; with ``n_jobs > 1`` they
    are fanned out over a process pool with bit-identical results.
    """
    if workloads is not None:
        config = get_scale(scale)
        limit = max_requests if max_requests is not None else config.n_requests
        return _costs_table(
            list(workloads),
            list(algorithms or PAPER_ALGORITHMS),
            limit=limit,
            base_seed=config.base_seed,
            n_jobs=n_jobs,
            backend=backend,
        )
    return run_plan(
        build_q5_costs_plan(scale, algorithms, max_requests, n_jobs, backend)
    )


def build_q5_plan(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ExperimentPlan:
    """Build the full Q5 plan: complexity map and per-book costs.

    ``chunk_size`` is accepted for interface uniformity with the other plan
    builders; corpus traces cross the process boundary as data
    (:class:`repro.sim.runner.SequenceSource`), so it has no effect here.
    """
    del chunk_size  # corpus traces ship as sequences; nothing streams
    return ExperimentPlan.create(
        name="q5_corpus",
        stages=(
            ("fig6", build_q5_complexity_plan(scale)),
            ("fig7", build_q5_costs_plan(scale, n_jobs=n_jobs, backend=backend)),
        ),
        assembler="tables",
    )


def run_q5(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, ResultTable]:
    """Run both Q5 analyses on the same corpus and return them keyed by figure."""
    return run_plan(build_q5_plan(scale, n_jobs, chunk_size, backend))
