"""The reconfigurable-datacenter scenario as a declarative plan.

The paper's motivating application (formerly the imperative
``examples/datacenter_reconfiguration.py`` script): 64 racks, four of which
host traffic-heavy services and act as sources, each source's traffic a
clustered Markov walk over its destination racks.  The same traffic is routed
over Rotor-Push trees, Random-Push trees and demand-oblivious static trees,
and the per-request costs are compared against the bounded-degree composition
guarantee.

Everything here is plan plumbing: :func:`build_datacenter_plan` returns pure
data (one :class:`repro.plans.NetworkPlan` stage per tree algorithm, pinned
equal to ``experiments/plans/datacenter.json`` by the golden tests) and the
``datacenter`` assembler folds the per-stage totals into the scenario's
comparison table.  :func:`build_datacenter_sweep_plan` is the parameter-study
variant: a :class:`repro.plans.TrafficSweepPlan` sweeping the source count of
the same rack traffic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import PlanError
from repro.network.topology import theoretical_degree_bound
from repro.network.traffic import TrafficSpec
from repro.plans import ExperimentPlan, NetworkPlan, RunConfig, TrafficSweepPlan
from repro.plans.execute import StageResult, register_assembler, run as run_plan
from repro.sim.results import ResultTable
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "DATACENTER_ALGORITHMS",
    "build_datacenter_plan",
    "build_datacenter_sweep_plan",
    "datacenter_traffic",
    "run_datacenter",
]

#: The tree algorithms the scenario compares: the paper's deterministic
#: winner, its randomised twin, and the demand-oblivious baseline.
DATACENTER_ALGORITHMS = ("rotor-push", "random-push", "static-oblivious")

#: Default scenario shape (the former script's constants).
N_RACKS = 64
N_SOURCES = 4
REQUESTS_PER_SOURCE = 2_000
DATACENTER_BASE_SEED = 9


def datacenter_traffic(n_racks: int = N_RACKS, n_sources: int = N_SOURCES) -> TrafficSpec:
    """Describe the scenario's traffic: clustered per-source Markov walks.

    Each service talks mostly to a small cluster of racks (high self-loop and
    neighbour probability), the typical structure of datacenter traces.
    Workload seeds are left unstamped — the plan layer seeds every trial via
    :meth:`TrafficSpec.with_seed`.
    """
    workloads = {
        source: WorkloadSpec.create(
            "markov",
            n_elements=n_racks,
            n_neighbours=4,
            self_loop=0.55,
            neighbour_probability=0.35,
        )
        for source in range(n_sources)
    }
    return TrafficSpec.create(n_racks, workloads, interleaving="round_robin")


def build_datacenter_plan(
    n_racks: int = N_RACKS,
    n_sources: int = N_SOURCES,
    requests_per_source: int = REQUESTS_PER_SOURCE,
    algorithms: Sequence[str] = DATACENTER_ALGORITHMS,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ExperimentPlan:
    """Build the datacenter scenario plan: one network stage per algorithm.

    Every stage routes the *same* per-trial traffic (seeds derive from the
    trial index alone), so cost differences between the rows are purely
    algorithmic.
    """
    traffic = datacenter_traffic(n_racks, n_sources)
    config = RunConfig(
        n_requests=requests_per_source,
        n_trials=1,
        base_seed=DATACENTER_BASE_SEED,
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        backend=backend,
    )
    stages = tuple(
        (
            algorithm,
            NetworkPlan(
                name=f"datacenter_{algorithm}",
                traffic=traffic,
                algorithm=algorithm,
                config=config,
            ),
        )
        for algorithm in algorithms
    )
    return ExperimentPlan(
        name="datacenter",
        stages=stages,
        assembler="datacenter",
    )


def build_datacenter_sweep_plan(
    n_racks: int = N_RACKS,
    source_counts: Sequence[int] = (2, 4, 8),
    requests_per_source: int = 500,
    algorithms: Sequence[str] = ("rotor-push", "static-oblivious"),
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> TrafficSweepPlan:
    """Build the source-count parameter study over the datacenter traffic.

    A :class:`~repro.plans.TrafficSweepPlan` binding each point's
    ``n_sources`` into the traffic template: the single-source template's
    Markov workload is cycled over the resized source set, so every point
    describes the same per-rack demand at a different source density.
    """
    return TrafficSweepPlan(
        name="datacenter_sources",
        traffic=datacenter_traffic(n_racks, 1),
        algorithms=tuple(algorithms),
        points=tuple({"n_sources": count} for count in source_counts),
        bind={"n_sources": "n_sources"},
        config=RunConfig(
            n_requests=requests_per_source,
            n_trials=1,
            base_seed=DATACENTER_BASE_SEED,
            n_jobs=n_jobs,
            chunk_size=chunk_size,
            backend=backend,
        ),
    )


@register_assembler("datacenter")
def _assemble_datacenter(
    plan: ExperimentPlan, stages: List[StageResult]
) -> ResultTable:
    """Fold per-algorithm network stages into the scenario comparison table.

    One row per stage: the stage's aggregate ``"total"`` row renamed into the
    scenario's vocabulary (hops = access cost, reconfigurations = adjustment
    cost), plus the static bounded-degree composition guarantee
    (:func:`~repro.network.topology.theoretical_degree_bound`) of the stage's
    source count.
    """
    if not stages:
        raise PlanError(
            f"assembler 'datacenter' needs at least one network stage, "
            f"plan {plan.name!r} has none"
        )
    table = ResultTable(
        name="datacenter_reconfiguration",
        columns=["tree_algorithm", "avg_hops", "avg_reconfig", "avg_total", "degree_bound"],
    )
    for stage in stages:
        if not isinstance(stage.plan, NetworkPlan) or stage.table is None:
            raise PlanError(
                f"assembler 'datacenter' expects network-plan stages, stage "
                f"{stage.key!r} of plan {plan.name!r} is {type(stage.plan).__name__}"
            )
        total = next(
            row for row in stage.table.rows if row["source"] == "total"
        )
        table.add_row(
            tree_algorithm=stage.plan.algorithm.name,
            avg_hops=total["mean_access_cost"],
            avg_reconfig=total["mean_adjustment_cost"],
            avg_total=total["mean_total_cost"],
            degree_bound=theoretical_degree_bound(stage.plan.n_sources),
        )
    return table


def run_datacenter(
    n_racks: int = N_RACKS,
    n_sources: int = N_SOURCES,
    requests_per_source: int = REQUESTS_PER_SOURCE,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ResultTable:
    """Run the datacenter scenario and return its comparison table."""
    return run_plan(
        build_datacenter_plan(
            n_racks,
            n_sources=n_sources,
            requests_per_source=requests_per_source,
            n_jobs=n_jobs,
            chunk_size=chunk_size,
            backend=backend,
        )
    )
