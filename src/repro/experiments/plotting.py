"""Plain-text rendering of experiment results.

The reproduction environment has no plotting library, so each figure of the
paper is reproduced as (a) the underlying data series in a
:class:`repro.sim.results.ResultTable` and (b) an ASCII rendering produced by
this module: grouped bar charts for per-algorithm costs, line charts for
parameter sweeps, heat maps for the Q4 wireframe and log-scale histograms for
Figure 5b.  The renderers are intentionally simple and dependency-free; they
exist so that reports and benchmark output remain human-readable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.sim.metrics import Histogram

__all__ = ["bar_chart", "line_chart", "heatmap", "histogram_chart"]


def _scaled(value: float, maximum: float, width: int) -> int:
    if maximum <= 0:
        return 0
    return max(0, min(width, int(round(width * value / maximum))))


def bar_chart(
    title: str,
    values: Dict[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render a horizontal bar chart of label -> value."""
    if not values:
        return f"{title}\n(no data)"
    maximum = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = [title]
    for label, value in values.items():
        bar = "#" * _scaled(abs(value), maximum, width)
        sign = "-" if value < 0 else ""
        lines.append(f"{label.ljust(label_width)} | {sign}{bar} {value:.3f}{unit}")
    return "\n".join(lines)


def line_chart(
    title: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: Optional[int] = None,
) -> str:
    """Render several series over common x values as a character grid.

    Each series is assigned a distinct marker character; the y-axis is scaled
    to the overall min/max across series.
    """
    if not series:
        return f"{title}\n(no data)"
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ExperimentError(
                f"series {name!r} has {len(values)} points but there are {len(x_values)} x values"
            )
    markers = "ox+*#@%&"
    all_values = [value for values in series.values() for value in values]
    low, high = min(all_values), max(all_values)
    if math.isclose(low, high):
        high = low + 1.0
    columns = width or max(len(x_values) * 3, 30)
    grid = [[" "] * columns for _ in range(height)]
    for series_index, (name, values) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        for point_index, value in enumerate(values):
            column = int(round(point_index * (columns - 1) / max(1, len(x_values) - 1)))
            row = height - 1 - int(round((value - low) * (height - 1) / (high - low)))
            grid[row][column] = marker
    lines = [title, f"y: {low:.3f} .. {high:.3f}"]
    lines.extend("".join(row) for row in grid)
    lines.append("x: " + ", ".join(f"{x:g}" for x in x_values))
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def heatmap(
    title: str,
    row_labels: Sequence[object],
    column_labels: Sequence[object],
    values: Sequence[Sequence[float]],
    cell_width: int = 8,
) -> str:
    """Render a 2-D grid of numbers (used for the Q4 wireframe data)."""
    if len(values) != len(row_labels):
        raise ExperimentError("heatmap needs one row of values per row label")
    for row in values:
        if len(row) != len(column_labels):
            raise ExperimentError("heatmap rows must match the number of column labels")
    header = " " * cell_width + "".join(str(label).rjust(cell_width) for label in column_labels)
    lines = [title, header]
    for label, row in zip(row_labels, values):
        cells = "".join(f"{value:.2f}".rjust(cell_width) for value in row)
        lines.append(str(label).rjust(cell_width) + cells)
    return "\n".join(lines)


def histogram_chart(
    title: str,
    histogram: Histogram,
    width: int = 40,
    log_scale: bool = True,
) -> str:
    """Render a histogram (probability per value) with optional log-scaled bars.

    Matches the presentation of Figure 5b, whose y-axis is logarithmic.
    """
    rows: List[Tuple[int, float]] = [
        (value, probability) for value, _, probability in histogram.as_rows()
    ]
    if not rows:
        return f"{title}\n(no data)"
    lines = [title, f"samples: {histogram.total}, mean: {histogram.mean():.5f}"]
    probabilities = [probability for _, probability in rows if probability > 0]
    min_log = math.log10(min(probabilities)) if probabilities else -1.0
    for value, probability in rows:
        if probability <= 0:
            bar_length = 0
        elif log_scale and min_log < 0:
            bar_length = _scaled(math.log10(probability) - min_log, -min_log, width)
        else:
            bar_length = _scaled(probability, 1.0, width)
        lines.append(f"{value:+4d} | {'#' * bar_length} {probability:.2e}")
    return "\n".join(lines)
