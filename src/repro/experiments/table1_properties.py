"""Table 1 - algorithm properties, plus the analytical results checked empirically.

The paper's Table 1 lists, for each algorithm, whether it is deterministic,
whether its access costs satisfy the working-set property, whether its total
cost satisfies the working-set bound, and the best known competitive ratio.
This module reproduces the table by combining

* static facts encoded on the algorithm classes (deterministic or not,
  the proven competitive ratios of Theorems 7 and 11), and
* empirical checks: the Lemma 8 adversarial construction demonstrating that
  Rotor-Push violates the working-set property (access cost linear in the
  working-set size) while Random-Push does not on the same kind of input; the
  Section 1.1 round-robin construction against Move-To-Front; measured
  cost-to-working-set-bound ratios on mixed workloads; and the per-round
  amortised inequality of the Rotor-Push potential argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.algorithms.registry import (
    PAPER_ALGORITHMS,
    RandomPush,
    RotorPush,
    get_algorithm_class,
)
from repro.analysis.bounds import compute_lower_bounds
from repro.analysis.potential import (
    RANDOM_PUSH_COMPETITIVE_RATIO,
    ROTOR_PUSH_COMPETITIVE_RATIO,
    PotentialTracker,
)
from repro.analysis.working_set import max_working_set_violation, working_set_property_ratios
from repro.plans import ExperimentPlan
from repro.plans.execute import register_assembler
from repro.sim.engine import simulate
from repro.sim.results import ResultTable
from repro.workloads.adversarial import (
    MoveToFrontLowerBoundAdversary,
    RotorPushWorkingSetAdversary,
)
from repro.workloads.composite import CombinedLocalityWorkload
from repro.workloads.uniform import UniformWorkload

__all__ = [
    "KNOWN_COMPETITIVE_RATIOS",
    "WorkingSetViolationResult",
    "build_table1_plan",
    "run_working_set_violation",
    "run_mtf_lower_bound",
    "run_ws_bound_ratios",
    "run_potential_check",
    "run_table1",
]

#: Best competitive ratios established by the paper (Table 1, blue entries) and
#: by the earlier LATIN 2020 paper (Move-Half).  ``None`` marks open problems.
KNOWN_COMPETITIVE_RATIOS: Dict[str, Optional[int]] = {
    RotorPush.name: ROTOR_PUSH_COMPETITIVE_RATIO,
    RandomPush.name: RANDOM_PUSH_COMPETITIVE_RATIO,
    "move-half": 64,
    "max-push": None,
    "static-oblivious": None,
    "static-opt": None,
}


@dataclass(frozen=True)
class WorkingSetViolationResult:
    """Outcome of the Lemma 8 experiment for one tree depth.

    Attributes
    ----------
    depth:
        Tree depth used.
    working_set_limit:
        The bound ``2x - 1`` on the working-set size of the construction
        (``x = depth + 1`` levels).
    max_access_cost:
        Largest access cost observed for Rotor-Push on the adversarial
        sequence (the lemma predicts it reaches ``depth + 1``).
    max_cost_to_log_rank_ratio:
        Largest ratio of access cost to ``log2(rank) + 1``; a working-set
        property would keep this bounded by a constant, the construction makes
        it grow linearly with the depth.
    """

    depth: int
    working_set_limit: int
    max_access_cost: int
    max_cost_to_log_rank_ratio: float


def run_working_set_violation(
    depths: List[int],
    requests_per_depth: int = 2_000,
) -> List[WorkingSetViolationResult]:
    """Run the Lemma 8 construction for several depths (Rotor-Push lacks the WS property)."""
    results: List[WorkingSetViolationResult] = []
    for depth in depths:
        adversary = RotorPushWorkingSetAdversary(depth)
        sequence, costs = adversary.generate_with_costs(requests_per_depth)
        results.append(
            WorkingSetViolationResult(
                depth=depth,
                working_set_limit=2 * (depth + 1) - 1,
                max_access_cost=max(record.access_cost for record in costs),
                max_cost_to_log_rank_ratio=max_working_set_violation(sequence, costs),
            )
        )
    return results


def run_mtf_lower_bound(depths: List[int], cycles: int = 50) -> ResultTable:
    """Run the Section 1.1 construction: MTF pays ~depth per request on a round-robin path."""
    table = ResultTable(
        name="mtf_lower_bound",
        columns=["depth", "n_requests", "mean_access_cost", "path_length"],
    )
    for depth in depths:
        adversary = MoveToFrontLowerBoundAdversary(depth)
        n_requests = cycles * (depth + 1)
        _, costs = adversary.generate_with_costs(n_requests)
        mean_access = sum(record.access_cost for record in costs) / len(costs)
        table.add_row(
            depth=depth,
            n_requests=n_requests,
            mean_access_cost=mean_access,
            path_length=depth + 1,
        )
    return table


def run_ws_bound_ratios(
    n_nodes: int = 255,
    n_requests: int = 5_000,
    seed: int = 7,
) -> ResultTable:
    """Measure total cost divided by the working-set lower bound for every algorithm.

    Algorithms satisfying the working-set *bound* keep this ratio bounded by a
    constant; the measured values also serve as empirical (over-)estimates of
    the competitive ratio on the tested sequence.
    """
    workload = CombinedLocalityWorkload(n_nodes, zipf_exponent=1.4, repeat_probability=0.5, seed=seed)
    sequence = workload.generate(n_requests)
    bounds = compute_lower_bounds(n_nodes, sequence)
    table = ResultTable(
        name="working_set_bound_ratios",
        columns=[
            "algorithm",
            "total_cost",
            "working_set_bound",
            "cost_to_ws_bound",
            "cost_to_best_bound",
        ],
    )
    for algorithm in PAPER_ALGORITHMS:
        result = simulate(
            algorithm,
            sequence,
            n_nodes=n_nodes,
            placement_seed=seed,
            seed=seed + 1,
            keep_records=False,
        )
        ws_bound = max(bounds.working_set, 1.0)
        table.add_row(
            algorithm=algorithm,
            total_cost=result.total_cost,
            working_set_bound=bounds.working_set,
            cost_to_ws_bound=result.total_cost / ws_bound,
            cost_to_best_bound=result.total_cost / bounds.best,
        )
    return table


def run_potential_check(
    depth: int = 6,
    n_requests: int = 2_000,
    seed: int = 3,
) -> Dict[str, float]:
    """Empirically verify Theorem 7's per-round amortised inequality on random input."""
    tracker = PotentialTracker(depth)
    workload = UniformWorkload(tracker.algorithm.network.tree.n_nodes, seed=seed)
    tracker.run(workload.generate(n_requests))
    return tracker.summary()


def run_table1(
    adversary_depths: Optional[List[int]] = None,
    n_nodes: int = 255,
    n_requests: int = 5_000,
) -> ResultTable:
    """Assemble the reproduction of Table 1.

    Columns mirror the paper: whether the access costs showed the working-set
    property empirically (bounded cost-to-log-rank ratio on the adversarial
    input for Rotor-Push, on uniform input otherwise), whether the total cost
    stayed within a constant factor of the working-set bound, determinism, and
    the best known competitive ratio.
    """
    adversary_depths = adversary_depths or [4, 6, 8]
    violation = run_working_set_violation(adversary_depths, requests_per_depth=1_500)
    rotor_ratio_growth = violation[-1].max_cost_to_log_rank_ratio
    ws_ratios = {row["algorithm"]: row["cost_to_ws_bound"] for row in run_ws_bound_ratios(n_nodes, n_requests).rows}

    # Random-Push on the same kind of adversarial node set does keep access
    # costs logarithmic; we check it on a uniform sequence which exercises all
    # ranks (the paper proves the property, we confirm no blow-up empirically).
    uniform = UniformWorkload(n_nodes, seed=11)
    sequence = uniform.generate(n_requests)
    random_result = simulate(
        RandomPush.name, sequence, n_nodes=n_nodes, placement_seed=11, seed=13, keep_records=True
    )
    # Rank first accesses at the universe size so the cold-start phase (deep
    # elements that were simply never requested before) does not inflate the
    # ratio; the interesting quantity is the steady-state behaviour.
    random_ratio = max(
        working_set_property_ratios(
            sequence,
            random_result.per_request,
            first_access="universe",
            universe_size=n_nodes,
        )
    )

    table = ResultTable(
        name="table1_properties",
        columns=[
            "algorithm",
            "deterministic",
            "ws_property_ratio",
            "cost_to_ws_bound",
            "known_competitive_ratio",
        ],
    )
    for algorithm in PAPER_ALGORITHMS:
        cls = get_algorithm_class(algorithm)
        if algorithm == RotorPush.name:
            ws_ratio = rotor_ratio_growth
        elif algorithm == RandomPush.name:
            ws_ratio = random_ratio
        else:
            ws_ratio = float("nan")
        ratio = KNOWN_COMPETITIVE_RATIOS.get(algorithm)
        table.add_row(
            algorithm=algorithm,
            deterministic=cls.is_deterministic,
            ws_property_ratio=ws_ratio,
            cost_to_ws_bound=ws_ratios.get(algorithm, float("nan")),
            known_competitive_ratio=ratio if ratio is not None else "open",
        )
    return table


def build_table1_plan(
    adversary_depths: Optional[List[int]] = None,
    n_nodes: int = 255,
    n_requests: int = 5_000,
) -> ExperimentPlan:
    """Build the Table 1 plan (assembler-only: analytical checks, no sweeps)."""
    return ExperimentPlan.create(
        name="table1_properties",
        assembler="table1",
        params={
            "adversary_depths": tuple(adversary_depths or (4, 6, 8)),
            "n_nodes": n_nodes,
            "n_requests": n_requests,
        },
    )


@register_assembler("table1")
def _assemble_table1(plan: ExperimentPlan, stages) -> ResultTable:
    params = plan.param_dict()
    return run_table1(
        adversary_depths=[int(d) for d in params["adversary_depths"]],
        n_nodes=int(params["n_nodes"]),
        n_requests=int(params["n_requests"]),
    )
