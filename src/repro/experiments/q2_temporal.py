"""Q2 - which algorithm performs best with increasing temporal locality?

Reproduces Figure 3: fix the tree size, sweep the repeat probability
``p in {0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9}`` and plot, for every algorithm,
the average access cost and average adjustment cost per request.  The paper's
findings: all self-adjusting algorithms benefit from temporal locality;
Rotor-Push and Random-Push are the best and overtake Static-Opt a bit after
``p = 0.75``; Max-Push pays a high adjustment cost throughout.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.algorithms.registry import PAPER_ALGORITHMS
from repro.analysis.entropy import empirical_entropy
from repro.experiments.config import get_scale
from repro.plans import SweepPlan
from repro.plans.execute import run as run_plan
from repro.sim.results import ResultTable
from repro.workloads.spec import WorkloadSpec
from repro.workloads.temporal import TemporalWorkload

__all__ = ["build_q2_plan", "run_q2", "series_for_plot", "sequence_entropies"]


def build_q2_plan(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> SweepPlan:
    """Build the Figure 3 plan: a ``p`` sweep of a temporal workload template."""
    config = get_scale(scale)
    return SweepPlan(
        name="fig3_temporal_locality",
        workload=WorkloadSpec.create("temporal", n_elements=config.n_nodes),
        algorithms=tuple(PAPER_ALGORITHMS),
        points=tuple({"p": float(p)} for p in config.temporal_probabilities),
        bind={"p": "repeat_probability"},
        n_nodes=config.n_nodes,
        config=config.run_config(
            n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
        ),
    )


def run_q2(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> ResultTable:
    """Run the Figure 3 sweep and return its data table."""
    return run_plan(build_q2_plan(scale, n_jobs, chunk_size, backend))


def series_for_plot(table: ResultTable, metric: str = "mean_total_cost") -> Dict[str, List[float]]:
    """Return per-algorithm series over the ``p`` grid for plotting."""
    series: Dict[str, List[float]] = {}
    probabilities = sorted({float(row["p"]) for row in table.rows})
    for algorithm in sorted({str(row["algorithm"]) for row in table.rows}):
        values: List[float] = []
        for probability in probabilities:
            match = [
                row
                for row in table.rows
                if row["algorithm"] == algorithm and float(row["p"]) == probability
            ]
            values.append(float(match[0][metric]) if match else 0.0)
        series[algorithm] = values
    return series


def sequence_entropies(scale: str = "tiny", n_samples: int = 1) -> Dict[float, float]:
    """Return the measured empirical entropy for every ``p`` of the grid.

    The paper reports these entropies (15.95 down to 15.16 at 65,535 nodes) to
    substantiate that increasing ``p`` indeed increases temporal locality; the
    same monotone decrease holds at every scale.
    """
    config = get_scale(scale)
    entropies: Dict[float, float] = {}
    for probability in config.temporal_probabilities:
        values = []
        for sample in range(max(1, n_samples)):
            workload = TemporalWorkload(
                config.n_nodes, probability, seed=config.base_seed + sample
            )
            values.append(empirical_entropy(workload.generate(config.n_requests)))
        entropies[probability] = sum(values) / len(values)
    return entropies
