"""Markdown report generation (EXPERIMENTS.md).

Running the full experiment suite produces one table per paper figure; this
module turns those tables into the Markdown report that records, side by side,
what the paper reports and what this reproduction measures.  The generated
document is written to ``EXPERIMENTS.md`` by the command-line interface and by
``examples/regenerate_experiments.py``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments import q1_network_size, q2_temporal, q3_spatial, q4_combined, q5_corpus
from repro.experiments.config import get_scale
from repro.experiments.plotting import heatmap, histogram_chart
from repro.experiments.table1_properties import build_table1_plan
from repro.plans.execute import run as run_plan
from repro.sim.results import ResultTable

__all__ = [
    "build_report_plans",
    "run_all_experiments",
    "render_report",
    "generate_report",
]


def build_report_plans(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, object]:
    """Build the full evaluation as plans, keyed by figure/table identifier.

    One declarative plan per report section — the exact objects
    :func:`run_all_experiments` executes, exposed so callers can dump, diff
    or reshape the whole evaluation as data.
    """
    return {
        "fig2a": q1_network_size.build_q1_temporal_plan(
            scale, n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
        ),
        "fig2b": q1_network_size.build_q1_spatial_plan(
            scale, n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
        ),
        "fig3": q2_temporal.build_q2_plan(
            scale, n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
        ),
        "fig4": q3_spatial.build_q3_plan(
            scale, n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
        ),
        "fig5a": q4_combined.build_q4_wireframe_plan(
            scale, n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
        ),
        "fig5b": q4_combined.build_q4_histogram_plan(
            scale, n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
        ),
        "fig6": q5_corpus.build_q5_complexity_plan(scale),
        "fig7": q5_corpus.build_q5_costs_plan(scale, n_jobs=n_jobs, backend=backend),
        "table1": build_table1_plan(),
    }


def run_all_experiments(
    scale: str = "tiny",
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, object]:
    """Run every experiment of the evaluation at the given scale.

    Returns a dictionary keyed by figure/table identifier; values are
    :class:`repro.sim.results.ResultTable` objects except for the Figure 5b
    histogram, which is a ``(histogram, summary)`` tuple.  Each entry is a
    declarative plan (:func:`build_report_plans`) executed through
    :func:`repro.run`; ``n_jobs``/``chunk_size``/``backend`` land in every
    plan's :class:`repro.plans.RunConfig` (throughput/memory knobs only —
    results are identical for every value).
    """
    plans = build_report_plans(
        scale, n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
    )
    return {key: run_plan(plan) for key, plan in plans.items()}


def _table_markdown(table: ResultTable, float_digits: int = 3) -> str:
    header = "| " + " | ".join(table.columns) + " |"
    separator = "| " + " | ".join("---" for _ in table.columns) + " |"
    lines = [header, separator]
    for row in table.rows:
        cells = []
        for column in table.columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.{float_digits}f}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


_PAPER_EXPECTATIONS = {
    "fig2a": "Benefit of self-adjustment (cost difference vs Static-Oblivious, p = 0.9) "
    "grows with the tree size; self-adjusting algorithms end up cheaper on larger trees.",
    "fig2b": "Same trend under Zipf a = 2.2 spatial locality.",
    "fig3": "Rotor-Push and Random-Push are the cheapest self-adjusting algorithms; "
    "they beat Static-Opt beyond roughly p = 0.75; Max-Push's adjustment cost stays high.",
    "fig4": "All self-adjusting algorithms exploit spatial locality; Static-Opt remains "
    "the best overall; adjustment pays off vs Static-Oblivious from about a = 1.6.",
    "fig5a": "Combined temporal+spatial locality gives the largest cost reductions of "
    "Rotor-Push over Static-Oblivious (most negative differences at high p and a).",
    "fig5b": "Per-request access-cost difference between Rotor-Push and Random-Push is "
    "concentrated near zero (paper: mean -0.0003, |difference| <= 4).",
    "fig6": "Corpus datasets show moderate temporal complexity (0.3-0.5) and high "
    "non-temporal complexity (0.8-1.0).",
    "fig7": "On corpus data Rotor-Push and Random-Push are the best self-adjusting "
    "algorithms with access cost close to Static-Opt; adjustment cost remains visible.",
    "table1": "Rotor-Push: deterministic, 12-competitive, no working-set property "
    "(access cost linear in working-set size on the Lemma 8 input); Random-Push: "
    "randomised, 16-competitive, working-set property holds.",
}


def render_report(results: Dict[str, object], scale: str = "tiny") -> str:
    """Render the experiment results as a Markdown document."""
    config = get_scale(scale)
    lines = [
        "# Experiment results",
        "",
        "Reproduction of the evaluation of *Deterministic Self-Adjusting Tree Networks "
        "Using Rotor Walks* (ICDCS 2022).",
        "",
        f"Scale: `{config.name}` (tree of {config.n_nodes} nodes, {config.n_requests} "
        f"requests per trial, {config.n_trials} trials; the paper uses 65,535 nodes, "
        "10^6 requests, 10 trials).  See DESIGN.md for the scale table and the "
        "synthetic-corpus substitution.",
        "",
    ]
    order = ["table1", "fig2a", "fig2b", "fig3", "fig4", "fig5a", "fig5b", "fig6", "fig7"]
    titles = {
        "table1": "Table 1 - algorithm properties",
        "fig2a": "Figure 2a - Q1 size sweep, temporal locality p = 0.9",
        "fig2b": "Figure 2b - Q1 size sweep, Zipf a = 2.2",
        "fig3": "Figure 3 - Q2 temporal locality sweep",
        "fig4": "Figure 4 - Q3 spatial locality sweep",
        "fig5a": "Figure 5a - Q4 combined locality (Rotor-Push minus Static-Oblivious)",
        "fig5b": "Figure 5b - Q4 Rotor-Push vs Random-Push per-request difference",
        "fig6": "Figure 6 - Q5 complexity map of the corpus datasets",
        "fig7": "Figure 7 - Q5 per-book algorithm costs",
    }
    for key in order:
        if key not in results:
            continue
        lines.append(f"## {titles[key]}")
        lines.append("")
        lines.append(f"**Paper:** {_PAPER_EXPECTATIONS[key]}")
        lines.append("")
        value = results[key]
        if key == "fig5b":
            histogram, summary = value
            lines.append(
                f"**Measured:** mean difference {summary['mean_difference']:+.5f}, "
                f"maximum |difference| {summary['max_abs_difference']:.0f} over "
                f"{int(summary['n_samples'])} request pairs."
            )
            lines.append("")
            lines.append("```")
            lines.append(histogram_chart("access cost difference (Rotor - Random)", histogram))
            lines.append("```")
        elif key == "fig5a":
            table = value
            lines.append("**Measured:**")
            lines.append("")
            lines.append(_table_markdown(table))
            probabilities, exponents, grid = q4_combined.wireframe_grid(table)
            lines.append("")
            lines.append("```")
            lines.append(
                heatmap(
                    "difference (rows: p, columns: a)",
                    probabilities,
                    exponents,
                    grid,
                )
            )
            lines.append("```")
        else:
            lines.append("**Measured:**")
            lines.append("")
            lines.append(_table_markdown(value))
        lines.append("")
    return "\n".join(lines)


def generate_report(
    scale: str = "tiny",
    path: Optional[str] = None,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> str:
    """Run all experiments and render (optionally write) the Markdown report."""
    results = run_all_experiments(
        scale, n_jobs=n_jobs, chunk_size=chunk_size, backend=backend
    )
    report = render_report(results, scale)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(report)
    return report
