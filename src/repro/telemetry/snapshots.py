"""Periodic JSONL metrics snapshots, written alongside the serve ingest log.

A :class:`MetricsSnapshotWriter` wakes on a fixed interval and appends one
JSON object per line — ``{"ts": <unix-seconds>, "metrics": <snapshot>}`` —
giving a time-resolved metrics history with zero external infrastructure.
The file lives in the serve daemon's ``--log-dir`` as ``metrics.jsonl``;
the replay reader only globs ``segment-*.jsonl``, so the snapshot stream
can never leak into replay identity.

Writes are line-buffered appends from a single daemon thread; a final
snapshot is flushed on :meth:`stop` so short-lived runs still record their
end state.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Optional

from repro.telemetry.registry import MetricsRegistry, default_registry

__all__ = ["MetricsSnapshotWriter"]


class MetricsSnapshotWriter:
    """Appends registry snapshots to a JSONL file on a fixed interval."""

    def __init__(
        self,
        path: str,
        interval: float = 10.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"snapshot interval must be > 0, got {interval}")
        self.path = os.fspath(path)
        self.interval = float(interval)
        self.registry = registry if registry is not None else default_registry()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self.snapshots_written = 0

    def write_snapshot(self) -> None:
        """Append one snapshot line now (also called on every tick)."""
        record = {"ts": time.time(), "metrics": self.registry.snapshot()}
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
            self.snapshots_written += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.write_snapshot()

    def start(self) -> "MetricsSnapshotWriter":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-metrics-snapshots", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the ticker and flush one final snapshot."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.write_snapshot()
