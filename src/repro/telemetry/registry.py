"""The metrics core: counters, gauges, fixed-bucket histograms, one registry.

Zero external dependencies by design (Prometheus client libraries are heavy
and the container may not have them): a :class:`MetricsRegistry` holds named
metric families, each family holds one value row per label combination, and
two export forms cover every consumer —

* :meth:`MetricsRegistry.snapshot` — a plain JSON-friendly dictionary, the
  canonical wire form (the ``metrics`` protocol frame, the JSONL snapshot
  writer, ``repro metrics --json``);
* :func:`render_prometheus` — Prometheus text exposition rendered *from a
  snapshot*, so the HTTP endpoint and the CLI renderer of a scraped frame
  produce identical text.

Thread-safety contract: every mutation takes the family's lock (increments
are a dict update under a ``threading.Lock`` — cheap enough that the
measured overhead of full instrumentation stays under the 2% budget of
``bench_telemetry``), and :meth:`snapshot` reads each family under the same
lock, so readers on other threads (the metrics HTTP server, the asyncio
serve daemon answering a ``metrics`` frame) always see consistent rows.
Nothing ever blocks across an await point.

There is one process-wide default registry (:func:`default_registry`) that
all instrumentation writes to unless a registry is injected explicitly;
tests swap it with :func:`use_registry` and benchmarks measure the
no-telemetry floor by installing a :class:`NullRegistry`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NullRegistry",
    "default_registry",
    "render_prometheus",
    "set_default_registry",
    "use_registry",
]


class MetricError(ExperimentError):
    """Raised for metric misuse: bad names, label mismatches, type clashes."""


#: Default histogram bucket upper bounds, in seconds — tuned for the
#: latencies this codebase actually sees (sub-millisecond batch serves up to
#: multi-second distributed trials).  Cumulative ``+Inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not name:
        raise MetricError(f"metric name must be a non-empty string, got {name!r}")
    head = name[0]
    if not (head.isalpha() or head == "_"):
        raise MetricError(f"metric name must start with a letter or '_': {name!r}")
    for char in name:
        if not (char.isalnum() or char in "_:"):
            raise MetricError(
                f"metric name {name!r} contains {char!r}; allowed: [a-zA-Z0-9_:]"
            )
    return name


class _Metric:
    """Shared base: one named family with one value row per label tuple."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = str(help)
        self.labels = tuple(labels)
        self._lock = threading.Lock()
        self._values: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labels):
            raise MetricError(
                f"metric {self.name!r} takes labels {list(self.labels)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labels)

    def _rows(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._values.items())

    def _labels_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labels, key))


class Counter(_Metric):
    """A monotonically increasing count (optionally per label combination)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))"
            )
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    def total(self) -> float:
        """Sum over every label combination (the unlabelled family total)."""
        with self._lock:
            return sum(self._values.values())

    def snapshot(self) -> Dict[str, object]:
        return {
            "help": self.help,
            "labels": list(self.labels),
            "values": [
                {"labels": self._labels_dict(key), "value": value}
                for key, value in self._rows()
            ],
        }


class Gauge(_Metric):
    """A value that can go up and down (queue depths, in-flight work)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    snapshot = Counter.snapshot


class Histogram(_Metric):
    """A fixed-bucket histogram with Prometheus ``le`` (inclusive) semantics.

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches everything above the last bound.  Internally each row stores
    *per-bucket* counts (not cumulative) plus the running sum and count;
    the snapshot keeps that layout and :func:`render_prometheus` produces
    the cumulative ``_bucket``/``_sum``/``_count`` series Prometheus expects.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise MetricError(f"histogram {name!r} needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise MetricError(
                f"histogram {name!r} buckets must be strictly increasing, "
                f"got {list(buckets)}"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        # le is inclusive: bisect_left finds the first bound >= value
        index = bisect_left(self.buckets, value)
        with self._lock:
            row = self._values.get(key)
            if row is None:
                row = self._values[key] = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
            row["counts"][index] += 1
            row["sum"] += value
            row["count"] += 1

    def count(self, **labels: object) -> int:
        key = self._key(labels)
        with self._lock:
            row = self._values.get(key)
            return 0 if row is None else row["count"]

    def sum(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            row = self._values.get(key)
            return 0.0 if row is None else row["sum"]

    def bucket_counts(self, **labels: object) -> List[int]:
        """Per-bucket (non-cumulative) counts, the ``+Inf`` slot last."""
        key = self._key(labels)
        with self._lock:
            row = self._values.get(key)
            if row is None:
                return [0] * (len(self.buckets) + 1)
            return list(row["counts"])

    def snapshot(self) -> Dict[str, object]:
        return {
            "help": self.help,
            "labels": list(self.labels),
            "buckets": list(self.buckets),
            "values": [
                {
                    "labels": self._labels_dict(key),
                    "counts": list(row["counts"]),
                    "sum": row["sum"],
                    "count": row["count"],
                }
                for key, row in self._rows()
            ],
        }


class MetricsRegistry:
    """A named collection of metric families, created on first use.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice for
    the same name returns the same family object (so instrumentation sites
    can resolve their instruments eagerly or lazily, whichever reads
    better), while re-asking with a different type, label set or bucket
    layout is a loud :class:`MetricError` — silent divergence between two
    call sites would corrupt the exported series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, factory) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise MetricError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                return existing
            metric = self._metrics[name] = factory()
            return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        metric = self._get_or_create(
            Counter, name, lambda: Counter(name, help, labels)
        )
        if metric.labels != tuple(labels):
            raise MetricError(
                f"metric {name!r} is registered with labels "
                f"{list(metric.labels)}, not {list(labels)}"
            )
        return metric  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        metric = self._get_or_create(Gauge, name, lambda: Gauge(name, help, labels))
        if metric.labels != tuple(labels):
            raise MetricError(
                f"metric {name!r} is registered with labels "
                f"{list(metric.labels)}, not {list(labels)}"
            )
        return metric  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: Sequence[str] = (),
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram, name, lambda: Histogram(name, help, buckets, labels)
        )
        if metric.labels != tuple(labels):
            raise MetricError(
                f"metric {name!r} is registered with labels "
                f"{list(metric.labels)}, not {list(labels)}"
            )
        if metric.buckets != tuple(float(bound) for bound in buckets):
            raise MetricError(
                f"metric {name!r} is registered with buckets "
                f"{list(metric.buckets)}, not {list(buckets)}"
            )
        return metric  # type: ignore[return-value]

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-friendly snapshot of every family (the canonical wire form)."""
        with self._lock:
            families = sorted(self._metrics.items())
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        section = {"counter": "counters", "gauge": "gauges", "histogram": "histograms"}
        for name, metric in families:
            out[section[metric.kind]][name] = metric.snapshot()
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the current state."""
        return render_prometheus(self.snapshot())


class _NullInstrument:
    """Accepts every instrument call and does nothing (benchmark floor)."""

    def inc(self, *_args, **_kwargs) -> None:
        pass

    def dec(self, *_args, **_kwargs) -> None:
        pass

    def set(self, *_args, **_kwargs) -> None:
        pass

    def observe(self, *_args, **_kwargs) -> None:
        pass

    def value(self, **_labels) -> float:
        return 0

    def total(self) -> float:
        return 0

    def count(self, **_labels) -> int:
        return 0

    def sum(self, **_labels) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """A registry that records nothing — the zero-telemetry floor.

    Installed (via :func:`use_registry`) by ``bench_telemetry`` to measure
    instrumentation overhead, and available to callers who want telemetry
    off entirely.  Every factory returns a shared do-nothing instrument and
    the snapshot is always empty.
    """

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: Sequence[str] = (),
    ):
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


# ------------------------------------------------------- default registry

_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry all instrumentation writes to by default."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the previous one."""
    global _default_registry
    if not isinstance(registry, MetricsRegistry):
        raise MetricError(f"not a MetricsRegistry: {registry!r}")
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Temporarily install ``registry`` as the process default (tests)."""
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)


# --------------------------------------------------- Prometheus rendering


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_labels(labels: Dict[str, str], extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = [(name, str(value)) for name, value in sorted(labels.items())]
    pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


def render_prometheus(snapshot: Dict[str, Dict[str, object]]) -> str:
    """Render a registry snapshot as Prometheus text exposition (format 0.0.4).

    Works from the *snapshot* dictionary, not a live registry, so the HTTP
    endpoint (local registry) and ``repro metrics`` (a scraped ``metrics``
    frame) render byte-identical text for the same state.
    """
    lines: List[str] = []
    for name, family in sorted(snapshot.get("counters", {}).items()):
        _render_simple(lines, name, family, "counter")
    for name, family in sorted(snapshot.get("gauges", {}).items()):
        _render_simple(lines, name, family, "gauge")
    for name, family in sorted(snapshot.get("histograms", {}).items()):
        _render_histogram(lines, name, family)
    return "\n".join(lines) + ("\n" if lines else "")


def _render_simple(
    lines: List[str], name: str, family: Dict[str, object], kind: str
) -> None:
    if family.get("help"):
        lines.append(f"# HELP {name} {_escape_help(family['help'])}")
    lines.append(f"# TYPE {name} {kind}")
    values: Iterable[Dict[str, object]] = family.get("values", ())
    for row in values:
        labels = _format_labels(row.get("labels", {}))
        lines.append(f"{name}{labels} {_format_value(row['value'])}")


def _render_histogram(lines: List[str], name: str, family: Dict[str, object]) -> None:
    if family.get("help"):
        lines.append(f"# HELP {name} {_escape_help(family['help'])}")
    lines.append(f"# TYPE {name} histogram")
    buckets: List[float] = list(family.get("buckets", ()))
    for row in family.get("values", ()):
        labels = dict(row.get("labels", {}))
        cumulative = 0
        counts = list(row.get("counts", ()))
        for bound, count in zip(buckets, counts):
            cumulative += count
            le = _format_labels(labels, extra=(("le", _format_value(bound)),))
            lines.append(f"{name}_bucket{le} {cumulative}")
        cumulative += counts[len(buckets)] if len(counts) > len(buckets) else 0
        inf = _format_labels(labels, extra=(("le", "+Inf"),))
        lines.append(f"{name}_bucket{inf} {cumulative}")
        lines.append(
            f"{name}_sum{_format_labels(labels)} {_format_value(row.get('sum', 0.0))}"
        )
        lines.append(
            f"{name}_count{_format_labels(labels)} {_format_value(row.get('count', 0))}"
        )
