"""Lightweight tracing: deterministic span IDs, ring-buffered span records.

Spans let a single unit of work be followed across process boundaries
without clock coordination: the serve daemon names a request span from
``(source, sequence-index)`` and the dist coordinator/worker name a payload
span from its content key, so the *same* span ID appears on both sides of
the wire and a trace dump from either end can be joined offline.

Determinism is the point — span IDs are ``sha256`` prefixes of a stable
key, never random, so tracing can stay always-on without perturbing any
pinned byte-identity (span records live only in this in-memory ring buffer
and the ``/trace.json`` dump; they never enter result payloads, cache
bytes, or protocol result frames).

The ring buffer (:class:`Tracer`) is a bounded ``deque`` guarded by a lock:
constant memory, drop-oldest, safe to write from pool threads and read from
the metrics HTTP server.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = [
    "DEFAULT_TRACE_CAPACITY",
    "Span",
    "Tracer",
    "default_tracer",
    "set_default_tracer",
    "span_id",
    "use_tracer",
]

#: How many finished spans the default ring buffer retains.
DEFAULT_TRACE_CAPACITY = 2048


def span_id(*parts: object) -> str:
    """A deterministic 16-hex-digit span ID from any stable key parts.

    The same parts always hash to the same ID, across processes and runs —
    ``span_id("serve", source, index)`` on the daemon equals the client's,
    and ``span_id("payload", payload_key)`` matches between coordinator and
    worker.
    """
    key = "|".join(str(part) for part in parts)
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


class Span:
    """One finished (or in-flight) span record."""

    __slots__ = ("name", "id", "parent", "start", "duration", "attrs")

    def __init__(
        self,
        name: str,
        id: str,
        parent: Optional[str] = None,
        start: float = 0.0,
        duration: Optional[float] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.id = id
        self.parent = parent
        self.start = start
        self.duration = duration
        self.attrs = attrs or {}

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "id": self.id,
            "parent": self.parent,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """A bounded ring buffer of finished spans (drop-oldest)."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=capacity)
        self._dropped = 0

    def record(
        self,
        name: str,
        id: str,
        parent: Optional[str] = None,
        start: float = 0.0,
        duration: Optional[float] = None,
        **attrs: object,
    ) -> Span:
        """Record an already-measured span (the common daemon-side form)."""
        span = Span(name, id, parent, start, duration, attrs)
        with self._lock:
            if len(self._spans) == self.capacity:
                self._dropped += 1
            self._spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, id: str, parent: Optional[str] = None, **attrs: object):
        """Measure a code block and record it on exit (even on error)."""
        start = time.time()
        tick = time.perf_counter()
        span = Span(name, id, parent, start, None, attrs)
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - tick
            with self._lock:
                if len(self._spans) == self.capacity:
                    self._dropped += 1
                self._spans.append(span)

    def spans(self) -> List[Span]:
        """Oldest-first copy of the retained spans."""
        with self._lock:
            return list(self._spans)

    def dump(self) -> Dict[str, object]:
        """JSON-friendly dump (the ``/trace.json`` body)."""
        with self._lock:
            spans = [span.as_dict() for span in self._spans]
            dropped = self._dropped
        return {"capacity": self.capacity, "dropped": dropped, "spans": spans}

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_default_tracer = Tracer()
_default_lock = threading.Lock()


def default_tracer() -> Tracer:
    """The process-wide tracer instrumentation writes to by default."""
    return _default_tracer


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process default; returns the previous one."""
    global _default_tracer
    if not isinstance(tracer, Tracer):
        raise TypeError(f"not a Tracer: {tracer!r}")
    with _default_lock:
        previous = _default_tracer
        _default_tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Temporarily install ``tracer`` as the process default (tests)."""
    previous = set_default_tracer(tracer)
    try:
        yield tracer
    finally:
        set_default_tracer(previous)
