"""Unified observability for every repro runtime (batch, dist, serve).

The package has four small parts:

* :mod:`repro.telemetry.registry` — counters, gauges, fixed-bucket
  histograms in a :class:`MetricsRegistry`; a process-wide default registry
  plus :func:`use_registry` injection for tests and a :class:`NullRegistry`
  benchmark floor.
* :mod:`repro.telemetry.trace` — deterministic span IDs and a ring-buffered
  :class:`Tracer`.
* :mod:`repro.telemetry.export` — the Prometheus/JSON HTTP endpoint, the
  ``metrics`` protocol frame, and the ``repro metrics`` scraper.
* :mod:`repro.telemetry.snapshots` — the periodic JSONL snapshot writer.

Instrumentation is always-on and observational only: it never touches
seeds, ordering, payloads, or any pinned byte-identity.
"""

from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    render_prometheus,
    set_default_registry,
    use_registry,
)
from repro.telemetry.snapshots import MetricsSnapshotWriter
from repro.telemetry.trace import (
    Span,
    Tracer,
    default_tracer,
    set_default_tracer,
    span_id,
    use_tracer,
)

# The export surface pulls in repro.dist.framing, whose package init reaches
# back through the runner into this package — so its names load lazily
# (PEP 562) to keep `import repro.telemetry` cycle-free.
_EXPORT_NAMES = ("MetricsHTTPServer", "metrics_frame", "scrape", "start_metrics_server")


def __getattr__(name: str):
    if name in _EXPORT_NAMES:
        from repro.telemetry import export

        return getattr(export, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "MetricsSnapshotWriter",
    "NullRegistry",
    "Span",
    "Tracer",
    "default_registry",
    "default_tracer",
    "metrics_frame",
    "render_prometheus",
    "scrape",
    "set_default_registry",
    "set_default_tracer",
    "span_id",
    "start_metrics_server",
    "use_registry",
    "use_tracer",
]
