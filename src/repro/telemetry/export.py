"""Export surfaces: the metrics HTTP endpoint, protocol frame, and scraper.

Three ways to get metrics out of a process, all rendering the same
:meth:`MetricsRegistry.snapshot`:

* :class:`MetricsHTTPServer` — a stdlib ``ThreadingHTTPServer`` mounted on
  either daemon via ``--metrics tcp://HOST:PORT``, serving Prometheus text
  at ``/metrics``, the raw snapshot at ``/metrics.json``, and the span ring
  buffer at ``/trace.json``.  It runs entirely on its own threads so the
  serve daemon's asyncio loop and the worker's session threads are never
  blocked by a scrape.
* :func:`metrics_frame` — the typed ``metrics`` reply frame both daemon
  protocols answer with over the shared length-prefixed JSON framing.
* :func:`scrape` — the client side used by ``repro metrics <addr>``:
  ``http://`` addresses GET the endpoint, ``tcp://`` addresses speak the
  daemons' hello→welcome handshake and request a ``metrics`` frame.
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.dist.framing import (
    ProtocolError,
    parse_listen_address,
    recv_frame,
    send_frame,
)
from repro.exceptions import ExperimentError
from repro.telemetry.registry import (
    MetricsRegistry,
    default_registry,
    render_prometheus,
)
from repro.telemetry.trace import Tracer, default_tracer

__all__ = [
    "MetricsHTTPServer",
    "metrics_frame",
    "scrape",
    "start_metrics_server",
]


def metrics_frame(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    *,
    include_trace: bool = False,
) -> Dict[str, object]:
    """Build the typed ``metrics`` reply frame for the daemon protocols."""
    registry = registry if registry is not None else default_registry()
    frame: Dict[str, object] = {"type": "metrics", "metrics": registry.snapshot()}
    if include_trace:
        tracer = tracer if tracer is not None else default_tracer()
        frame["trace"] = tracer.dump()
    return frame


class _MetricsHandler(BaseHTTPRequestHandler):
    # the server instance carries .registry / .tracer (set by MetricsHTTPServer)
    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = render_prometheus(self.server.registry.snapshot()).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = json.dumps(self.server.registry.snapshot(), sort_keys=True).encode(
                "utf-8"
            )
            content_type = "application/json"
        elif path == "/trace.json":
            body = json.dumps(self.server.tracer.dump()).encode("utf-8")
            content_type = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics, /metrics.json, /trace.json)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        # scrapes are high-frequency background traffic; stay quiet
        pass


class MetricsHTTPServer:
    """The daemon-side metrics endpoint (Prometheus text + JSON + traces).

    Binds eagerly in ``__init__`` (so a bad ``--metrics`` address fails at
    startup, not at first scrape) and serves on a daemon thread after
    :meth:`start`.  ``port`` reports the bound port, which makes
    ``tcp://127.0.0.1:0`` usable in tests.
    """

    def __init__(
        self,
        listen: str,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        host, port = parse_listen_address(listen)
        self.registry = registry if registry is not None else default_registry()
        self.tracer = tracer if tracer is not None else default_tracer()
        try:
            self._server = ThreadingHTTPServer((host, port), _MetricsHandler)
        except OSError as error:
            raise ExperimentError(
                f"cannot bind metrics endpoint {listen!r}: {error}"
            ) from error
        self._server.daemon_threads = True
        self._server.registry = self.registry
        self._server.tracer = self.tracer
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsHTTPServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()


def start_metrics_server(
    listen: Optional[str],
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Optional[MetricsHTTPServer]:
    """Start a metrics endpoint if ``listen`` is set (daemon convenience)."""
    if not listen:
        return None
    return MetricsHTTPServer(listen, registry, tracer).start()


# ----------------------------------------------------------------- scraping


def scrape(
    address: str,
    *,
    include_trace: bool = False,
    timeout: float = 10.0,
) -> Dict[str, object]:
    """Scrape metrics from either export surface.

    ``http://HOST:PORT[/path]`` GETs the metrics HTTP endpoint
    (``/metrics.json``, plus ``/trace.json`` when ``include_trace``);
    ``tcp://HOST:PORT`` connects to a daemon's main protocol port, performs
    the shared hello→welcome handshake, and requests a ``metrics`` frame.
    Returns ``{"metrics": <snapshot>}`` plus ``"trace"`` when requested.
    """
    try:
        if address.startswith("http://") or address.startswith("https://"):
            return _scrape_http(address, include_trace=include_trace, timeout=timeout)
        if address.startswith("tcp://"):
            return _scrape_frame(address, include_trace=include_trace, timeout=timeout)
    except OSError as error:  # refused, timed out, unreachable, DNS...
        raise ExperimentError(f"cannot scrape {address!r}: {error}") from error
    raise ExperimentError(
        f"metrics address must start with http:// or tcp://, got {address!r}"
    )


def _scrape_http(
    address: str, *, include_trace: bool, timeout: float
) -> Dict[str, object]:
    base = address.rstrip("/")
    for suffix in ("/metrics.json", "/metrics", "/trace.json"):
        if base.endswith(suffix):
            base = base[: -len(suffix)]
            break
    with urllib.request.urlopen(base + "/metrics.json", timeout=timeout) as response:
        snapshot = json.loads(response.read().decode("utf-8"))
    result: Dict[str, object] = {"metrics": snapshot}
    if include_trace:
        with urllib.request.urlopen(base + "/trace.json", timeout=timeout) as response:
            result["trace"] = json.loads(response.read().decode("utf-8"))
    return result


def _split_tcp(address: str) -> Tuple[str, int]:
    # reuse the daemon listen-address grammar for scrape targets
    return parse_listen_address(address.split("?", 1)[0])


def _scrape_frame(
    address: str, *, include_trace: bool, timeout: float
) -> Dict[str, object]:
    # lazy: protocol.py pulls the whole sim/spec import chain, which the
    # HTTP-only path never needs
    from repro.dist.protocol import PROTOCOL_VERSION

    host, port = _split_tcp(address)
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        send_frame(
            sock,
            {
                "type": "hello",
                "protocol": PROTOCOL_VERSION,
                "client": "repro-metrics",
            },
        )
        welcome = recv_frame(sock)
        if welcome.get("type") != "welcome":
            raise ProtocolError(
                f"daemon at {address} answered {welcome.get('type')!r}, not welcome"
            )
        request: Dict[str, object] = {"type": "metrics"}
        if include_trace:
            request["trace"] = True
        send_frame(sock, request)
        reply = recv_frame(sock)
    if reply.get("type") == "error":
        raise ExperimentError(
            f"daemon at {address} cannot serve metrics: {reply.get('error')}"
        )
    if reply.get("type") != "metrics":
        raise ProtocolError(
            f"daemon at {address} answered {reply.get('type')!r}, not metrics"
        )
    result = {"metrics": reply.get("metrics", {})}
    if "trace" in reply:
        result["trace"] = reply["trace"]
    return result
