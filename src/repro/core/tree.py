"""Complete binary tree substrate.

The self-adjusting tree network problem is defined over a *fixed* complete
binary tree: the tree topology never changes, only the assignment of elements
to nodes does.  This module provides :class:`CompleteBinaryTree`, a lightweight
structure-only model of that topology.  Nodes are identified by their heap
index: the root is ``0`` and node ``i`` has children ``2 i + 1`` and
``2 i + 2``.  All structural queries (parent, children, level, paths, lowest
common ancestor, distances) are provided here so that algorithm code never has
to re-derive index arithmetic.

The element-to-node mapping lives in :class:`repro.core.state.TreeNetwork`;
this module is purely about geometry.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.exceptions import TreeStructureError
from repro.types import Level, NodeId, NodePath

__all__ = [
    "CompleteBinaryTree",
    "is_complete_size",
    "depth_for_size",
    "size_for_depth",
    "node_level",
    "node_levels_table",
    "node_distance",
    "root_path",
]


def node_level(node: NodeId) -> Level:
    """Return the level of ``node`` by pure bit arithmetic (no validation).

    Trusted fast-path primitive: callers guarantee ``node >= 0``.  The serve
    hot loops inline this expression directly; the function is the canonical,
    property-tested statement of the identity they rely on.

    >>> [node_level(k) for k in (0, 1, 2, 3, 6, 7)]
    [0, 1, 1, 2, 2, 3]
    """
    return (node + 1).bit_length() - 1


def node_levels_table(n_nodes: int) -> List[Level]:
    """Return ``[node_level(k) for k in range(n_nodes)]`` as a lookup table.

    The batch serve path replaces the per-request bit-length computation with
    one indexed lookup over a whole request chunk; this function is the
    canonical, backend-agnostic statement of that table
    (:func:`repro.core.backend.node_levels_view` caches the NumPy mirror).

    >>> node_levels_table(7)
    [0, 1, 1, 2, 2, 2, 2]
    """
    return [(node + 1).bit_length() - 1 for node in range(n_nodes)]


def node_distance(a: NodeId, b: NodeId) -> int:
    """Return the tree distance between two heap-indexed nodes (no validation).

    Trusted fast-path primitive: equivalent to
    :meth:`CompleteBinaryTree.distance` but without node checks, so it can be
    used in serve loops that have already validated their inputs.
    """
    level_a = (a + 1).bit_length() - 1
    level_b = (b + 1).bit_length() - 1
    distance = level_a - level_b if level_a >= level_b else level_b - level_a
    while level_a > level_b:
        a = (a - 1) >> 1
        level_a -= 1
    while level_b > level_a:
        b = (b - 1) >> 1
        level_b -= 1
    while a != b:
        a = (a - 1) >> 1
        b = (b - 1) >> 1
        distance += 2
    return distance


def root_path(node: NodeId) -> NodePath:
    """Return the path ``root -> ... -> node`` by pure bit arithmetic.

    Trusted fast-path primitive: no validation, callers guarantee
    ``node >= 0``.  The heap-index parent chain is independent of the tree
    size, so no tree instance is needed.
    """
    path = [node]
    while node:
        node = (node - 1) >> 1
        path.append(node)
    path.reverse()
    return path


def is_complete_size(n_nodes: int) -> bool:
    """Return ``True`` if ``n_nodes`` equals ``2**(L+1) - 1`` for some ``L >= 0``.

    A complete binary tree with all levels full has such a node count.

    >>> [is_complete_size(k) for k in (1, 3, 7, 15, 4)]
    [True, True, True, True, False]
    """
    if n_nodes < 1:
        return False
    return (n_nodes + 1) & n_nodes == 0


def depth_for_size(n_nodes: int) -> int:
    """Return the maximal level ``L`` of a complete tree with ``n_nodes`` nodes.

    Raises :class:`TreeStructureError` if ``n_nodes`` is not a complete size.

    >>> depth_for_size(15)
    3
    """
    if not is_complete_size(n_nodes):
        raise TreeStructureError(
            f"{n_nodes} nodes do not form a complete binary tree "
            "(expected 2**(L+1) - 1 for some L >= 0)"
        )
    return (n_nodes + 1).bit_length() - 2


def size_for_depth(depth: int) -> int:
    """Return the number of nodes of a complete binary tree of maximal level ``depth``.

    >>> size_for_depth(3)
    15
    """
    if depth < 0:
        raise TreeStructureError(f"depth must be non-negative, got {depth}")
    return (1 << (depth + 1)) - 1


class CompleteBinaryTree:
    """Geometry of a complete binary tree with all levels full.

    Parameters
    ----------
    n_nodes:
        Number of nodes; must equal ``2**(L+1) - 1`` for some ``L >= 0``.

    Notes
    -----
    The class is immutable: it exposes only structural queries.  Instances are
    cheap (they store only the node count and depth) so they can be shared
    freely between algorithm instances and analysis code.
    """

    __slots__ = ("_n_nodes", "_depth")

    def __init__(self, n_nodes: int) -> None:
        self._depth = depth_for_size(n_nodes)
        self._n_nodes = n_nodes

    # ------------------------------------------------------------------ basics

    @classmethod
    def from_depth(cls, depth: int) -> "CompleteBinaryTree":
        """Build a tree whose deepest level is ``depth`` (root has level 0)."""
        return cls(size_for_depth(depth))

    @property
    def n_nodes(self) -> int:
        """Total number of nodes in the tree."""
        return self._n_nodes

    @property
    def depth(self) -> int:
        """Maximal level ``L_T`` (the root is at level 0)."""
        return self._depth

    @property
    def root(self) -> NodeId:
        """The root node (always ``0``)."""
        return 0

    def __len__(self) -> int:
        return self._n_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CompleteBinaryTree(n_nodes={self._n_nodes}, depth={self._depth})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompleteBinaryTree):
            return NotImplemented
        return self._n_nodes == other._n_nodes

    def __hash__(self) -> int:
        return hash(("CompleteBinaryTree", self._n_nodes))

    # -------------------------------------------------------------- validation

    def check_node(self, node: NodeId) -> NodeId:
        """Validate that ``node`` is a node of this tree and return it."""
        if not 0 <= node < self._n_nodes:
            raise TreeStructureError(
                f"node {node} outside tree with {self._n_nodes} nodes"
            )
        return node

    # ------------------------------------------------------------- navigation

    def parent(self, node: NodeId) -> NodeId:
        """Return the parent of ``node``; the root has no parent."""
        self.check_node(node)
        if node == 0:
            raise TreeStructureError("the root node has no parent")
        return (node - 1) >> 1

    def left_child(self, node: NodeId) -> NodeId:
        """Return the left child of ``node``; leaves have no children."""
        child = 2 * self.check_node(node) + 1
        if child >= self._n_nodes:
            raise TreeStructureError(f"node {node} is a leaf and has no children")
        return child

    def right_child(self, node: NodeId) -> NodeId:
        """Return the right child of ``node``; leaves have no children."""
        child = 2 * self.check_node(node) + 2
        if child >= self._n_nodes:
            raise TreeStructureError(f"node {node} is a leaf and has no children")
        return child

    def children(self, node: NodeId) -> Tuple[NodeId, NodeId]:
        """Return both children of an internal node as ``(left, right)``."""
        return self.left_child(node), self.right_child(node)

    def child(self, node: NodeId, direction: int) -> NodeId:
        """Return the child in ``direction`` (0 = left, 1 = right)."""
        if direction not in (0, 1):
            raise TreeStructureError(f"direction must be 0 or 1, got {direction}")
        return self.right_child(node) if direction else self.left_child(node)

    def is_leaf(self, node: NodeId) -> bool:
        """Return ``True`` if ``node`` has no children."""
        return 2 * self.check_node(node) + 1 >= self._n_nodes

    def is_internal(self, node: NodeId) -> bool:
        """Return ``True`` if ``node`` has two children."""
        return not self.is_leaf(node)

    def sibling(self, node: NodeId) -> NodeId:
        """Return the other child of ``node``'s parent."""
        self.check_node(node)
        if node == 0:
            raise TreeStructureError("the root node has no sibling")
        return node + 1 if node % 2 == 1 else node - 1

    # ------------------------------------------------------------------ levels

    def level(self, node: NodeId) -> Level:
        """Return the level ``l(node)``; the root has level 0."""
        return (self.check_node(node) + 1).bit_length() - 1

    def level_size(self, level: Level) -> int:
        """Return how many nodes live at ``level`` (``2**level``)."""
        self._check_level(level)
        return 1 << level

    def first_node_at_level(self, level: Level) -> NodeId:
        """Return the leftmost node index of ``level``."""
        self._check_level(level)
        return (1 << level) - 1

    def nodes_at_level(self, level: Level) -> range:
        """Return the (contiguous) range of node indices at ``level``."""
        start = self.first_node_at_level(level)
        return range(start, start + (1 << level))

    def node_at(self, level: Level, offset: int) -> NodeId:
        """Return the ``offset``-th node (left-to-right) of ``level``."""
        size = self.level_size(level)
        if not 0 <= offset < size:
            raise TreeStructureError(
                f"offset {offset} outside level {level} of size {size}"
            )
        return self.first_node_at_level(level) + offset

    def offset_in_level(self, node: NodeId) -> int:
        """Return the left-to-right position of ``node`` within its level."""
        return self.check_node(node) - self.first_node_at_level(self.level(node))

    def leaves(self) -> range:
        """Return the range of leaf node indices (the deepest level)."""
        return self.nodes_at_level(self._depth)

    def _check_level(self, level: Level) -> None:
        if not 0 <= level <= self._depth:
            raise TreeStructureError(
                f"level {level} outside tree of depth {self._depth}"
            )

    # ------------------------------------------------------------------- paths

    def path_to_root(self, node: NodeId) -> NodePath:
        """Return the path ``node -> ... -> root`` (inclusive at both ends)."""
        self.check_node(node)
        path = [node]
        while node != 0:
            node = (node - 1) >> 1
            path.append(node)
        return path

    def path_from_root(self, node: NodeId) -> NodePath:
        """Return the path ``root -> ... -> node`` (inclusive at both ends)."""
        path = self.path_to_root(node)
        path.reverse()
        return path

    def ancestor_at_level(self, node: NodeId, level: Level) -> NodeId:
        """Return the ancestor of ``node`` living at ``level``.

        ``level`` must not exceed the level of ``node``; a node is its own
        ancestor at its own level.
        """
        node_level = self.level(node)
        if level > node_level:
            raise TreeStructureError(
                f"node {node} at level {node_level} has no ancestor at level {level}"
            )
        for _ in range(node_level - level):
            node = (node - 1) >> 1
        return node

    def is_ancestor(self, ancestor: NodeId, node: NodeId) -> bool:
        """Return ``True`` if ``ancestor`` lies on the root path of ``node``."""
        self.check_node(ancestor)
        self.check_node(node)
        anc_level = self.level(ancestor)
        if anc_level > self.level(node):
            return False
        return self.ancestor_at_level(node, anc_level) == ancestor

    def lowest_common_ancestor(self, a: NodeId, b: NodeId) -> NodeId:
        """Return the lowest common ancestor of nodes ``a`` and ``b``."""
        self.check_node(a)
        self.check_node(b)
        la, lb = self.level(a), self.level(b)
        while la > lb:
            a = (a - 1) >> 1
            la -= 1
        while lb > la:
            b = (b - 1) >> 1
            lb -= 1
        while a != b:
            a = (a - 1) >> 1
            b = (b - 1) >> 1
        return a

    def distance(self, a: NodeId, b: NodeId) -> int:
        """Return the number of tree edges on the unique path between ``a`` and ``b``."""
        lca = self.lowest_common_ancestor(a, b)
        return (self.level(a) - self.level(lca)) + (self.level(b) - self.level(lca))

    def path_between(self, a: NodeId, b: NodeId) -> NodePath:
        """Return the unique tree path from ``a`` to ``b`` (inclusive at both ends)."""
        lca = self.lowest_common_ancestor(a, b)
        up: NodePath = []
        node = a
        while node != lca:
            up.append(node)
            node = (node - 1) >> 1
        down: NodePath = []
        node = b
        while node != lca:
            down.append(node)
            node = (node - 1) >> 1
        down.reverse()
        return up + [lca] + down

    # ---------------------------------------------------------------- subtrees

    def subtree_nodes(self, node: NodeId) -> List[NodeId]:
        """Return all nodes of the subtree ``T[node]`` in BFS order."""
        self.check_node(node)
        result = [node]
        frontier = [node]
        while frontier:
            next_frontier: List[NodeId] = []
            for current in frontier:
                left = 2 * current + 1
                if left < self._n_nodes:
                    next_frontier.append(left)
                    next_frontier.append(left + 1)
            result.extend(next_frontier)
            frontier = next_frontier
        return result

    def subtree_size(self, node: NodeId) -> int:
        """Return how many nodes the subtree rooted at ``node`` contains."""
        remaining_depth = self._depth - self.level(self.check_node(node))
        return (1 << (remaining_depth + 1)) - 1

    def descendant_at(self, node: NodeId, directions: List[int]) -> NodeId:
        """Follow a list of left/right ``directions`` (0/1) starting at ``node``."""
        current = self.check_node(node)
        for direction in directions:
            current = self.child(current, direction)
        return current

    # --------------------------------------------------------------- iteration

    def bfs_order(self) -> Iterator[NodeId]:
        """Yield all nodes in breadth-first (level) order."""
        return iter(range(self._n_nodes))

    def dfs_preorder(self, start: NodeId = 0) -> Iterator[NodeId]:
        """Yield the nodes of subtree ``T[start]`` in depth-first preorder."""
        self.check_node(start)
        stack = [start]
        while stack:
            node = stack.pop()
            yield node
            right = 2 * node + 2
            left = 2 * node + 1
            if right < self._n_nodes:
                stack.append(right)
            if left < self._n_nodes:
                stack.append(left)

    def levels(self) -> Iterator[range]:
        """Yield the node ranges of every level, from the root downward."""
        for level in range(self._depth + 1):
            yield self.nodes_at_level(level)
