"""Core substrate: tree geometry, rotor machinery, push-down operation, costs.

This package contains everything below the algorithm layer:

* :mod:`repro.core.tree` - the fixed complete binary tree topology;
* :mod:`repro.core.rotor` - rotor pointers, global paths, flips and flip-ranks;
* :mod:`repro.core.state` - the mutable element placement plus cost ledger;
* :mod:`repro.core.pushdown` - the augmented push-down operation ``PD(u, v)``
  and path-relocation helpers;
* :mod:`repro.core.cost` - the access/adjustment cost model.
"""

from repro.core.cost import CostLedger, RequestCost
from repro.core.render import render_figure1_style, render_levels, render_tree
from repro.core.pushdown import (
    apply_pushdown_cycle,
    apply_pushdown_swaps,
    pushdown_cycle_nodes,
    pushdown_swap_cost,
    relocate_along_path,
    relocate_element,
)
from repro.core.rotor import RotorState
from repro.core.state import TreeNetwork, identity_placement, random_placement
from repro.core.tree import (
    CompleteBinaryTree,
    depth_for_size,
    is_complete_size,
    size_for_depth,
)

__all__ = [
    "CompleteBinaryTree",
    "CostLedger",
    "RequestCost",
    "RotorState",
    "TreeNetwork",
    "apply_pushdown_cycle",
    "apply_pushdown_swaps",
    "depth_for_size",
    "identity_placement",
    "is_complete_size",
    "pushdown_cycle_nodes",
    "pushdown_swap_cost",
    "random_placement",
    "relocate_along_path",
    "relocate_element",
    "render_figure1_style",
    "render_levels",
    "render_tree",
    "size_for_depth",
]
