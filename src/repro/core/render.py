"""Text rendering of tree-network configurations.

Debugging and teaching aid: renders a :class:`repro.core.state.TreeNetwork` as
an indented text tree or as per-level rows, optionally annotated with rotor
pointers and flip-ranks - the same information Figure 1 of the paper conveys
graphically.  Only intended for small trees (the output grows linearly with the
node count); experiments never call it on paper-scale instances.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.state import TreeNetwork
from repro.exceptions import TreeStructureError

__all__ = ["render_levels", "render_tree", "render_figure1_style"]

#: Rendering is refused above this size to avoid accidental megabyte dumps.
MAX_RENDER_NODES = 1 << 12


def _check_size(network: TreeNetwork) -> None:
    if network.tree.n_nodes > MAX_RENDER_NODES:
        raise TreeStructureError(
            f"refusing to render a tree with {network.tree.n_nodes} nodes "
            f"(limit {MAX_RENDER_NODES}); rendering is a debugging aid for small trees"
        )


def render_levels(network: TreeNetwork, show_flip_ranks: bool = False) -> str:
    """Render the element placement one line per level.

    With ``show_flip_ranks`` each element is annotated with its node's current
    flip-rank (requires a rotor state), mirroring the numbers below the nodes
    in Figure 1 of the paper.
    """
    _check_size(network)
    tree = network.tree
    rotor = network.rotor
    if show_flip_ranks and rotor is None:
        raise TreeStructureError("show_flip_ranks requires a network with rotor pointers")
    lines: List[str] = []
    for level, nodes in enumerate(tree.levels()):
        cells: List[str] = []
        for node in nodes:
            label = f"e{network.element_at(node)}"
            if show_flip_ranks:
                label += f"/{rotor.flip_rank(node)}"
            cells.append(label)
        lines.append(f"level {level}: " + "  ".join(cells))
    return "\n".join(lines)


def render_tree(network: TreeNetwork, node: Optional[int] = None, indent: str = "") -> str:
    """Render the subtree below ``node`` (default: the root) as an indented outline.

    Rotor pointers, when present, are shown as ``->L`` / ``->R`` on internal
    nodes; the element hosted at each node is shown as ``e<id>``.
    """
    _check_size(network)
    tree = network.tree
    rotor = network.rotor
    if node is None:
        node = tree.root
    tree.check_node(node)

    lines: List[str] = []

    def visit(current: int, prefix: str, connector: str) -> None:
        label = f"e{network.element_at(current)}"
        if rotor is not None and tree.is_internal(current):
            label += " ->R" if rotor.pointer(current) else " ->L"
        lines.append(f"{prefix}{connector}[{current}] {label}")
        if tree.is_internal(current):
            child_prefix = prefix + ("    " if connector else "")
            visit(tree.left_child(current), child_prefix, "|-- ")
            visit(tree.right_child(current), child_prefix, "`-- ")

    visit(node, indent, "")
    return "\n".join(lines)


def render_figure1_style(network: TreeNetwork) -> str:
    """Render placement, pointers and flip-ranks the way Figure 1 presents them.

    Combines :func:`render_levels` (with flip-ranks) and a line listing the
    current global path, which is the path of flip-rank-0 nodes.
    """
    _check_size(network)
    if network.rotor is None:
        raise TreeStructureError("Figure-1-style rendering requires rotor pointers")
    body = render_levels(network, show_flip_ranks=True)
    path = network.rotor.global_path()
    path_elements = " -> ".join(f"e{network.element_at(node)}" for node in path)
    return f"{body}\nglobal path: {path_elements}"
