"""Serve-backend selection and NumPy gating.

The serve hot path comes in two flavours:

* the **python** backend — placement state lives in plain lists and every
  request is served by the scalar fast loop.  This is the canonical
  implementation: it has no optional dependencies and its results define
  correctness for everything else.
* the **array** backend — placement state lives in typed arrays
  (:class:`array.array` of C ints) with zero-copy NumPy views when NumPy is
  importable, and request chunks are served by vectorised batch loops
  (:meth:`repro.algorithms.base.OnlineTreeAlgorithm.serve_batch`) that fall
  back to the scalar fast path only for the requests that actually mutate the
  placement.

Both backends produce bit-identical placements, ledger totals and per-request
cost records; the array backend is purely a throughput optimisation.  This
module is the single source of truth for NumPy availability and for resolving
the user-facing ``backend`` argument (``"array"``, ``"python"`` or
``None``/``"auto"``) that the CLI, runners and engine all accept.

Everything here reads :data:`HAS_NUMPY` at call time (not import time) so the
test suite can simulate a NumPy-less environment by monkeypatching one module
attribute.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.exceptions import BackendError

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

__all__ = [
    "HAS_NUMPY",
    "np",
    "AUTO_BACKEND_PREFERENCES",
    "BACKEND_ARRAY",
    "BACKEND_PYTHON",
    "BACKENDS",
    "BackendError",
    "auto_backend_for",
    "resolve_backend",
    "require_backend_available",
    "vectorise_active",
    "node_levels_view",
    "as_request_array",
]

BACKEND_ARRAY = "array"
BACKEND_PYTHON = "python"

#: The explicit backend names (``None``/``"auto"`` resolve to one of these).
BACKENDS = (BACKEND_ARRAY, BACKEND_PYTHON)


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve a user-facing backend choice to ``"array"`` or ``"python"``.

    ``None`` and ``"auto"`` pick the array backend when NumPy is importable
    and the python backend otherwise, so the default is always the fastest
    configuration the environment supports.  Explicit names are honoured as
    given: ``"array"`` is valid without NumPy too (typed-array storage, scalar
    batch loops), it just cannot vectorise.
    """
    if backend is None or backend == "auto":
        return BACKEND_ARRAY if HAS_NUMPY else BACKEND_PYTHON
    if backend not in BACKENDS:
        raise BackendError(
            f"unknown backend {backend!r}; expected one of "
            f"{', '.join(BACKENDS)} or 'auto'"
        )
    return backend


def require_backend_available(backend: Optional[str]) -> str:
    """Resolve ``backend`` and require that its fast path can actually run.

    The declarative plan layer uses this instead of :func:`resolve_backend`:
    a plan that pins ``backend="array"`` is asking for the vectorised serve
    path, and silently running it on the scalar loops (which is what bare
    ``"array"`` without NumPy means for low-level callers) would make the
    plan's recorded configuration a lie.  Raises :class:`BackendError` up
    front — before any payload is built or served — when the request cannot
    be satisfied in this environment.  ``None``/``"auto"`` never raise; they
    adapt to whatever is available.
    """
    resolved = resolve_backend(backend)
    if backend == BACKEND_ARRAY and not HAS_NUMPY:
        raise BackendError(
            "backend 'array' was requested but NumPy is not importable, so the "
            "vectorised batch-serve path is unavailable; use backend='python' "
            "or 'auto' (auto falls back to the scalar loops automatically)"
        )
    return resolved


def vectorise_active(backend: str) -> bool:
    """Whether vectorised batch serving is available for ``backend`` right now."""
    return backend == BACKEND_ARRAY and HAS_NUMPY


#: Measured per-algorithm backend preferences under ``backend="auto"``.
#:
#: The single source of truth for the auto pick, encoding the
#: ``BENCH_serve.json`` trajectory: the LRU-index algorithms serve every
#: request through the scalar loop (no vectorised batch port), so the
#: typed-array placement only adds conversion overhead — the array backend
#: measures *slower* for them (0.9× for move-half and max-push).  Today every
#: entry coincides with the capability rule below; the table exists to *pin*
#: the measured choice: gaining a batch port or flipping a class flag must
#: not silently re-route an algorithm onto a backend nobody measured
#: (regression-tested in ``tests/core/test_backend_auto.py``).  Algorithms
#: absent from the table fall back to the capability rule (array iff the
#: algorithm has a vectorised batch port).  Change entries only with a
#: BENCH_serve.json measurement justifying them.
AUTO_BACKEND_PREFERENCES: Dict[str, str] = {
    "move-half": BACKEND_PYTHON,
    "max-push": BACKEND_PYTHON,
    "rotor-push": BACKEND_ARRAY,
    "random-push": BACKEND_ARRAY,
    "move-to-front": BACKEND_ARRAY,
    "static-oblivious": BACKEND_ARRAY,
    "static-opt": BACKEND_ARRAY,
}


def auto_backend_for(
    algorithm_name: str,
    self_adjusting: bool = True,
    batch_root_promote: bool = False,
) -> str:
    """Resolve ``backend="auto"`` for one algorithm.

    Consults :data:`AUTO_BACKEND_PREFERENCES` first (the measured table);
    unknown algorithms fall back to the capability rule — array pays for
    itself only when a vectorised batch port consumes the NumPy views, i.e.
    for static trees and root-promoting algorithms.  Without NumPy the
    python backend always wins.  Explicit backend names are never routed
    through here; they are honoured as given.
    """
    if not HAS_NUMPY:
        return BACKEND_PYTHON
    preferred = AUTO_BACKEND_PREFERENCES.get(algorithm_name)
    if preferred is not None:
        return preferred
    return (
        BACKEND_ARRAY
        if not self_adjusting or batch_root_promote
        else BACKEND_PYTHON
    )


#: Cached node-level lookup tables keyed by tree size (shared, read-only).
_LEVEL_TABLES: Dict[int, "np.ndarray"] = {}


def node_levels_view(n_nodes: int) -> "np.ndarray":
    """Return the cached level-of-node lookup array for a tree of ``n_nodes``.

    The NumPy mirror of :func:`repro.core.tree.node_levels_table` — built
    from it, so the bit-length identity in ``tree.py`` stays the single
    authoritative definition.  The table turns the per-request bit-length
    computation into one fancy-index over the whole chunk; it is computed
    once per tree size and shared read-only.
    """
    table = _LEVEL_TABLES.get(n_nodes)
    if table is None:
        from repro.core.tree import node_levels_table

        table = np.asarray(node_levels_table(n_nodes), dtype=np.intp)
        table.setflags(write=False)
        _LEVEL_TABLES[n_nodes] = table
    return table


def as_request_array(chunk) -> "np.ndarray":
    """Coerce a request chunk to a 1-D integer ndarray (no copy if already one)."""
    if isinstance(chunk, np.ndarray):
        return chunk
    return np.asarray(chunk, dtype=np.intp)
