"""Cost model and cost accounting.

The paper's cost model charges, per served request:

* an *access cost* of ``level(element) + 1`` when the element is accessed, and
* an *adjustment cost* of one unit per swap of two elements occupying adjacent
  nodes.

:class:`CostLedger` records these costs per request and in aggregate, and is
shared by every algorithm implementation so that experiment code can read a
uniform cost breakdown (total / access / adjustment, per request and averaged).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Union

from repro.exceptions import CostAccountingError
from repro.types import ElementId

__all__ = ["RequestCost", "RequestRecordColumns", "CostLedger"]


@dataclass(frozen=True, slots=True)
class RequestCost:
    """Cost incurred while serving one request.

    Attributes
    ----------
    element:
        The element that was requested.
    access_cost:
        ``level + 1`` where ``level`` is the element's level at access time.
    adjustment_cost:
        Number of unit-cost swaps charged while rearranging the tree.
    level_at_access:
        The element's level when it was accessed (``access_cost - 1``).
    """

    element: ElementId
    access_cost: int
    adjustment_cost: int
    level_at_access: int

    @property
    def total_cost(self) -> int:
        """Access plus adjustment cost of this request."""
        return self.access_cost + self.adjustment_cost


class RequestRecordColumns:
    """Columnar store of per-request costs, materialising records lazily.

    Appending a :class:`RequestCost` object per request used to cost twice as
    much as serving the request itself (frozen-dataclass construction in the
    hot loop); this store keeps three parallel integer columns instead —
    element, level at access, swap count — and builds :class:`RequestCost`
    objects only when someone actually indexes or iterates the records.  It
    behaves like an immutable sequence of :class:`RequestCost` to callers
    (indexing, slicing, iteration, equality against lists), so existing code
    reading ``ledger.records`` is unaffected.
    """

    __slots__ = ("_elements", "_levels", "_swaps")

    def __init__(self) -> None:
        self._elements: List[int] = []
        self._levels: List[int] = []
        self._swaps: List[int] = []

    # ---------------------------------------------------------------- appends

    def append(self, record: RequestCost) -> None:
        """Append one materialised record (decomposed into the columns)."""
        self._elements.append(record.element)
        self._levels.append(record.level_at_access)
        self._swaps.append(record.adjustment_cost)

    def append_fields(self, element: int, level_at_access: int, swaps: int) -> None:
        """Append one record as raw fields — the hot-loop entry point."""
        self._elements.append(element)
        self._levels.append(level_at_access)
        self._swaps.append(swaps)

    def extend_fields(
        self,
        elements: Sequence[int],
        levels: Sequence[int],
        swaps: Sequence[int],
    ) -> None:
        """Append a whole batch of records given as parallel columns."""
        self._elements.extend(elements)
        self._levels.extend(levels)
        self._swaps.extend(swaps)

    def clear(self) -> None:
        """Drop all stored records."""
        self._elements.clear()
        self._levels.clear()
        self._swaps.clear()

    def copy(self) -> "RequestRecordColumns":
        """Return an independent copy of the columns."""
        clone = RequestRecordColumns()
        clone._elements = list(self._elements)
        clone._levels = list(self._levels)
        clone._swaps = list(self._swaps)
        return clone

    # ----------------------------------------------------------------- access

    def _materialise(self, index: int) -> RequestCost:
        level = self._levels[index]
        return RequestCost(
            element=self._elements[index],
            access_cost=level + 1,
            adjustment_cost=self._swaps[index],
            level_at_access=level,
        )

    def __len__(self) -> int:
        return len(self._elements)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[RequestCost, List[RequestCost]]:
        if isinstance(index, slice):
            indices = range(*index.indices(len(self._elements)))
            return [self._materialise(i) for i in indices]
        if index < 0:
            index += len(self._elements)
        if not 0 <= index < len(self._elements):
            raise IndexError("record index out of range")
        return self._materialise(index)

    def __iter__(self) -> Iterator[RequestCost]:
        for index in range(len(self._elements)):
            yield self._materialise(index)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RequestRecordColumns):
            return (
                self._elements == other._elements
                and self._levels == other._levels
                and self._swaps == other._swaps
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                record == expected for record, expected in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RequestRecordColumns(n={len(self._elements)})"


class CostLedger:
    """Accumulates per-request costs for one algorithm run.

    The ledger has an explicit open/close protocol around each request so that
    the swap primitive can charge adjustment cost incrementally:

    >>> ledger = CostLedger()
    >>> ledger.open_request(element=3, level_at_access=2)
    >>> ledger.charge_swaps(4)
    >>> record = ledger.close_request()
    >>> (record.access_cost, record.adjustment_cost)
    (3, 4)

    Parameters
    ----------
    keep_records:
        When ``True`` (default) every request's costs are kept in
        :attr:`records` (a :class:`RequestRecordColumns`, which stores raw
        integer columns and materialises :class:`RequestCost` objects
        lazily); set to ``False`` for long runs where only the aggregate
        totals matter (the per-request history is then dropped to save
        memory).
    """

    __slots__ = (
        "records",
        "keep_records",
        "_total_access",
        "_total_adjustment",
        "_closed_count",
        "_open_element",
        "_open_level",
        "_open_adjustment",
    )

    def __init__(self, keep_records: bool = True) -> None:
        self.records: RequestRecordColumns = RequestRecordColumns()
        self.keep_records = keep_records
        self._total_access = 0
        self._total_adjustment = 0
        self._closed_count = 0
        self._open_element: Optional[ElementId] = None
        self._open_level = 0
        self._open_adjustment = 0

    # ----------------------------------------------------------- per request

    def open_request(self, element: ElementId, level_at_access: int) -> None:
        """Start accounting for a request to ``element`` found at ``level_at_access``."""
        if self._open_element is not None:
            raise CostAccountingError(
                "open_request called while a request is already open "
                f"(element {self._open_element})"
            )
        if level_at_access < 0:
            raise CostAccountingError(
                f"level_at_access must be non-negative, got {level_at_access}"
            )
        self._open_element = element
        self._open_level = level_at_access
        self._open_adjustment = 0

    def charge_swaps(self, count: int = 1) -> None:
        """Charge ``count`` unit-cost swaps to the currently open request."""
        if self._open_element is None:
            raise CostAccountingError("charge_swaps called with no open request")
        if count < 0:
            raise CostAccountingError(f"swap count must be non-negative, got {count}")
        self._open_adjustment += count

    def close_request(self) -> RequestCost:
        """Finish the open request and return its :class:`RequestCost` record."""
        if self._open_element is None:
            raise CostAccountingError("close_request called with no open request")
        record = RequestCost(
            element=self._open_element,
            access_cost=self._open_level + 1,
            adjustment_cost=self._open_adjustment,
            level_at_access=self._open_level,
        )
        self._total_access += record.access_cost
        self._total_adjustment += record.adjustment_cost
        self._closed_count += 1
        if self.keep_records:
            self.records.append_fields(
                self._open_element, self._open_level, self._open_adjustment
            )
        self._open_element = None
        self._open_adjustment = 0
        return record

    def close_request_fast(self) -> None:
        """Finish the open request without materialising a :class:`RequestCost`.

        Fast-path variant of :meth:`close_request` for aggregate-only runs:
        totals and counters are updated exactly as in the full version, but no
        record object is built unless ``keep_records`` demands one.
        """
        if self._open_element is None:
            raise CostAccountingError("close_request called with no open request")
        self._total_access += self._open_level + 1
        self._total_adjustment += self._open_adjustment
        self._closed_count += 1
        if self.keep_records:
            self.records.append_fields(
                self._open_element, self._open_level, self._open_adjustment
            )
        self._open_element = None
        self._open_adjustment = 0

    def record_request(
        self, element: ElementId, level_at_access: int, swaps: int = 0
    ) -> None:
        """Account one whole request in a single call.

        Batch equivalent of ``open_request`` / ``charge_swaps`` /
        ``close_request`` for serve loops that know the total swap count of a
        request analytically: the ledger is touched once instead of three
        times and no intermediate open state is kept.
        """
        if self._open_element is not None:
            raise CostAccountingError(
                "record_request called while a request is already open "
                f"(element {self._open_element})"
            )
        if level_at_access < 0:
            raise CostAccountingError(
                f"level_at_access must be non-negative, got {level_at_access}"
            )
        if swaps < 0:
            raise CostAccountingError(f"swap count must be non-negative, got {swaps}")
        self._total_access += level_at_access + 1
        self._total_adjustment += swaps
        self._closed_count += 1
        if self.keep_records:
            self.records.append_fields(element, level_at_access, swaps)

    def record_batch(
        self, n_requests: int, access_total: int, adjustment_total: int
    ) -> None:
        """Account a whole batch of requests with precomputed cost totals.

        Entry point of the vectorised batch serve loops when no per-request
        history is kept: one ledger call covers an entire chunk.  A ledger
        with ``keep_records`` enabled refuses totals-only batches (the
        per-request history would silently go missing); batch callers that
        keep records use :meth:`record_batch_columns` instead.
        """
        if self._open_element is not None:
            raise CostAccountingError(
                "record_batch called while a request is already open "
                f"(element {self._open_element})"
            )
        if self.keep_records:
            raise CostAccountingError(
                "record_batch drops per-request history; use "
                "record_batch_columns on a ledger with keep_records enabled"
            )
        if n_requests < 0 or access_total < 0 or adjustment_total < 0:
            raise CostAccountingError(
                "batch counts and totals must be non-negative, got "
                f"({n_requests}, {access_total}, {adjustment_total})"
            )
        self._total_access += access_total
        self._total_adjustment += adjustment_total
        self._closed_count += n_requests

    def record_batch_columns(
        self,
        elements: Sequence[int],
        levels_at_access: Sequence[int],
        swaps: Optional[Sequence[int]] = None,
    ) -> None:
        """Account a whole batch given as parallel per-request columns.

        The columns play the role of ``n_requests`` individual
        :meth:`record_request` calls: totals are derived from them and, when
        ``keep_records`` is enabled, they are appended to :attr:`records` in
        one extend instead of one object per request.  ``swaps=None`` means
        "no adjustment cost anywhere in the batch" (static algorithms).
        """
        if self._open_element is not None:
            raise CostAccountingError(
                "record_batch_columns called while a request is already open "
                f"(element {self._open_element})"
            )
        count = len(elements)
        if len(levels_at_access) != count or (
            swaps is not None and len(swaps) != count
        ):
            raise CostAccountingError(
                "batch columns must have equal lengths, got "
                f"({count}, {len(levels_at_access)}, "
                f"{len(swaps) if swaps is not None else None})"
            )
        self._total_access += sum(levels_at_access) + count
        if swaps is None:
            swaps = [0] * count
        else:
            self._total_adjustment += sum(swaps)
        self._closed_count += count
        if self.keep_records:
            self.records.extend_fields(elements, levels_at_access, swaps)

    @property
    def request_open(self) -> bool:
        """Whether a request is currently being accounted."""
        return self._open_element is not None

    @property
    def pending_adjustment(self) -> int:
        """Adjustment cost charged to the currently open request so far."""
        if self._open_element is None:
            raise CostAccountingError("no request is open")
        return self._open_adjustment

    # -------------------------------------------------------------- aggregate

    @property
    def n_requests(self) -> int:
        """Number of requests closed so far."""
        return self._closed_count

    @property
    def total_access_cost(self) -> int:
        """Sum of access costs over all closed requests."""
        return self._total_access

    @property
    def total_adjustment_cost(self) -> int:
        """Sum of adjustment (swap) costs over all closed requests."""
        return self._total_adjustment

    @property
    def total_cost(self) -> int:
        """Total cost: access plus adjustment."""
        return self._total_access + self._total_adjustment

    def average_access_cost(self) -> float:
        """Average access cost per request (0.0 if no request was served)."""
        return self._total_access / self._closed_count if self._closed_count else 0.0

    def average_adjustment_cost(self) -> float:
        """Average adjustment cost per request (0.0 if no request was served)."""
        if not self._closed_count:
            return 0.0
        return self._total_adjustment / self._closed_count

    def average_total_cost(self) -> float:
        """Average total cost per request (0.0 if no request was served)."""
        return self.total_cost / self._closed_count if self._closed_count else 0.0

    def copy(self) -> "CostLedger":
        """Return an independent copy carrying the same totals and records.

        Raises :class:`CostAccountingError` while a request is open, because
        half-accounted state cannot be duplicated meaningfully.
        """
        if self._open_element is not None:
            raise CostAccountingError("cannot copy the ledger while a request is open")
        clone = CostLedger(keep_records=self.keep_records)
        clone.records = self.records.copy()
        clone._total_access = self._total_access
        clone._total_adjustment = self._total_adjustment
        clone._closed_count = self._closed_count
        return clone

    def reset(self) -> None:
        """Forget all recorded costs (used when re-running an algorithm)."""
        if self._open_element is not None:
            raise CostAccountingError("cannot reset the ledger while a request is open")
        self.records.clear()
        self._total_access = 0
        self._total_adjustment = 0
        self._closed_count = 0

    def snapshot_totals(self) -> dict:
        """Return a plain-dict summary of the aggregate costs."""
        return {
            "n_requests": self.n_requests,
            "total_access_cost": self._total_access,
            "total_adjustment_cost": self._total_adjustment,
            "total_cost": self.total_cost,
            "average_access_cost": self.average_access_cost(),
            "average_adjustment_cost": self.average_adjustment_cost(),
            "average_total_cost": self.average_total_cost(),
        }
