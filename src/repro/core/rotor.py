"""Rotor pointers, global paths, flips and flip-ranks.

The deterministic Rotor-Push algorithm replaces the random left/right choices
of Random-Push by *rotor pointers*: every internal node stores a pointer to one
of its two children; whenever the pointer is used it is toggled.  This module
implements the full rotor machinery of Section 4 of the paper:

* :class:`RotorState` stores one pointer per internal node;
* the *global path* ``P^T`` is the root-to-leaf path obtained by following the
  pointers (Section 3);
* ``flip(d)`` toggles the pointers of the global-path nodes above level ``d``
  (Definition 2);
* the *flip-rank* of a node (Definition 3) is the number of consecutive
  ``flip(d)`` operations after which the node joins the global path; Lemma 2
  shows it decomposes along the root path, which yields the simple binary
  encoding computed by :meth:`RotorState.flip_rank`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.tree import CompleteBinaryTree
from repro.exceptions import RotorStateError
from repro.types import Level, NodeId, NodePath

__all__ = ["RotorState"]

LEFT = 0
RIGHT = 1


class RotorState:
    """Two-state rotor pointers for every internal node of a complete tree.

    Parameters
    ----------
    tree:
        The complete binary tree the pointers live on.
    pointers:
        Optional initial pointer directions, one entry per internal node in
        heap order (0 = left child, 1 = right child).  The paper initialises
        all pointers to the left child, which is the default here.
    """

    __slots__ = ("_tree", "_pointers")

    def __init__(
        self,
        tree: CompleteBinaryTree,
        pointers: Optional[Sequence[int]] = None,
    ) -> None:
        self._tree = tree
        n_internal = self._n_internal_nodes()
        if pointers is None:
            self._pointers = [LEFT] * n_internal
        else:
            if len(pointers) != n_internal:
                raise RotorStateError(
                    f"expected {n_internal} pointer entries, got {len(pointers)}"
                )
            cleaned: List[int] = []
            for index, direction in enumerate(pointers):
                if direction not in (LEFT, RIGHT):
                    raise RotorStateError(
                        f"pointer at internal node {index} must be 0 or 1, "
                        f"got {direction!r}"
                    )
                cleaned.append(int(direction))
            self._pointers = cleaned

    # --------------------------------------------------------------- plumbing

    def _n_internal_nodes(self) -> int:
        depth = self._tree.depth
        if depth == 0:
            return 0
        return (1 << depth) - 1

    @property
    def tree(self) -> CompleteBinaryTree:
        """The tree this rotor state is attached to."""
        return self._tree

    def copy(self) -> "RotorState":
        """Return an independent copy of this rotor state."""
        return RotorState(self._tree, list(self._pointers))

    def pointers(self) -> List[int]:
        """Return a copy of the raw pointer array (one entry per internal node)."""
        return list(self._pointers)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RotorState):
            return NotImplemented
        return self._tree == other._tree and self._pointers == other._pointers

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RotorState(depth={self._tree.depth}, pointers={self._pointers!r})"

    # --------------------------------------------------------------- pointers

    def _check_internal(self, node: NodeId) -> NodeId:
        self._tree.check_node(node)
        if self._tree.is_leaf(node):
            raise RotorStateError(f"node {node} is a leaf and has no rotor pointer")
        return node

    def pointer(self, node: NodeId) -> int:
        """Return the pointer direction of an internal node (0 = left, 1 = right)."""
        return self._pointers[self._check_internal(node)]

    def pointed_child(self, node: NodeId) -> NodeId:
        """Return the child node that ``node``'s rotor pointer currently selects."""
        return self._tree.child(node, self.pointer(node))

    def toggle(self, node: NodeId) -> int:
        """Toggle the pointer of ``node`` and return its new direction."""
        index = self._check_internal(node)
        self._pointers[index] ^= 1
        return self._pointers[index]

    def set_pointer(self, node: NodeId, direction: int) -> None:
        """Explicitly set the pointer of ``node`` to ``direction`` (0 or 1)."""
        if direction not in (LEFT, RIGHT):
            raise RotorStateError(f"direction must be 0 or 1, got {direction!r}")
        self._pointers[self._check_internal(node)] = direction

    def reset(self, direction: int = LEFT) -> None:
        """Reset every pointer to ``direction`` (all-left matches the paper's start)."""
        if direction not in (LEFT, RIGHT):
            raise RotorStateError(f"direction must be 0 or 1, got {direction!r}")
        for index in range(len(self._pointers)):
            self._pointers[index] = direction

    # ------------------------------------------------------------ global path

    def global_path(self, down_to_level: Optional[Level] = None) -> NodePath:
        """Return the global path ``P^T`` as a list of nodes starting at the root.

        The path follows the rotor pointers from the root; with
        ``down_to_level`` it is truncated at that level (inclusive), otherwise
        it runs to a leaf.
        """
        tree = self._tree
        limit = tree.depth if down_to_level is None else down_to_level
        if not 0 <= limit <= tree.depth:
            raise RotorStateError(
                f"level {down_to_level} outside tree of depth {tree.depth}"
            )
        pointers = self._pointers
        path: NodePath = [0]
        node = 0
        for _ in range(limit):
            node = 2 * node + 1 + pointers[node]
            path.append(node)
        return path

    def global_path_node(self, level: Level) -> NodeId:
        """Return ``P^T_level``, the unique global-path node at ``level``."""
        return self.global_path(down_to_level=level)[level]

    def on_global_path(self, node: NodeId) -> bool:
        """Return ``True`` if ``node`` is contained in the current global path."""
        level = self._tree.level(node)
        return self.global_path_node(level) == node

    # ------------------------------------------------------------------ flips

    def flip(self, level: Level) -> NodePath:
        """Execute ``flip(level)``: toggle pointers of global-path nodes above ``level``.

        Per Definition 2 the pointers of nodes ``P^T_{d'}`` for ``d' < level``
        are toggled.  The global path *before* the flip (down to ``level``) is
        returned, which is convenient for algorithms that need to know which
        nodes were affected.
        """
        if not 0 <= level <= self._tree.depth:
            raise RotorStateError(
                f"cannot flip at level {level} in a tree of depth {self._tree.depth}"
            )
        # Toggle each pointer as it is consumed: the walk visits exactly the
        # global-path nodes above ``level``, so this fuses the path query and
        # the toggle pass into one loop over trusted index arithmetic.
        pointers = self._pointers
        path: NodePath = [0]
        node = 0
        for _ in range(level):
            direction = pointers[node]
            pointers[node] = direction ^ 1
            node = 2 * node + 1 + direction
            path.append(node)
        return path

    # ------------------------------------------------------------- flip-ranks

    def flip_rank(self, node: NodeId) -> int:
        """Return the flip-rank of ``node`` (Definition 3).

        The flip-rank of a ``d``-level node is the smallest number of
        consecutive ``flip(d)`` operations after which the node is contained in
        the global path.  By Lemma 2 it decomposes along the root path: writing
        the root-to-node path as ``u_0 = root, u_1, ..., u_d = node`` and
        letting ``b_i = 0`` when the pointer of ``u_{i-1}`` currently points at
        ``u_i`` (and ``b_i = 1`` otherwise), the flip-rank equals
        ``sum_i b_i * 2**(i-1)`` - i.e. the binary number whose least
        significant bit is the root's choice.
        """
        tree = self._tree
        path = tree.path_from_root(tree.check_node(node))
        rank = 0
        for index in range(1, len(path)):
            parent, child = path[index - 1], path[index]
            points_at_child = tree.child(parent, self._pointers[parent]) == child
            if not points_at_child:
                rank += 1 << (index - 1)
        return rank

    def flip_rank_within(self, subtree_root: NodeId, node: NodeId) -> int:
        """Return the flip-rank of ``node`` relative to the subtree ``T[subtree_root]``.

        Used to verify the recursive decomposition of Lemma 2:
        ``frnk_T(node) = frnk_T(subtree_root) + frnk_{T[subtree_root]}(node) * 2**level(subtree_root)``.
        """
        tree = self._tree
        if not tree.is_ancestor(subtree_root, node):
            raise RotorStateError(
                f"node {subtree_root} is not an ancestor of node {node}"
            )
        path = tree.path_between(subtree_root, node)
        rank = 0
        for index in range(1, len(path)):
            parent, child = path[index - 1], path[index]
            points_at_child = tree.child(parent, self._pointers[parent]) == child
            if not points_at_child:
                rank += 1 << (index - 1)
        return rank

    def flip_ranks_at_level(self, level: Level) -> List[int]:
        """Return the flip-ranks of every node at ``level``, left to right.

        For a valid rotor state these are a permutation of ``{0, ..., 2**level - 1}``.
        """
        return [self.flip_rank(node) for node in self._tree.nodes_at_level(level)]

    def node_with_flip_rank(self, level: Level, rank: int) -> NodeId:
        """Return the unique node at ``level`` whose flip-rank equals ``rank``.

        This walks down from the root reading ``rank`` bit by bit (least
        significant bit first), choosing the pointed child for a 0-bit and the
        other child for a 1-bit; it is the inverse of :meth:`flip_rank`.
        """
        if not 0 <= rank < (1 << level):
            raise RotorStateError(
                f"rank {rank} outside range of level {level} "
                f"(expected 0 <= rank < {1 << level})"
            )
        tree = self._tree
        node = tree.root
        for bit_index in range(level):
            bit = (rank >> bit_index) & 1
            direction = self._pointers[node] ^ bit
            node = tree.child(node, direction)
        return node

    def validate(self) -> None:
        """Check rotor-state invariants, raising :class:`RotorStateError` on failure.

        The main invariant (used by the analysis in Section 4.1) is that the
        flip-ranks of the ``2**d`` nodes of every level ``d`` form a
        permutation of ``{0, ..., 2**d - 1}``.
        """
        for level in range(self._tree.depth + 1):
            ranks = self.flip_ranks_at_level(level)
            if sorted(ranks) != list(range(1 << level)):
                raise RotorStateError(
                    f"flip-ranks at level {level} are not a permutation of "
                    f"0..{(1 << level) - 1}: {ranks}"
                )

    # ------------------------------------------------------------- simulation

    def simulate_flip_sequence(self, level: Level, count: int) -> List[NodeId]:
        """Return the level-``level`` global-path nodes visited by ``count`` flips.

        The first entry is the current ``P^T_level`` (before any flip); each
        subsequent entry is the node after one more ``flip(level)``.  The rotor
        state is restored before returning, so this is a pure query.
        """
        if count < 0:
            raise RotorStateError(f"count must be non-negative, got {count}")
        saved = list(self._pointers)
        visited: List[NodeId] = [self.global_path_node(level)]
        for _ in range(count):
            self.flip(level)
            visited.append(self.global_path_node(level))
        self._pointers = saved
        return visited

    def apply_pointer_assignment(self, assignment: Iterable[int]) -> None:
        """Replace all pointers at once (used by snapshot/restore logic)."""
        values = list(assignment)
        if len(values) != len(self._pointers):
            raise RotorStateError(
                f"expected {len(self._pointers)} pointer values, got {len(values)}"
            )
        for index, direction in enumerate(values):
            if direction not in (LEFT, RIGHT):
                raise RotorStateError(
                    f"pointer {index} must be 0 or 1, got {direction!r}"
                )
            self._pointers[index] = direction
