"""Augmented push-down operation and path-relocation helpers.

Definition 1 of the paper introduces the *augmented push-down* operation
``PD(u, v)``: given two nodes ``u`` (the node of the requested element) and
``v`` on the same level ``d``, fix the cycle

``root = v_0 -> v_1 -> ... -> v_{d-1} -> v_d = v -> u -> root``

and move every element at a cycle node to the next node of the cycle.  Lemma 1
shows the operation can be realised with ``O(d)`` adjacent swaps, which this
module implements in two interchangeable ways:

* :func:`apply_pushdown_swaps` executes the exact three-phase adjacent-swap
  realisation from the proof of Lemma 1 (bubble ``el(v)`` up, bubble it down to
  ``u``, bubble the requested element back up), charging each actual swap; and
* :func:`apply_pushdown_cycle` applies the cyclic shift directly and charges
  the same number of swaps analytically (fast path for large simulations).

Both produce the identical final configuration, which the test suite verifies.
The module also offers :func:`relocate_along_path`, the building block used by
Move-Half, where a single element is carried along a tree path by adjacent
swaps (shifting the intermediate elements one position backwards).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.state import TreeNetwork
from repro.exceptions import SwapError
from repro.types import NodeId

__all__ = [
    "pushdown_cycle_nodes",
    "pushdown_swap_cost",
    "apply_pushdown_swaps",
    "apply_pushdown_cycle",
    "relocate_along_path",
    "relocate_element",
]


def pushdown_cycle_nodes(network: TreeNetwork, u: NodeId, v: NodeId) -> List[NodeId]:
    """Return the cycle of nodes of ``PD(u, v)`` in movement order.

    The returned list ``[v_0, v_1, ..., v_d, u]`` (with ``v_d = v``) is such
    that the element of each node moves to the *next* node of the list, and the
    element of the last node (``u``) moves to the first (the root).  When
    ``u == v`` the cycle simply ends at ``v``.
    """
    tree = network.tree
    level_u = tree.level(tree.check_node(u))
    level_v = tree.level(tree.check_node(v))
    if level_u != level_v:
        raise SwapError(
            f"PD(u, v) requires nodes of equal level, got levels {level_u} and {level_v}"
        )
    cycle = tree.path_from_root(v)
    if u != v:
        cycle.append(u)
    return cycle


def pushdown_swap_cost(network: TreeNetwork, u: NodeId, v: NodeId) -> int:
    """Return the number of adjacent swaps used by the Lemma-1 realisation.

    For a request at level ``d``: ``d`` swaps to bubble ``el(v)`` to the root;
    if ``u != v`` another ``d`` swaps to bubble it down to ``u`` and ``d - 1``
    swaps to return the requested element to the root, i.e. ``3 d - 1`` swaps
    in total (and ``d`` swaps when ``u == v``).  This matches the ``O(d)``
    bound of Lemma 1 (the paper quotes ``3 d - 4`` with a slightly different
    counting convention; the difference is an additive constant only).
    """
    tree = network.tree
    depth = tree.level(v)
    if tree.level(u) != depth:
        raise SwapError("PD(u, v) requires nodes of equal level")
    if depth == 0:
        return 0
    if u == v:
        return depth
    return 3 * depth - 1


def apply_pushdown_swaps(network: TreeNetwork, u: NodeId, v: NodeId) -> int:
    """Execute ``PD(u, v)`` with explicit adjacent swaps (Lemma 1 realisation).

    The requested element is assumed to currently occupy ``u``.  Returns the
    number of swaps performed (each is charged to the open request through the
    network's ledger).

    The three phases are:

    1. bubble the element at ``v`` up to the root - this pushes every element
       on the root-to-``v`` path one level down along that path;
    2. if ``u != v``, bubble that element from the root down to ``u`` - this
       temporarily lifts the elements of the root-to-``u`` path one level up;
    3. bubble the requested element (now at the parent of ``u``) back to the
       root - undoing the temporary lift of phase 2.

    The net effect is exactly the cyclic shift of Definition 1.
    """
    tree = network.tree
    depth = tree.level(v)
    if tree.level(u) != depth:
        raise SwapError("PD(u, v) requires nodes of equal level")
    if depth == 0:
        return 0

    if network.enforce_marking:
        # Conceptually the algorithm "accesses" el(v) to pick the push-down
        # path (cf. the proof of Lemma 1), which marks the root-to-v path and
        # legalises the phase-1 swaps under the marking discipline.
        for node in tree.path_from_root(v):
            network.mark(node)

    swaps = 0

    # Phase 1: bubble el(v) to the root.
    node = v
    while node != tree.root:
        node = network.swap_with_parent(node)
        swaps += 1

    if u == v:
        return swaps

    # Phase 2: bubble the same element from the root down to u.
    path_to_u = tree.path_from_root(u)
    for child in path_to_u[1:]:
        parent = tree.parent(child)
        network.swap(parent, child)
        swaps += 1

    # Phase 3: the requested element now sits at the parent of u; return it to the root.
    node = tree.parent(u)
    while node != tree.root:
        node = network.swap_with_parent(node)
        swaps += 1

    return swaps


def apply_pushdown_cycle(network: TreeNetwork, u: NodeId, v: NodeId) -> int:
    """Execute ``PD(u, v)`` as a direct cyclic shift with analytic swap cost.

    This is the fast path used in large simulations: the element permutation is
    identical to :func:`apply_pushdown_swaps`, and the charged adjustment cost
    equals the number of swaps the explicit realisation would perform.
    Returns the charged swap count.
    """
    cycle = pushdown_cycle_nodes(network, u, v)
    cost = pushdown_swap_cost(network, u, v)
    network.apply_cycle(cycle, charged_swaps=cost)
    return cost


def relocate_along_path(
    network: TreeNetwork,
    path: Sequence[NodeId],
    charge: bool = True,
) -> int:
    """Carry the element at ``path[0]`` to ``path[-1]`` by adjacent swaps.

    Every consecutive pair of ``path`` must be adjacent in the tree.  The
    element initially at ``path[0]`` ends at ``path[-1]``; each intermediate
    element shifts one position towards ``path[0]``.  Returns the number of
    swaps performed (``len(path) - 1``).
    """
    if len(path) < 1:
        raise SwapError("relocation path must contain at least one node")
    swaps = 0
    for index in range(1, len(path)):
        network.swap(path[index - 1], path[index], charge=charge)
        swaps += 1
    return swaps


def relocate_element(
    network: TreeNetwork,
    source: NodeId,
    target: NodeId,
    charge: bool = True,
) -> int:
    """Carry the element at ``source`` to ``target`` along the unique tree path.

    Convenience wrapper around :func:`relocate_along_path` using the tree path
    between the two nodes.  Returns the number of swaps performed, which equals
    the tree distance between ``source`` and ``target``.
    """
    path = network.tree.path_between(source, target)
    if len(path) == 1:
        return 0
    return relocate_along_path(network, path, charge=charge)
