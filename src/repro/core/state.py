"""Mutable configuration of a single-source self-adjusting tree network.

A :class:`TreeNetwork` ties together the three ingredients every algorithm in
the paper manipulates:

* the fixed complete binary tree topology (:class:`repro.core.tree.CompleteBinaryTree`),
* the bijective mapping ``nd : E -> T`` between elements and nodes together
  with its inverse ``el``, and
* a :class:`repro.core.cost.CostLedger` recording access and adjustment costs.

The only mutation primitive that touches the mapping is the adjacent
:meth:`TreeNetwork.swap` (and the cycle-application helper used by algorithms
whose cost is charged analytically); the marking discipline of Section 2 of
the paper - "subsequent swaps are allowed only if one of the swapped nodes is
marked; after the swap both involved nodes are marked" - is enforced when
``enforce_marking`` is enabled.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.cost import CostLedger
from repro.core.rotor import RotorState
from repro.core.tree import CompleteBinaryTree
from repro.exceptions import MappingError, SwapError
from repro.types import ElementId, Level, NodeId

__all__ = ["TreeNetwork", "identity_placement", "random_placement"]


def identity_placement(n_nodes: int) -> List[ElementId]:
    """Return the placement mapping node ``i`` to element ``i`` (BFS order)."""
    return list(range(n_nodes))


def random_placement(n_nodes: int, rng: Optional[random.Random] = None) -> List[ElementId]:
    """Return a uniformly random placement of elements onto nodes.

    The paper's experiments always construct the initial tree "by placing the
    nodes uniformly at random"; this helper produces such a placement.

    Parameters
    ----------
    n_nodes:
        Number of nodes (and elements).
    rng:
        Optional :class:`random.Random` instance for reproducibility.
    """
    placement = list(range(n_nodes))
    (rng or random).shuffle(placement)
    return placement


class TreeNetwork:
    """Tree topology plus element placement, rotor pointers and cost ledger.

    Parameters
    ----------
    tree:
        The complete binary tree topology.
    placement:
        Optional initial placement: ``placement[node]`` is the element stored
        at ``node``.  Defaults to the identity placement.
    with_rotor:
        When ``True`` a :class:`RotorState` (all pointers to the left child,
        matching the paper's initial state) is attached.
    ledger:
        Optional cost ledger to use; a fresh one is created by default.
    enforce_marking:
        When ``True``, :meth:`swap` enforces the marking discipline: a swap is
        legal only if at least one endpoint is marked, and the access path of
        the current request is marked automatically by :meth:`access`.
    """

    __slots__ = (
        "tree",
        "rotor",
        "ledger",
        "enforce_marking",
        "_elem_at",
        "_node_of",
        "_marked",
    )

    def __init__(
        self,
        tree: CompleteBinaryTree,
        placement: Optional[Sequence[ElementId]] = None,
        with_rotor: bool = False,
        ledger: Optional[CostLedger] = None,
        enforce_marking: bool = False,
    ) -> None:
        self.tree = tree
        if placement is None:
            placement = identity_placement(tree.n_nodes)
        self._set_placement(placement)
        self.rotor: Optional[RotorState] = RotorState(tree) if with_rotor else None
        self.ledger = ledger if ledger is not None else CostLedger()
        self.enforce_marking = enforce_marking
        self._marked: set = set()

    # ------------------------------------------------------------ construction

    @classmethod
    def with_random_placement(
        cls,
        tree: CompleteBinaryTree,
        seed: Optional[int] = None,
        with_rotor: bool = False,
        enforce_marking: bool = False,
        keep_records: bool = True,
    ) -> "TreeNetwork":
        """Build a network whose initial placement is uniformly random.

        This mirrors the experimental setup of the paper, where "the initial
        trees were always constructed by placing the nodes uniformly at
        random".
        """
        rng = random.Random(seed)
        return cls(
            tree,
            placement=random_placement(tree.n_nodes, rng),
            with_rotor=with_rotor,
            ledger=CostLedger(keep_records=keep_records),
            enforce_marking=enforce_marking,
        )

    def _set_placement(self, placement: Sequence[ElementId]) -> None:
        n_nodes = self.tree.n_nodes
        if len(placement) != n_nodes:
            raise MappingError(
                f"placement has {len(placement)} entries, expected {n_nodes}"
            )
        if sorted(placement) != list(range(n_nodes)):
            raise MappingError(
                "placement is not a bijection onto elements 0..n-1"
            )
        self._elem_at: List[ElementId] = list(placement)
        self._node_of: List[NodeId] = [0] * n_nodes
        for node, element in enumerate(self._elem_at):
            self._node_of[element] = node

    def copy(self) -> "TreeNetwork":
        """Return a deep copy (fresh ledger totals are preserved by reference semantics).

        The copy shares the immutable tree object but owns independent copies
        of the placement, rotor pointers, marking set and a *fresh* ledger.
        """
        clone = TreeNetwork(
            self.tree,
            placement=list(self._elem_at),
            with_rotor=False,
            ledger=CostLedger(keep_records=self.ledger.keep_records),
            enforce_marking=self.enforce_marking,
        )
        if self.rotor is not None:
            clone.rotor = self.rotor.copy()
        clone._marked = set(self._marked)
        return clone

    # -------------------------------------------------------------- the mapping

    @property
    def n_elements(self) -> int:
        """Number of elements (equals the number of nodes)."""
        return self.tree.n_nodes

    def element_at(self, node: NodeId) -> ElementId:
        """Return ``el(node)``: the element currently stored at ``node``."""
        self.tree.check_node(node)
        return self._elem_at[node]

    def node_of(self, element: ElementId) -> NodeId:
        """Return ``nd(element)``: the node currently storing ``element``."""
        self._check_element(element)
        return self._node_of[element]

    def level_of(self, element: ElementId) -> Level:
        """Return the current level of ``element`` in the tree."""
        return self.tree.level(self.node_of(element))

    def _check_element(self, element: ElementId) -> ElementId:
        if not 0 <= element < self.tree.n_nodes:
            raise MappingError(
                f"element {element} outside universe of size {self.tree.n_nodes}"
            )
        return element

    def placement(self) -> List[ElementId]:
        """Return a copy of the node-to-element placement array."""
        return list(self._elem_at)

    def element_positions(self) -> Dict[ElementId, NodeId]:
        """Return a dict mapping every element to its current node."""
        return {element: node for node, element in enumerate(self._elem_at)}

    def elements_at_level(self, level: Level) -> List[ElementId]:
        """Return the elements currently stored at ``level``, left to right."""
        return [self._elem_at[node] for node in self.tree.nodes_at_level(level)]

    # ---------------------------------------------------------------- requests

    def access(self, element: ElementId) -> Level:
        """Access ``element``: open cost accounting and mark its root path.

        Returns the element's level at access time.  The access cost
        ``level + 1`` is recorded in the ledger; the root-to-element path is
        marked so that subsequent swaps obeying the marking discipline are
        legal.
        """
        node = self.node_of(element)
        level = self.tree.level(node)
        self.ledger.open_request(element, level)
        self._marked = set(self.tree.path_to_root(node))
        return level

    def finish_request(self):
        """Close cost accounting for the current request and clear markings."""
        record = self.ledger.close_request()
        self._marked.clear()
        return record

    def is_marked(self, node: NodeId) -> bool:
        """Return ``True`` if ``node`` is marked in the current request."""
        return node in self._marked

    def mark(self, node: NodeId) -> None:
        """Explicitly mark ``node`` (used by algorithms with bespoke swap plans)."""
        self._marked.add(self.tree.check_node(node))

    # ------------------------------------------------------------------- swaps

    def swap(self, node_a: NodeId, node_b: NodeId, charge: bool = True) -> None:
        """Swap the elements stored at two *adjacent* nodes.

        Parameters
        ----------
        node_a, node_b:
            The two nodes; one must be the parent of the other.
        charge:
            Whether to charge one unit of adjustment cost to the open request
            (algorithms that account cost analytically can pass ``False``).
        """
        self.tree.check_node(node_a)
        self.tree.check_node(node_b)
        parent_of_b = node_b != 0 and (node_b - 1) >> 1 == node_a
        parent_of_a = node_a != 0 and (node_a - 1) >> 1 == node_b
        if not (parent_of_a or parent_of_b):
            raise SwapError(f"nodes {node_a} and {node_b} are not adjacent")
        if self.enforce_marking:
            if node_a not in self._marked and node_b not in self._marked:
                raise SwapError(
                    f"swap of unmarked nodes {node_a}, {node_b} violates the "
                    "marking discipline"
                )
            self._marked.add(node_a)
            self._marked.add(node_b)
        elem_a, elem_b = self._elem_at[node_a], self._elem_at[node_b]
        self._elem_at[node_a], self._elem_at[node_b] = elem_b, elem_a
        self._node_of[elem_a], self._node_of[elem_b] = node_b, node_a
        if charge:
            self.ledger.charge_swaps(1)

    def swap_with_parent(self, node: NodeId, charge: bool = True) -> NodeId:
        """Swap the element at ``node`` with the one at its parent; return the parent."""
        parent = self.tree.parent(node)
        self.swap(node, parent, charge=charge)
        return parent

    def apply_cycle(
        self,
        cycle_nodes: Sequence[NodeId],
        charged_swaps: int,
    ) -> None:
        """Apply a cyclic shift of elements along ``cycle_nodes`` with analytic cost.

        The element at ``cycle_nodes[i]`` moves to ``cycle_nodes[i + 1]`` (and
        the last one wraps around to the first node).  The caller supplies the
        number of unit swaps ``charged_swaps`` that an adjacent-swap
        realisation of this permutation would use; that amount is charged to
        the open request.  This is used by algorithms (Max-Push, and the
        fast-path of the push-down operation) whose cost is accounted by a
        closed-form formula rather than by materialising every swap.
        """
        if charged_swaps < 0:
            raise SwapError(f"charged_swaps must be non-negative, got {charged_swaps}")
        nodes = [self.tree.check_node(node) for node in cycle_nodes]
        if len(set(nodes)) != len(nodes):
            raise SwapError(f"cycle contains repeated nodes: {nodes}")
        if len(nodes) >= 2:
            moved = [self._elem_at[node] for node in nodes]
            for index, node in enumerate(nodes):
                element = moved[index - 1]
                self._elem_at[node] = element
                self._node_of[element] = node
        if charged_swaps:
            self.ledger.charge_swaps(charged_swaps)

    def reset_placement(self, placement: Sequence[ElementId]) -> None:
        """Replace the whole element placement (used by offline/static algorithms).

        No cost is charged: static algorithms such as Static-Opt arrange their
        tree before the request sequence starts.
        """
        self._set_placement(placement)

    # -------------------------------------------------------------- validation

    def validate(self) -> None:
        """Verify the element/node bijection; raise :class:`MappingError` if broken."""
        n_nodes = self.tree.n_nodes
        seen = [False] * n_nodes
        for node, element in enumerate(self._elem_at):
            if not 0 <= element < n_nodes:
                raise MappingError(f"node {node} stores invalid element {element}")
            if seen[element]:
                raise MappingError(f"element {element} stored at two nodes")
            seen[element] = True
            if self._node_of[element] != node:
                raise MappingError(
                    f"inverse mapping broken: element {element} at node {node} "
                    f"but node_of says {self._node_of[element]}"
                )

    # ------------------------------------------------------------ presentation

    def levels_view(self) -> List[List[ElementId]]:
        """Return the placement as a list of levels (useful for debugging/tests)."""
        return [
            [self._elem_at[node] for node in level_range]
            for level_range in self.tree.levels()
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TreeNetwork(n={self.tree.n_nodes}, depth={self.tree.depth}, "
            f"rotor={'yes' if self.rotor else 'no'})"
        )
