"""Mutable configuration of a single-source self-adjusting tree network.

A :class:`TreeNetwork` ties together the three ingredients every algorithm in
the paper manipulates:

* the fixed complete binary tree topology (:class:`repro.core.tree.CompleteBinaryTree`),
* the bijective mapping ``nd : E -> T`` between elements and nodes together
  with its inverse ``el``, and
* a :class:`repro.core.cost.CostLedger` recording access and adjustment costs.

The only mutation primitive that touches the mapping is the adjacent
:meth:`TreeNetwork.swap` (and the cycle-application helper used by algorithms
whose cost is charged analytically); the marking discipline of Section 2 of
the paper - "subsequent swaps are allowed only if one of the swapped nodes is
marked; after the swap both involved nodes are marked" - is enforced when
``enforce_marking`` is enabled.
"""

from __future__ import annotations

import random
from array import array
from typing import Dict, List, Optional, Sequence, Union

from repro.core import backend as _backend
from repro.core.cost import CostLedger
from repro.core.rotor import RotorState
from repro.core.tree import CompleteBinaryTree
from repro.exceptions import MappingError, SwapError
from repro.types import ElementId, Level, NodeId

__all__ = ["TreeNetwork", "identity_placement", "random_placement"]


def identity_placement(n_nodes: int) -> List[ElementId]:
    """Return the placement mapping node ``i`` to element ``i`` (BFS order)."""
    return list(range(n_nodes))


def random_placement(n_nodes: int, rng: Union[random.Random, int]) -> List[ElementId]:
    """Return a uniformly random placement of elements onto nodes.

    The paper's experiments always construct the initial tree "by placing the
    nodes uniformly at random"; this helper produces such a placement.

    Parameters
    ----------
    n_nodes:
        Number of nodes (and elements).
    rng:
        A :class:`random.Random` instance or an integer seed.  The argument is
        mandatory: library code must state its randomness source explicitly
        instead of silently drawing from the global ``random`` module, so that
        every placement in an experiment is attributable to a seed.
    """
    if isinstance(rng, int) and not isinstance(rng, bool):
        rng = random.Random(rng)
    if not isinstance(rng, random.Random):
        raise TypeError(
            "random_placement requires an explicit random.Random instance or "
            f"integer seed, got {rng!r}"
        )
    placement = list(range(n_nodes))
    rng.shuffle(placement)
    return placement


class TreeNetwork:
    """Tree topology plus element placement, rotor pointers and cost ledger.

    Parameters
    ----------
    tree:
        The complete binary tree topology.
    placement:
        Optional initial placement: ``placement[node]`` is the element stored
        at ``node``.  Defaults to the identity placement.
    with_rotor:
        When ``True`` a :class:`RotorState` (all pointers to the left child,
        matching the paper's initial state) is attached.
    ledger:
        Optional cost ledger to use; a fresh one is created by default.
    enforce_marking:
        When ``True``, :meth:`swap` enforces the marking discipline: a swap is
        legal only if at least one endpoint is marked, and the access path of
        the current request is marked automatically by :meth:`access`.  When
        ``False`` (the default, used by all large-scale runs), no marking
        bookkeeping is performed at all: :meth:`access` then costs one epoch
        increment instead of stamping the whole root path.
    rotor:
        Optional pre-built :class:`RotorState` to attach (it must live on the
        same tree).  Takes precedence over ``with_rotor``; used by
        :meth:`copy` so rotor pointers travel through the constructor instead
        of being bolted on afterwards.
    backend:
        Serve-backend selection (see :mod:`repro.core.backend`).  With the
        ``"python"`` backend the placement arrays are plain lists; with the
        ``"array"`` backend they are typed arrays (``array('i')``) plus a
        zero-copy NumPy view (when NumPy is importable) that the vectorised
        batch serve loops read.  ``None`` defaults to ``"python"``: a bare
        network has no vectorised consumer, and typed-array scalar indexing
        is slightly slower than lists.  Callers that will serve vectorised
        batches opt in with ``"array"`` or ``"auto"`` (which picks
        ``"array"`` when NumPy is available) —
        :meth:`repro.algorithms.base.OnlineTreeAlgorithm.for_tree` does this
        per algorithm.  Both backends behave identically through every
        public method; the scalar fast paths index either storage unchanged.

    Notes
    -----
    Marking is implemented as an epoch-stamped integer array rather than a
    per-request set: every request bumps a single epoch counter, and a node is
    marked iff its stamp equals the current epoch.  Clearing all marks at the
    end of a request is therefore O(1) (one counter bump) instead of O(depth)
    set destruction, and the serve hot path allocates nothing.
    """

    __slots__ = (
        "tree",
        "rotor",
        "ledger",
        "enforce_marking",
        "backend",
        "_elem_at",
        "_node_of",
        "_node_of_np",
        "_mark_epoch",
        "_epoch",
    )

    def __init__(
        self,
        tree: CompleteBinaryTree,
        placement: Optional[Sequence[ElementId]] = None,
        with_rotor: bool = False,
        ledger: Optional[CostLedger] = None,
        enforce_marking: bool = False,
        rotor: Optional[RotorState] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.tree = tree
        # None means "no preference" and falls back to the canonical python
        # backend; the capability-style auto ("array" when NumPy importable)
        # must be requested explicitly because a bare network cannot know
        # whether anything will serve it vectorised.
        self.backend = (
            _backend.BACKEND_PYTHON
            if backend is None
            else _backend.resolve_backend(backend)
        )
        if placement is None:
            placement = identity_placement(tree.n_nodes)
        self._set_placement(placement)
        if rotor is not None:
            if rotor.tree != tree:
                raise MappingError(
                    "rotor state belongs to a different tree than the network"
                )
            self.rotor: Optional[RotorState] = rotor
        else:
            self.rotor = RotorState(tree) if with_rotor else None
        self.ledger = ledger if ledger is not None else CostLedger()
        self.enforce_marking = enforce_marking
        # Epoch 0 is reserved for "never marked"; the counter starts at 1 so
        # the freshly zeroed stamp array reads as fully unmarked.
        self._mark_epoch: List[int] = [0] * tree.n_nodes
        self._epoch = 1

    # ------------------------------------------------------------ construction

    @classmethod
    def with_random_placement(
        cls,
        tree: CompleteBinaryTree,
        seed: Optional[int] = None,
        with_rotor: bool = False,
        enforce_marking: bool = False,
        keep_records: bool = True,
        backend: Optional[str] = None,
    ) -> "TreeNetwork":
        """Build a network whose initial placement is uniformly random.

        This mirrors the experimental setup of the paper, where "the initial
        trees were always constructed by placing the nodes uniformly at
        random".
        """
        rng = random.Random(seed)
        return cls(
            tree,
            placement=random_placement(tree.n_nodes, rng),
            with_rotor=with_rotor,
            ledger=CostLedger(keep_records=keep_records),
            enforce_marking=enforce_marking,
            backend=backend,
        )

    def _set_placement(self, placement: Sequence[ElementId]) -> None:
        n_nodes = self.tree.n_nodes
        if len(placement) != n_nodes:
            raise MappingError(
                f"placement has {len(placement)} entries, expected {n_nodes}"
            )
        elements = [int(element) for element in placement]
        if sorted(elements) != list(range(n_nodes)):
            raise MappingError(
                "placement is not a bijection onto elements 0..n-1"
            )
        inverse = [0] * n_nodes
        for node, element in enumerate(elements):
            inverse[element] = node
        if self.backend == _backend.BACKEND_ARRAY:
            # Typed-array storage: scalar serve loops index it exactly like a
            # list, while the NumPy view over the inverse mapping shares the
            # same buffer so the vectorised batch loops see every swap
            # without any copying.
            self._elem_at = array("i", elements)
            self._node_of = array("i", inverse)
            if _backend.HAS_NUMPY:
                np = _backend.np
                self._node_of_np = np.frombuffer(self._node_of, dtype=np.intc)
            else:
                self._node_of_np = None
        else:
            self._elem_at = elements
            self._node_of = inverse
            self._node_of_np = None

    def copy(self) -> "TreeNetwork":
        """Return an independent deep copy of this network.

        The copy shares the immutable tree object but owns independent copies
        of the placement, the rotor pointers (passed through the constructor),
        the marking state and the cost ledger — including its accumulated
        totals and records, so a copy taken mid-experiment continues
        accounting from the same figures as the original.
        """
        clone = TreeNetwork(
            self.tree,
            placement=self._elem_at,
            rotor=self.rotor.copy() if self.rotor is not None else None,
            ledger=self.ledger.copy(),
            enforce_marking=self.enforce_marking,
            backend=self.backend,
        )
        clone._mark_epoch = list(self._mark_epoch)
        clone._epoch = self._epoch
        return clone

    # -------------------------------------------------------------- the mapping

    @property
    def n_elements(self) -> int:
        """Number of elements (equals the number of nodes)."""
        return self.tree.n_nodes

    def element_at(self, node: NodeId) -> ElementId:
        """Return ``el(node)``: the element currently stored at ``node``."""
        self.tree.check_node(node)
        return self._elem_at[node]

    def node_of(self, element: ElementId) -> NodeId:
        """Return ``nd(element)``: the node currently storing ``element``."""
        self._check_element(element)
        return self._node_of[element]

    def level_of(self, element: ElementId) -> Level:
        """Return the current level of ``element`` in the tree."""
        return self.tree.level(self.node_of(element))

    def _check_element(self, element: ElementId) -> ElementId:
        if not 0 <= element < self.tree.n_nodes:
            raise MappingError(
                f"element {element} outside universe of size {self.tree.n_nodes}"
            )
        return element

    def placement(self) -> List[ElementId]:
        """Return a copy of the node-to-element placement array."""
        return list(self._elem_at)

    def element_positions(self) -> Dict[ElementId, NodeId]:
        """Return a dict mapping every element to its current node."""
        return {element: node for node, element in enumerate(self._elem_at)}

    def elements_at_level(self, level: Level) -> List[ElementId]:
        """Return the elements currently stored at ``level``, left to right."""
        return [self._elem_at[node] for node in self.tree.nodes_at_level(level)]

    # ---------------------------------------------------------------- requests

    def access(self, element: ElementId) -> Level:
        """Access ``element``: open cost accounting and mark its root path.

        Returns the element's level at access time.  The access cost
        ``level + 1`` is recorded in the ledger.  When ``enforce_marking`` is
        enabled, the root-to-element path is marked (epoch-stamped) so that
        subsequent swaps obeying the marking discipline are legal; without
        enforcement no marking work is done at all — the dominant cost of the
        old implementation was building a fresh ``set(path_to_root)`` per
        request even though nothing ever consulted it.
        """
        node_of = self._node_of
        if not 0 <= element < len(node_of):
            raise MappingError(
                f"element {element} outside universe of size {len(node_of)}"
            )
        node = node_of[element]
        level = (node + 1).bit_length() - 1
        self.ledger.open_request(element, level)
        self._epoch += 1
        if self.enforce_marking:
            epoch = self._epoch
            stamp = self._mark_epoch
            stamp[node] = epoch
            while node:
                node = (node - 1) >> 1
                stamp[node] = epoch
        return level

    def finish_request(self):
        """Close cost accounting for the current request and clear markings."""
        record = self.ledger.close_request()
        self._epoch += 1  # lazily invalidates every mark of this request
        return record

    def finish_request_fast(self) -> None:
        """Close the current request without materialising a cost record.

        Fast-path twin of :meth:`finish_request` for aggregate-only serve
        loops (``keep_records=False``): ledger totals are updated identically
        but no :class:`repro.core.cost.RequestCost` is built or returned.
        """
        self.ledger.close_request_fast()
        self._epoch += 1

    def is_marked(self, node: NodeId) -> bool:
        """Return ``True`` if ``node`` is marked in the current request.

        Marking state is only materialised when ``enforce_marking`` is enabled
        (or :meth:`mark` is called explicitly); on non-enforcing networks the
        serve fast path skips it entirely and this always returns ``False``.
        """
        return self._mark_epoch[node] == self._epoch

    def mark(self, node: NodeId) -> None:
        """Explicitly mark ``node`` (used by algorithms with bespoke swap plans)."""
        self._mark_epoch[self.tree.check_node(node)] = self._epoch

    # ------------------------------------------------------------------- swaps

    def swap(self, node_a: NodeId, node_b: NodeId, charge: bool = True) -> None:
        """Swap the elements stored at two *adjacent* nodes.

        Parameters
        ----------
        node_a, node_b:
            The two nodes; one must be the parent of the other.
        charge:
            Whether to charge one unit of adjustment cost to the open request
            (algorithms that account cost analytically can pass ``False``).
        """
        self.tree.check_node(node_a)
        self.tree.check_node(node_b)
        parent_of_b = node_b != 0 and (node_b - 1) >> 1 == node_a
        parent_of_a = node_a != 0 and (node_a - 1) >> 1 == node_b
        if not (parent_of_a or parent_of_b):
            raise SwapError(f"nodes {node_a} and {node_b} are not adjacent")
        if self.enforce_marking:
            epoch = self._epoch
            stamp = self._mark_epoch
            if stamp[node_a] != epoch and stamp[node_b] != epoch:
                raise SwapError(
                    f"swap of unmarked nodes {node_a}, {node_b} violates the "
                    "marking discipline"
                )
            stamp[node_a] = epoch
            stamp[node_b] = epoch
        elem_a, elem_b = self._elem_at[node_a], self._elem_at[node_b]
        self._elem_at[node_a], self._elem_at[node_b] = elem_b, elem_a
        self._node_of[elem_a], self._node_of[elem_b] = node_b, node_a
        if charge:
            self.ledger.charge_swaps(1)

    def swap_with_parent(self, node: NodeId, charge: bool = True) -> NodeId:
        """Swap the element at ``node`` with the one at its parent; return the parent."""
        parent = self.tree.parent(node)
        self.swap(node, parent, charge=charge)
        return parent

    def apply_cycle(
        self,
        cycle_nodes: Sequence[NodeId],
        charged_swaps: int,
    ) -> None:
        """Apply a cyclic shift of elements along ``cycle_nodes`` with analytic cost.

        The element at ``cycle_nodes[i]`` moves to ``cycle_nodes[i + 1]`` (and
        the last one wraps around to the first node).  The caller supplies the
        number of unit swaps ``charged_swaps`` that an adjacent-swap
        realisation of this permutation would use; that amount is charged to
        the open request.  This is used by algorithms (Max-Push, and the
        fast-path of the push-down operation) whose cost is accounted by a
        closed-form formula rather than by materialising every swap.
        """
        if charged_swaps < 0:
            raise SwapError(f"charged_swaps must be non-negative, got {charged_swaps}")
        nodes = [self.tree.check_node(node) for node in cycle_nodes]
        if len(set(nodes)) != len(nodes):
            raise SwapError(f"cycle contains repeated nodes: {nodes}")
        if len(nodes) >= 2:
            moved = [self._elem_at[node] for node in nodes]
            for index, node in enumerate(nodes):
                element = moved[index - 1]
                self._elem_at[node] = element
                self._node_of[element] = node
        if charged_swaps:
            self.ledger.charge_swaps(charged_swaps)

    def apply_cycle_trusted(self, cycle_nodes: Sequence[NodeId]) -> None:
        """Apply a cyclic element shift without validation or cost accounting.

        Trusted fast-path twin of :meth:`apply_cycle`: the caller guarantees
        that ``cycle_nodes`` are valid, pairwise-distinct nodes of this tree
        and accounts the adjustment cost itself (via
        :meth:`repro.core.cost.CostLedger.charge_swaps` or
        :meth:`repro.core.cost.CostLedger.record_request`).  The element
        permutation is identical to :meth:`apply_cycle`.
        """
        elem_at = self._elem_at
        node_of = self._node_of
        carried = elem_at[cycle_nodes[-1]]
        for node in cycle_nodes:
            displaced = elem_at[node]
            elem_at[node] = carried
            node_of[carried] = node
            carried = displaced

    def exchange_trusted(self, node_a: NodeId, node_b: NodeId) -> None:
        """Exchange the elements of two valid nodes, no validation or accounting.

        Trusted fast-path primitive for algorithms (Move-Half) whose net
        effect is a transposition realised by adjacent swaps whose count is
        known in closed form.
        """
        elem_at = self._elem_at
        node_of = self._node_of
        elem_a, elem_b = elem_at[node_a], elem_at[node_b]
        elem_at[node_a], elem_at[node_b] = elem_b, elem_a
        node_of[elem_a], node_of[elem_b] = node_b, node_a

    def reset_placement(self, placement: Sequence[ElementId]) -> None:
        """Replace the whole element placement (used by offline/static algorithms).

        No cost is charged: static algorithms such as Static-Opt arrange their
        tree before the request sequence starts.
        """
        self._set_placement(placement)

    # -------------------------------------------------------------- validation

    def validate(self) -> None:
        """Verify the element/node bijection; raise :class:`MappingError` if broken."""
        n_nodes = self.tree.n_nodes
        seen = [False] * n_nodes
        for node, element in enumerate(self._elem_at):
            if not 0 <= element < n_nodes:
                raise MappingError(f"node {node} stores invalid element {element}")
            if seen[element]:
                raise MappingError(f"element {element} stored at two nodes")
            seen[element] = True
            if self._node_of[element] != node:
                raise MappingError(
                    f"inverse mapping broken: element {element} at node {node} "
                    f"but node_of says {self._node_of[element]}"
                )

    # ------------------------------------------------------------ presentation

    def levels_view(self) -> List[List[ElementId]]:
        """Return the placement as a list of levels (useful for debugging/tests)."""
        return [
            [self._elem_at[node] for node in level_range]
            for level_range in self.tree.levels()
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TreeNetwork(n={self.tree.n_nodes}, depth={self.tree.depth}, "
            f"rotor={'yes' if self.rotor else 'no'})"
        )
