"""Move-To-Front-on-a-tree: the natural but non-competitive baseline.

The immediate generalisation of the classic Move-To-Front list-update rule:
upon a request, swap the accessed element along its access path all the way to
the root, pushing every element on that path one level down.  Section 1.1 of
the paper observes that this strategy has competitive ratio
``Omega(log n / log log n)``: a round-robin sequence over one root-to-leaf path
keeps costing ``Theta(log n)`` per request while the offline optimum packs
those elements into the first ``Theta(log log n)`` levels.

The algorithm is included as an instructive baseline and as the subject of the
lower-bound experiment in :mod:`repro.workloads.adversarial`.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import OnlineTreeAlgorithm
from repro.types import ElementId, Level

__all__ = ["MoveToFrontTree"]


class MoveToFrontTree(OnlineTreeAlgorithm):
    """Promote the accessed element to the root along its own access path."""

    name = "move-to-front"
    is_deterministic = True
    is_self_adjusting = True
    # The accessed element always ends at the root and a root access is a
    # complete no-op, so the vectorised root-hit batch serve applies.
    batch_root_promote = True

    def _adjust(self, element: ElementId, level: Level) -> None:
        node = self.network.node_of(element)
        while node != self.network.tree.root:
            node = self.network.swap_with_parent(node)

    def _adjust_fast(self, element: ElementId, level: Level) -> Optional[int]:
        if level == 0:
            return 0
        network = self.network
        elem_at = network._elem_at
        node_of = network._node_of
        node = node_of[element]
        # Bubble the accessed element to the root: each ancestor's element
        # moves one level down into the vacated node, one swap per edge.
        while node:
            parent = (node - 1) >> 1
            displaced = elem_at[parent]
            elem_at[node] = displaced
            node_of[displaced] = node
            node = parent
        elem_at[0] = element
        node_of[element] = 0
        return level
