"""Static-Oblivious: the demand-oblivious tree that never adjusts.

The baseline of the paper's empirical section: the initial tree (elements
placed uniformly at random) is kept for the whole sequence and every request is
served at its static access cost.  It incurs zero adjustment cost and serves as
the reference point for the "cost difference" plots (Q1 and Q4).
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import OnlineTreeAlgorithm
from repro.types import ElementId, Level

__all__ = ["StaticOblivious"]


class StaticOblivious(OnlineTreeAlgorithm):
    """Keep the initial (random) placement forever; never swap."""

    name = "static-oblivious"
    is_deterministic = True
    is_self_adjusting = False

    def _adjust(self, element: ElementId, level: Level) -> None:
        # Demand-oblivious: no reconfiguration, ever.
        return

    def _adjust_fast(self, element: ElementId, level: Level) -> Optional[int]:
        return 0
