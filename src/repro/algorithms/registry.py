"""Algorithm registry and factory.

Experiments refer to algorithms by their registry name (the short labels used
in the paper's figures): ``rotor-push``, ``random-push``, ``move-half``,
``max-push``, ``static-oblivious``, ``static-opt`` and the extra baseline
``move-to-front``.  This module maps those names to classes and offers a
one-call factory that builds an algorithm instance on a fresh tree with the
paper's random initial placement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.algorithms.base import OnlineTreeAlgorithm
from repro.algorithms.max_push import MaxPush
from repro.algorithms.move_half import MoveHalf
from repro.algorithms.move_to_front import MoveToFrontTree
from repro.algorithms.random_push import RandomPush
from repro.algorithms.rotor_push import RotorPush
from repro.algorithms.static_oblivious import StaticOblivious
from repro.algorithms.static_opt import StaticOpt
from repro.exceptions import AlgorithmError

__all__ = [
    "ALGORITHMS",
    "PAPER_ALGORITHMS",
    "SELF_ADJUSTING_ALGORITHMS",
    "available_algorithms",
    "get_algorithm_class",
    "make_algorithm",
]

#: All registered algorithm classes, keyed by registry name.
ALGORITHMS: Dict[str, Type[OnlineTreeAlgorithm]] = {
    RotorPush.name: RotorPush,
    RandomPush.name: RandomPush,
    MoveHalf.name: MoveHalf,
    MaxPush.name: MaxPush,
    StaticOblivious.name: StaticOblivious,
    StaticOpt.name: StaticOpt,
    MoveToFrontTree.name: MoveToFrontTree,
}

#: The six algorithms compared in the paper's empirical section (Section 6).
PAPER_ALGORITHMS: List[str] = [
    RotorPush.name,
    RandomPush.name,
    MoveHalf.name,
    MaxPush.name,
    StaticOblivious.name,
    StaticOpt.name,
]

#: The four self-adjusting algorithms (used by the Q1 cost-difference plots).
SELF_ADJUSTING_ALGORITHMS: List[str] = [
    RotorPush.name,
    RandomPush.name,
    MoveHalf.name,
    MaxPush.name,
]


def available_algorithms() -> List[str]:
    """Return all registry names, in a stable order."""
    return list(ALGORITHMS)


def get_algorithm_class(name: str) -> Type[OnlineTreeAlgorithm]:
    """Return the algorithm class registered under ``name``."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; available: {', '.join(ALGORITHMS)}"
        ) from None


def make_algorithm(
    name: str,
    n_nodes: Optional[int] = None,
    depth: Optional[int] = None,
    placement_seed: Optional[int] = None,
    seed: Optional[int] = None,
    keep_records: bool = True,
    enforce_marking: bool = False,
    backend: Optional[str] = None,
    **kwargs,
) -> OnlineTreeAlgorithm:
    """Build an algorithm instance on a fresh randomly-placed tree.

    Parameters
    ----------
    name:
        Registry name (see :data:`ALGORITHMS`).
    n_nodes, depth:
        Tree size; give exactly one of the two.
    placement_seed:
        Seed of the uniformly random initial placement.
    seed:
        Seed of the algorithm's own randomness (only used by Random-Push; it is
        ignored by deterministic algorithms so callers can pass it uniformly).
    keep_records:
        Whether per-request cost records are retained.
    enforce_marking:
        Whether the swap marking discipline is enforced at runtime.
    backend:
        Serve backend: ``"array"``, ``"python"`` or ``None``/``"auto"``
        (see :mod:`repro.core.backend`).  Results are identical either way.
    kwargs:
        Forwarded to the algorithm constructor (e.g. ``exact_swaps``).
    """
    cls = get_algorithm_class(name)
    if seed is not None and cls is RandomPush:
        kwargs = dict(kwargs, seed=seed)
    return cls.for_tree(
        n_nodes=n_nodes,
        depth=depth,
        placement_seed=placement_seed,
        keep_records=keep_records,
        enforce_marking=enforce_marking,
        backend=backend,
        **kwargs,
    )
