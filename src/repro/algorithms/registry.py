"""Algorithm registry, declarative algorithm specs and the factory.

Experiments refer to algorithms by their registry name (the short labels used
in the paper's figures): ``rotor-push``, ``random-push``, ``move-half``,
``max-push``, ``static-oblivious``, ``static-opt`` and the extra baseline
``move-to-front``.  This module maps those names to classes and offers a
one-call factory that builds an algorithm instance on a fresh tree with the
paper's random initial placement.

:class:`AlgorithmSpec` is the algorithm half of the declarative plan layer
(:mod:`repro.plans`): an immutable, hashable ``{name, params}`` pair that is
validated against this registry at construction, mirrors
:class:`repro.workloads.spec.WorkloadSpec` on the workload side, and is what
:class:`repro.sim.runner.TrialPayload` ships across process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type, Union

from repro.algorithms.base import OnlineTreeAlgorithm
from repro.algorithms.max_push import MaxPush
from repro.algorithms.move_half import MoveHalf
from repro.algorithms.move_to_front import MoveToFrontTree
from repro.algorithms.random_push import RandomPush
from repro.algorithms.rotor_push import RotorPush
from repro.algorithms.static_oblivious import StaticOblivious
from repro.algorithms.static_opt import StaticOpt
from repro.exceptions import AlgorithmError

__all__ = [
    "ALGORITHMS",
    "PAPER_ALGORITHMS",
    "SELF_ADJUSTING_ALGORITHMS",
    "AlgorithmSpec",
    "available_algorithms",
    "get_algorithm_class",
    "make_algorithm",
]

#: All registered algorithm classes, keyed by registry name.
ALGORITHMS: Dict[str, Type[OnlineTreeAlgorithm]] = {
    RotorPush.name: RotorPush,
    RandomPush.name: RandomPush,
    MoveHalf.name: MoveHalf,
    MaxPush.name: MaxPush,
    StaticOblivious.name: StaticOblivious,
    StaticOpt.name: StaticOpt,
    MoveToFrontTree.name: MoveToFrontTree,
}

#: The six algorithms compared in the paper's empirical section (Section 6).
PAPER_ALGORITHMS: List[str] = [
    RotorPush.name,
    RandomPush.name,
    MoveHalf.name,
    MaxPush.name,
    StaticOblivious.name,
    StaticOpt.name,
]

#: The four self-adjusting algorithms (used by the Q1 cost-difference plots).
SELF_ADJUSTING_ALGORITHMS: List[str] = [
    RotorPush.name,
    RandomPush.name,
    MoveHalf.name,
    MaxPush.name,
]


def available_algorithms() -> List[str]:
    """Return all registry names, in a stable order."""
    return list(ALGORITHMS)


def get_algorithm_class(name: str) -> Type[OnlineTreeAlgorithm]:
    """Return the algorithm class registered under ``name``."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; available: {', '.join(ALGORITHMS)}"
        ) from None


def _freeze(value: object) -> object:
    """Recursively convert ``value`` into an immutable, hashable equivalent.

    A verbatim copy of the canonical ``_freeze`` in
    :mod:`repro.workloads.spec` (lists/tuples become tuples, dictionaries
    become sorted ``(key, value)`` tuples, scalars pass through), kept local
    because the algorithms package must not import workloads —
    :mod:`repro.workloads.adversarial` imports algorithm modules, so the
    reverse import would create a package cycle.  Any change must land in
    both places; the plan round-trip tests pin the shared behaviour.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    return value


@dataclass(frozen=True)
class AlgorithmSpec:
    """Immutable description of an algorithm choice: ``{name, params}``.

    ``name`` must be a registered algorithm name — unknown names raise
    :class:`~repro.exceptions.AlgorithmError` *at construction*, naming the
    bad key and listing every registered algorithm.  ``params`` holds extra
    constructor keyword arguments (e.g. ``exact_swaps``) as a sorted tuple of
    ``(name, value)`` pairs so that equal specs compare and hash equal.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        get_algorithm_class(self.name)  # validates eagerly, error lists names
        frozen = _freeze(dict(self.params))
        if frozen != self.params:
            object.__setattr__(self, "params", frozen)

    @classmethod
    def create(cls, name: str, **params: object) -> "AlgorithmSpec":
        """Build a spec from keyword parameters, freezing mutable values."""
        return cls(name=name, params=_freeze(params))

    @classmethod
    def coerce(cls, value: Union[str, "AlgorithmSpec"]) -> "AlgorithmSpec":
        """Return ``value`` as a spec (bare registry names are wrapped)."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(name=value)
        raise AlgorithmError(
            f"expected an algorithm name or AlgorithmSpec, got {value!r}"
        )

    def param_dict(self) -> Dict[str, object]:
        """Return the parameters as a plain dictionary."""
        return dict(self.params)

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly representation."""

        def thaw(value: object) -> object:
            if isinstance(value, tuple):
                return [thaw(item) for item in value]
            return value

        return {"name": self.name, "params": {k: thaw(v) for k, v in self.params}}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AlgorithmSpec":
        """Rebuild a spec from :meth:`to_dict` output (or equivalent JSON)."""
        if not isinstance(data, dict) or not isinstance(data.get("name"), str):
            raise AlgorithmError(f"not an algorithm-spec document: {data!r}")
        params = data.get("params") or {}
        if not isinstance(params, dict):
            raise AlgorithmError(
                f"algorithm spec params must be an object, got {params!r}"
            )
        return cls.create(data["name"], **params)

    def build(self, **factory_kwargs) -> OnlineTreeAlgorithm:
        """Construct the described algorithm (shorthand for :func:`make_algorithm`)."""
        return make_algorithm(self, **factory_kwargs)


def make_algorithm(
    name: Union[str, AlgorithmSpec],
    n_nodes: Optional[int] = None,
    depth: Optional[int] = None,
    placement_seed: Optional[int] = None,
    seed: Optional[int] = None,
    keep_records: bool = True,
    enforce_marking: bool = False,
    backend: Optional[str] = None,
    **kwargs,
) -> OnlineTreeAlgorithm:
    """Build an algorithm instance on a fresh randomly-placed tree.

    Parameters
    ----------
    name:
        Registry name (see :data:`ALGORITHMS`) or an :class:`AlgorithmSpec`,
        whose params become constructor keyword arguments (explicit ``kwargs``
        win over spec params on a clash).
    n_nodes, depth:
        Tree size; give exactly one of the two.
    placement_seed:
        Seed of the uniformly random initial placement.
    seed:
        Seed of the algorithm's own randomness (only used by Random-Push; it is
        ignored by deterministic algorithms so callers can pass it uniformly).
    keep_records:
        Whether per-request cost records are retained.
    enforce_marking:
        Whether the swap marking discipline is enforced at runtime.
    backend:
        Serve backend: ``"array"``, ``"python"`` or ``None``/``"auto"``
        (see :mod:`repro.core.backend`).  Results are identical either way.
    kwargs:
        Forwarded to the algorithm constructor (e.g. ``exact_swaps``).
    """
    if isinstance(name, AlgorithmSpec):
        kwargs = {**name.param_dict(), **kwargs}
        name = name.name
    cls = get_algorithm_class(name)
    if seed is not None and cls is RandomPush:
        kwargs = dict(kwargs, seed=seed)
    return cls.for_tree(
        n_nodes=n_nodes,
        depth=depth,
        placement_seed=placement_seed,
        keep_records=keep_records,
        enforce_marking=enforce_marking,
        backend=backend,
        **kwargs,
    )
