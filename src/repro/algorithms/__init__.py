"""Online algorithms for single-source self-adjusting tree networks.

The package contains every algorithm compared in the paper plus the
Move-To-Front baseline used to illustrate the lower bound of Section 1.1:

================  =====================================================
Registry name     Class
================  =====================================================
rotor-push        :class:`repro.algorithms.rotor_push.RotorPush`
random-push       :class:`repro.algorithms.random_push.RandomPush`
move-half         :class:`repro.algorithms.move_half.MoveHalf`
max-push          :class:`repro.algorithms.max_push.MaxPush`
static-oblivious  :class:`repro.algorithms.static_oblivious.StaticOblivious`
static-opt        :class:`repro.algorithms.static_opt.StaticOpt`
move-to-front     :class:`repro.algorithms.move_to_front.MoveToFrontTree`
================  =====================================================
"""

from repro.algorithms.base import OnlineTreeAlgorithm, RunResult
from repro.algorithms.lru_index import LevelLRUIndex
from repro.algorithms.max_push import MaxPush
from repro.algorithms.move_half import MoveHalf
from repro.algorithms.move_to_front import MoveToFrontTree
from repro.algorithms.random_push import RandomPush
from repro.algorithms.registry import (
    ALGORITHMS,
    PAPER_ALGORITHMS,
    SELF_ADJUSTING_ALGORITHMS,
    AlgorithmSpec,
    available_algorithms,
    get_algorithm_class,
    make_algorithm,
)
from repro.algorithms.rotor_push import RotorPush
from repro.algorithms.static_oblivious import StaticOblivious
from repro.algorithms.static_opt import StaticOpt, frequency_placement

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "LevelLRUIndex",
    "MaxPush",
    "MoveHalf",
    "MoveToFrontTree",
    "OnlineTreeAlgorithm",
    "PAPER_ALGORITHMS",
    "RandomPush",
    "RotorPush",
    "RunResult",
    "SELF_ADJUSTING_ALGORITHMS",
    "StaticOblivious",
    "StaticOpt",
    "available_algorithms",
    "frequency_placement",
    "get_algorithm_class",
    "make_algorithm",
]
