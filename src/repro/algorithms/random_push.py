"""Random-Push: the randomised push-down algorithm of Avin et al. (LATIN 2020).

Upon a request to an element ``e*`` at level ``d*``, Random-Push chooses a node
``v`` uniformly at random among all level-``d*`` nodes (including ``nd(e*)``)
and executes the augmented push-down operation ``PD(nd(e*), v)``.  The original
analysis showed a competitive ratio of 60 using the working-set property;
Theorem 11 of the rotor-walk paper improves this to 16 with a much simpler
potential argument.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.algorithms.base import OnlineTreeAlgorithm
from repro.core.pushdown import apply_pushdown_cycle, apply_pushdown_swaps
from repro.core.state import TreeNetwork
from repro.types import ElementId, Level

__all__ = ["RandomPush"]


class RandomPush(OnlineTreeAlgorithm):
    """Randomised push-down algorithm (Random-Push / ``Rand``).

    Parameters
    ----------
    network:
        Tree network to operate on.
    seed:
        Seed of the algorithm's private random generator (the left/right
        choices of the implicit random walk).  Runs with equal seeds and equal
        inputs are identical, which the experiments rely on.
    exact_swaps:
        Same meaning as for :class:`repro.algorithms.rotor_push.RotorPush`.
    """

    name = "random-push"
    is_deterministic = False
    is_self_adjusting = True
    # PD always moves the requested element to the root, and a level-0
    # request returns before the target draw, so the vectorised root-hit
    # batch serve preserves the RNG stream exactly.
    batch_root_promote = True

    def __init__(
        self,
        network: TreeNetwork,
        seed: Optional[int] = None,
        exact_swaps: bool = False,
    ) -> None:
        super().__init__(network)
        self._rng = random.Random(seed)
        self.exact_swaps = exact_swaps

    def _adjust(self, element: ElementId, level: Level) -> None:
        if level == 0:
            return
        tree = self.network.tree
        offset = self._rng.randrange(tree.level_size(level))
        target = tree.node_at(level, offset)
        source = self.network.node_of(element)
        if self.exact_swaps:
            apply_pushdown_swaps(self.network, source, target)
        else:
            apply_pushdown_cycle(self.network, source, target)

    def _adjust_fast(self, element: ElementId, level: Level) -> Optional[int]:
        if level == 0:
            return 0
        network = self.network
        elem_at = network._elem_at
        node_of = network._node_of
        # Same RNG consumption as the reference path (one randrange over the
        # level size), so fast and reference runs draw identical targets.
        offset = self._rng.randrange(1 << level)
        source = node_of[element]
        # Fused push-down: descend from the root to the target (the bits of
        # ``offset``, most significant first, are the left/right directions),
        # shifting every path element one level down while the requested
        # element enters at the root.  No path lists are materialised.
        carried = elem_at[0]
        elem_at[0] = element
        node_of[element] = 0
        node = 0
        shift = level - 1
        for _ in range(level):
            node = 2 * node + 1 + ((offset >> shift) & 1)
            shift -= 1
            displaced = elem_at[node]
            elem_at[node] = carried
            node_of[carried] = node
            carried = displaced
        if node == source:
            return level
        elem_at[source] = carried
        node_of[carried] = source
        return 3 * level - 1
