"""Move-Half: the deterministic halving algorithm of Avin et al. (LATIN 2020).

Algorithm 1 of the paper: upon accessing element ``e_i`` stored at node ``u``
on level ``d``, find the element ``e_j`` with the *highest rank* (least
recently used) at depth ``floor(d / 2)``, stored at node ``v``, and exchange
the two elements by swapping them along the tree branches (``e_i`` travels to
``v`` and ``e_j`` travels back to ``u``).  All other elements keep their
positions; the adjustment cost is ``2 * dist(u, v) - 1`` adjacent swaps.

Move-Half is 64-competitive (shown in the LATIN 2020 paper); it satisfies the
working-set bound but not the per-access working-set property.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import OnlineTreeAlgorithm
from repro.algorithms.lru_index import LevelLRUIndex
from repro.core.pushdown import relocate_along_path
from repro.core.state import TreeNetwork
from repro.core.tree import node_distance
from repro.types import ElementId, Level

__all__ = ["MoveHalf"]


class MoveHalf(OnlineTreeAlgorithm):
    """Deterministic algorithm that promotes the accessed element to half its depth."""

    name = "move-half"
    is_deterministic = True
    is_self_adjusting = True

    def __init__(self, network: TreeNetwork, exact_swaps: bool = True) -> None:
        super().__init__(network)
        self._lru = LevelLRUIndex(network)
        self.exact_swaps = exact_swaps

    def _adjust(self, element: ElementId, level: Level) -> None:
        self._lru.record_access(element)
        if level == 0:
            return
        target_level = level // 2
        partner = self._lru.least_recently_used(target_level, exclude=element)
        source = self.network.node_of(element)
        target = self.network.node_of(partner)
        path = self.network.tree.path_between(source, target)
        if self.exact_swaps:
            # Carry the accessed element to the partner's node, then carry the
            # partner (now one hop short of its original node) back; the net
            # effect is an exchange of the two elements at 2*dist - 1 swaps.
            relocate_along_path(self.network, path)
            relocate_along_path(self.network, list(reversed(path[:-1])))
        else:
            distance = len(path) - 1
            self.network.apply_cycle([source, target], charged_swaps=2 * distance - 1)
        self._lru.move(element, target_level)
        self._lru.move(partner, level)

    def _adjust_fast(self, element: ElementId, level: Level) -> Optional[int]:
        lru = self._lru
        lru.record_access(element)
        if level == 0:
            return 0
        target_level = level >> 1
        partner = lru.least_recently_used(target_level, exclude=element)
        network = self.network
        source = network._node_of[element]
        target = network._node_of[partner]
        # Net effect of both realisations is a transposition of the two
        # elements; the adjacent-swap count is 2*dist - 1 in closed form.
        network.exchange_trusted(source, target)
        lru.move(element, target_level)
        lru.move(partner, level)
        return 2 * node_distance(source, target) - 1
