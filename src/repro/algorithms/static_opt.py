"""Static-Opt: the offline statically optimal tree.

The paper's second reference point: a static tree "where elements are placed in
decreasing frequency in a BFS order" computed from the *whole* request sequence
in advance, after which no adjustments are performed.  Among all static
placements this minimises the total access cost (placing more frequent elements
closer to the root can only help), so it lower-bounds every static strategy.

Being offline, it must be prepared with the full sequence before serving
(:meth:`StaticOpt.prepare`); :meth:`OnlineTreeAlgorithm.run` does this
automatically.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.algorithms.base import OnlineTreeAlgorithm
from repro.core import backend as _backend
from repro.core.state import TreeNetwork
from repro.exceptions import AlgorithmError
from repro.types import ElementId, Level, RequestSequence

__all__ = ["StaticOpt", "frequency_placement"]


def frequency_placement(n_nodes: int, sequence: RequestSequence) -> List[ElementId]:
    """Return the placement storing elements by decreasing frequency in BFS order.

    ``placement[node] = element``; ties between equally frequent elements are
    broken by element identifier so the placement is deterministic.
    Elements that never appear in the sequence fill the remaining nodes.

    An ndarray sequence (the array backend's transport format) is counted
    with ``bincount`` and ordered with a stable argsort on negated counts —
    the stable sort reproduces the identifier tie-break exactly, so both
    paths return the same placement for the same requests.
    """
    if _backend.HAS_NUMPY and isinstance(sequence, _backend.np.ndarray):
        np = _backend.np
        if sequence.size:
            low, high = int(sequence.min()), int(sequence.max())
            if low < 0 or high >= n_nodes:
                bad = low if low < 0 else high
                raise AlgorithmError(
                    f"sequence contains element {bad} outside universe of size {n_nodes}"
                )
            counts = np.bincount(sequence, minlength=n_nodes)
        else:
            counts = np.zeros(n_nodes, dtype=np.intp)
        return np.argsort(-counts, kind="stable").tolist()
    counts = Counter(sequence)
    for element in counts:
        if not 0 <= element < n_nodes:
            raise AlgorithmError(
                f"sequence contains element {element} outside universe of size {n_nodes}"
            )
    by_frequency = sorted(range(n_nodes), key=lambda e: (-counts.get(e, 0), e))
    return by_frequency


class StaticOpt(OnlineTreeAlgorithm):
    """Offline frequency-ordered static tree (no adjustments during the run)."""

    name = "static-opt"
    is_deterministic = True
    is_self_adjusting = False
    requires_preparation = True

    def __init__(self, network: TreeNetwork) -> None:
        super().__init__(network)

    def prepare(self, sequence: RequestSequence) -> None:
        """Arrange the tree by decreasing request frequency (BFS order)."""
        placement = frequency_placement(self.network.tree.n_nodes, sequence)
        self.network.reset_placement(placement)
        super().prepare(sequence)

    def _adjust(self, element: ElementId, level: Level) -> None:
        # Static: the frequency-ordered placement is never changed.
        return

    def _adjust_fast(self, element: ElementId, level: Level):
        return 0
