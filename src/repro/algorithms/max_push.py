"""Max-Push (Strict-MRU): keep elements in most-recently-used order.

Algorithm 2 of the paper: upon accessing element ``e`` at depth ``k``, move
``e`` to the root and demote, for every level ``j < k``, the least recently
used element of level ``j`` one level down; the least recently used element of
level ``k`` finally takes the vacated node ``nd(e)``.  The resulting tree is a
*strict MRU tree*: on every root-to-leaf path, elements are ordered by recency
of use.  This gives optimal access costs (the working-set property holds by
construction) but the adjustment cost per request can be quadratic in the
access depth, because each demoted element may have to travel across the tree.

The paper lists its competitive ratio as an open question (Table 1); the
empirical section shows its adjustment cost dominates in every scenario.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.algorithms.base import OnlineTreeAlgorithm
from repro.algorithms.lru_index import LevelLRUIndex
from repro.core import backend as _backend
from repro.core.state import TreeNetwork
from repro.core.tree import node_distance
from repro.types import ElementId, Level, NodeId

__all__ = ["MaxPush"]


class MaxPush(OnlineTreeAlgorithm):
    """Strict-MRU maintenance via per-level demotion of the least recent element."""

    name = "max-push"
    is_deterministic = True
    is_self_adjusting = True

    def __init__(self, network: TreeNetwork) -> None:
        super().__init__(network)
        self._lru = LevelLRUIndex(network)

    def _adjust(self, element: ElementId, level: Level) -> None:
        self._lru.record_access(element)
        if level == 0:
            return
        tree = self.network.tree
        root = tree.root

        # The demotion cascade: the old root element goes to the node of the
        # least-recently-used element of level 1, which goes to the node of the
        # LRU element of level 2, and so on; the LRU element of level `level`
        # finally takes the node vacated by the accessed element.
        victims: List[ElementId] = []
        for depth in range(1, level + 1):
            victims.append(self._lru.least_recently_used(depth, exclude=element))

        source = self.network.node_of(element)
        cycle: List[NodeId] = [root]
        cycle.extend(self.network.node_of(victim) for victim in victims)
        cycle.append(source)

        # Adjustment cost of an adjacent-swap realisation: the accessed element
        # climbs `level` edges to the root, and every relocated element travels
        # the tree distance between consecutive cycle nodes.
        swaps = level
        for index in range(1, len(cycle)):
            swaps += tree.distance(cycle[index - 1], cycle[index])

        self.network.apply_cycle(cycle, charged_swaps=swaps)

        # Book-keeping for the LRU index: the accessed element is now at the
        # root, every victim moved one level down, except the last victim which
        # moved to the accessed element's old level (== its own level).
        self._lru.move(element, 0)
        old_root_element = self.network.element_at(cycle[1])
        self._lru.move(old_root_element, 1)
        for depth, victim in enumerate(victims[:-1], start=1):
            self._lru.move(victim, depth + 1)
        # victims[-1] stays on level `level`.

    def serve_batch(self, requests: Sequence[ElementId]) -> int:
        """Serve one chunk with the repeat runs batched.

        After any served request the accessed element occupies the root, so a
        request equal to its predecessor is a guaranteed root hit: access
        cost 1, no swaps, no demotion cascade — the only state change is the
        LRU clock tick of ``record_access``.  This loop therefore serves the
        *first* request of every maximal equal-run through the scalar fast
        path and settles the remaining repeats with one
        :meth:`~repro.algorithms.lru_index.LevelLRUIndex.record_repeats`
        bump plus one batched ledger call, instead of per-request
        unlink/relink/accounting.  Observable behaviour (placement, victim
        selection, ledger totals, per-request records) is identical to the
        request-by-request protocol — pinned by the batch-serve equivalence
        property tests.
        """
        network = self.network
        if network.enforce_marking:
            # the checked reference path stays request-by-request
            return super().serve_batch(requests)
        if _backend.HAS_NUMPY and isinstance(requests, _backend.np.ndarray):
            requests = requests.tolist()
        serve_fast = self._serve_fast
        lru = self._lru
        ledger = network.ledger
        keep_records = ledger.keep_records
        count = len(requests)
        index = 0
        while index < count:
            element = requests[index]
            end = index + 1
            while end < count and requests[end] == element:
                end += 1
            serve_fast(element)  # run head: full serve (cascade + bounds check)
            repeats = end - index - 1
            if repeats:
                # the element is now at the root; the rest of the run are
                # root hits whose only state change is the LRU clock
                lru.record_repeats(element, repeats)
                if keep_records:
                    ledger.record_batch_columns(
                        [element] * repeats, [0] * repeats, [0] * repeats
                    )
                else:
                    ledger.record_batch(repeats, repeats, 0)
            index = end
        return count

    def _adjust_fast(self, element: ElementId, level: Level) -> Optional[int]:
        lru = self._lru
        lru.record_access(element)
        if level == 0:
            return 0
        network = self.network
        node_of = network._node_of

        victims: List[ElementId] = [
            lru.least_recently_used(depth, exclude=element)
            for depth in range(1, level + 1)
        ]
        source = node_of[element]
        cycle: List[NodeId] = [0]
        cycle.extend(node_of[victim] for victim in victims)
        cycle.append(source)

        # Same closed-form swap count as the reference path, but with the
        # trusted distance primitive (no per-call node validation).
        swaps = level
        previous = 0
        for node in cycle[1:]:
            swaps += node_distance(previous, node)
            previous = node

        network.apply_cycle_trusted(cycle)

        lru.move(element, 0)
        lru.move(network._elem_at[cycle[1]], 1)
        for depth, victim in enumerate(victims[:-1], start=1):
            lru.move(victim, depth + 1)
        # victims[-1] stays on level `level`.
        return swaps
