"""Common infrastructure for online single-source tree-network algorithms.

Every algorithm studied in the paper follows the same skeleton: a request to an
element is served by paying the access cost (the element's current level plus
one) and then, optionally, rearranging the tree with unit-cost swaps.  This
module captures that skeleton in :class:`OnlineTreeAlgorithm`, so the concrete
algorithms only implement the rearrangement step.

The base class also standardises construction (random initial placement per the
paper's experimental setup), per-run results (:class:`RunResult`) and the hook
used by offline algorithms (Static-Opt) that must see the whole sequence before
serving it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.cost import RequestCost
from repro.core.state import TreeNetwork
from repro.core.tree import CompleteBinaryTree
from repro.exceptions import AlgorithmError, MappingError
from repro.types import ElementId, Level, RequestSequence

__all__ = ["OnlineTreeAlgorithm", "RunResult"]


@dataclass
class RunResult:
    """Aggregate outcome of running one algorithm over one request sequence.

    Attributes
    ----------
    algorithm:
        The algorithm's registry name (e.g. ``"rotor-push"``).
    n_nodes:
        Size of the tree/universe.
    n_requests:
        Number of requests served.
    total_access_cost, total_adjustment_cost:
        Summed costs over the whole run.
    per_request:
        Optional per-request cost records (present when the network's ledger
        keeps records).
    metadata:
        Free-form extra information (seeds, workload parameters, ...).
    """

    algorithm: str
    n_nodes: int
    n_requests: int
    total_access_cost: int
    total_adjustment_cost: int
    per_request: List[RequestCost] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def total_cost(self) -> int:
        """Total cost (access plus adjustment)."""
        return self.total_access_cost + self.total_adjustment_cost

    @property
    def average_access_cost(self) -> float:
        """Average access cost per request."""
        return self.total_access_cost / self.n_requests if self.n_requests else 0.0

    @property
    def average_adjustment_cost(self) -> float:
        """Average adjustment cost per request."""
        return self.total_adjustment_cost / self.n_requests if self.n_requests else 0.0

    @property
    def average_total_cost(self) -> float:
        """Average total cost per request."""
        return self.total_cost / self.n_requests if self.n_requests else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-serialisable summary (without per-request records)."""
        return {
            "algorithm": self.algorithm,
            "n_nodes": self.n_nodes,
            "n_requests": self.n_requests,
            "total_access_cost": self.total_access_cost,
            "total_adjustment_cost": self.total_adjustment_cost,
            "total_cost": self.total_cost,
            "average_access_cost": self.average_access_cost,
            "average_adjustment_cost": self.average_adjustment_cost,
            "average_total_cost": self.average_total_cost,
            "metadata": dict(self.metadata),
        }


class OnlineTreeAlgorithm(abc.ABC):
    """Base class for all single-source self-adjusting tree algorithms.

    Subclasses implement :meth:`_adjust`, which is called after the access cost
    of the requested element has been recorded, and may rearrange the tree
    using the network's swap primitives.

    Class attributes
    ----------------
    name:
        Registry name of the algorithm (lower-case, hyphenated).
    is_deterministic:
        ``True`` when the algorithm uses no randomness while serving.
    is_self_adjusting:
        ``True`` when the algorithm performs swaps; static trees set ``False``.
    requires_preparation:
        ``True`` when :meth:`prepare` must be called with the full request
        sequence before serving (offline algorithms such as Static-Opt).
    """

    name: str = "abstract"
    is_deterministic: bool = True
    is_self_adjusting: bool = True
    requires_preparation: bool = False

    def __init__(self, network: TreeNetwork) -> None:
        self.network = network
        self._prepared = not self.requires_preparation

    # ------------------------------------------------------------ construction

    @classmethod
    def for_tree(
        cls,
        n_nodes: Optional[int] = None,
        depth: Optional[int] = None,
        placement_seed: Optional[int] = None,
        keep_records: bool = True,
        enforce_marking: bool = False,
        **kwargs,
    ) -> "OnlineTreeAlgorithm":
        """Build the algorithm on a fresh tree with a random initial placement.

        Exactly one of ``n_nodes`` or ``depth`` must be given.  The initial
        placement is uniformly random, seeded by ``placement_seed``, matching
        the paper's experimental setup.  Additional keyword arguments are
        forwarded to the algorithm constructor (for example ``seed`` for
        Random-Push).
        """
        if (n_nodes is None) == (depth is None):
            raise AlgorithmError("specify exactly one of n_nodes or depth")
        tree = (
            CompleteBinaryTree(n_nodes)
            if n_nodes is not None
            else CompleteBinaryTree.from_depth(depth)
        )
        network = TreeNetwork.with_random_placement(
            tree,
            seed=placement_seed,
            with_rotor=cls._needs_rotor(),
            enforce_marking=enforce_marking,
            keep_records=keep_records,
        )
        return cls(network, **kwargs)

    @classmethod
    def _needs_rotor(cls) -> bool:
        """Whether the algorithm requires rotor pointers on its network."""
        return False

    # ----------------------------------------------------------------- serving

    def prepare(self, sequence: RequestSequence) -> None:
        """Give offline algorithms access to the whole sequence before serving.

        The default implementation is a no-op for online algorithms; offline
        algorithms override it and must call it before :meth:`serve`.
        """
        self._prepared = True

    def serve(self, element: ElementId) -> RequestCost:
        """Serve one request: pay the access cost, then rearrange the tree.

        Returns the :class:`RequestCost` record of this request.  On networks
        without marking enforcement the rearrangement runs on the trusted
        fast path (:meth:`_adjust_fast`); with ``enforce_marking`` enabled the
        fully checked reference path (:meth:`_adjust`) is used so the marking
        discipline stays observable.
        """
        if not self._prepared:
            raise AlgorithmError(
                f"{self.name} requires prepare(sequence) before serving requests"
            )
        network = self.network
        if network.enforce_marking:
            level = network.access(element)
            self._adjust(element, level)
            return network.finish_request()
        level, swaps = self._serve_fast(element)
        ledger = network.ledger
        if ledger.keep_records:
            return ledger.records[-1]
        return RequestCost(
            element=element,
            access_cost=level + 1,
            adjustment_cost=swaps,
            level_at_access=level,
        )

    def serve_reference(self, element: ElementId) -> RequestCost:
        """Serve one request through the checked reference path, unconditionally.

        Identical observable behaviour to :meth:`serve` (same configurations,
        same costs) but always runs :meth:`_adjust` with the validated swap
        primitives.  The property-test suite uses this to assert that the
        trusted fast paths are bit-identical to the reference implementation.
        """
        if not self._prepared:
            raise AlgorithmError(
                f"{self.name} requires prepare(sequence) before serving requests"
            )
        level = self.network.access(element)
        self._adjust(element, level)
        return self.network.finish_request()

    def run(self, sequence: Iterable[ElementId], metadata: Optional[dict] = None) -> RunResult:
        """Serve an entire request sequence and return the aggregate result.

        When the network's ledger runs with ``keep_records=False`` (and the
        marking discipline is not enforced), the loop takes a fast path that
        skips :class:`RequestCost` materialisation entirely: each request is
        accounted with a single batch ledger call instead of the
        open/charge/close protocol plus a record object.
        """
        sequence = list(sequence)
        if self.requires_preparation and not self._prepared:
            self.prepare(sequence)
        return self._run_chunks((sequence,), metadata)

    def run_stream(
        self,
        chunks: Iterable[Iterable[ElementId]],
        metadata: Optional[dict] = None,
    ) -> RunResult:
        """Serve a chunked request stream and return the aggregate result.

        The streaming twin of :meth:`run`: requests arrive as an iterable of
        chunks (see :meth:`repro.workloads.base.WorkloadGenerator.iter_requests`)
        and are served as they arrive, so the full sequence is never resident.
        Offline algorithms (``requires_preparation``) must see the whole
        sequence anyway and therefore materialise it before delegating to
        :meth:`run`.  Costs are identical to ``run`` on the concatenated
        stream by construction — both drive the same serve loop.
        """
        if self.requires_preparation and not self._prepared:
            sequence = [element for chunk in chunks for element in chunk]
            return self.run(sequence, metadata=metadata)
        return self._run_chunks(chunks, metadata)

    def _run_chunks(
        self,
        chunks: Iterable[Iterable[ElementId]],
        metadata: Optional[dict],
    ) -> RunResult:
        """Shared serve loop of :meth:`run` and :meth:`run_stream`."""
        network = self.network
        ledger = network.ledger
        if ledger.keep_records or network.enforce_marking:
            for chunk in chunks:
                for element in chunk:
                    self.serve(element)
        else:
            if not self._prepared:
                raise AlgorithmError(
                    f"{self.name} requires prepare(sequence) before serving requests"
                )
            serve_fast = self._serve_fast
            for chunk in chunks:
                for element in chunk:
                    serve_fast(element)
        return RunResult(
            algorithm=self.name,
            n_nodes=network.tree.n_nodes,
            n_requests=ledger.n_requests,
            total_access_cost=ledger.total_access_cost,
            total_adjustment_cost=ledger.total_adjustment_cost,
            per_request=list(ledger.records),
            metadata=dict(metadata or {}),
        )

    def _serve_fast(self, element: ElementId) -> "tuple[int, int]":
        """Serve one request on the non-marking fast path; return (level, swaps).

        Shared by :meth:`serve` and the ``keep_records=False`` loop of
        :meth:`run`.  Algorithms with a trusted port (``_adjust_fast``
        returning a swap count) are accounted with one
        :meth:`repro.core.cost.CostLedger.record_request` call; unported
        algorithms fall back to the checked protocol with a record-free close
        (:meth:`TreeNetwork.finish_request_fast`, which also invalidates any
        marks the adjustment set).
        """
        network = self.network
        node_of = network._node_of
        if not 0 <= element < len(node_of):
            raise MappingError(
                f"element {element} outside universe of size {len(node_of)}"
            )
        level = (node_of[element] + 1).bit_length() - 1
        swaps = self._adjust_fast(element, level)
        if swaps is None:
            ledger = network.ledger
            ledger.open_request(element, level)
            self._adjust(element, level)
            swaps = ledger.pending_adjustment
            network.finish_request_fast()
        else:
            network.ledger.record_request(element, level, swaps)
        return level, swaps

    # -------------------------------------------------------------- adjustment

    @abc.abstractmethod
    def _adjust(self, element: ElementId, level: Level) -> None:
        """Rearrange the tree after accessing ``element`` found at ``level``.

        This is the *reference* implementation: it charges adjustment cost
        through the network's checked swap primitives (or
        :meth:`TreeNetwork.apply_cycle` with an analytic swap count) and obeys
        the marking discipline when it is enforced.
        """

    def _adjust_fast(self, element: ElementId, level: Level) -> Optional[int]:
        """Trusted fast-path twin of :meth:`_adjust`.

        Implementations rearrange the tree with the unchecked primitives
        (:meth:`TreeNetwork.apply_cycle_trusted` and friends), touch the
        ledger **not at all**, and return the adjustment swap count; the
        caller accounts it in one batch.  Must produce exactly the same
        element configuration and swap count as :meth:`_adjust`.

        The default returns ``None``, signalling "no trusted port available";
        callers then fall back to the checked reference path.
        """
        return None

    # ------------------------------------------------------------------ helpers

    def level_of(self, element: ElementId) -> Level:
        """Return the current level of ``element`` (convenience passthrough)."""
        return self.network.level_of(element)

    def reset_costs(self) -> None:
        """Clear the cost ledger without touching the tree configuration."""
        self.network.ledger.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(n={self.network.tree.n_nodes})"
