"""Common infrastructure for online single-source tree-network algorithms.

Every algorithm studied in the paper follows the same skeleton: a request to an
element is served by paying the access cost (the element's current level plus
one) and then, optionally, rearranging the tree with unit-cost swaps.  This
module captures that skeleton in :class:`OnlineTreeAlgorithm`, so the concrete
algorithms only implement the rearrangement step.

The base class also standardises construction (random initial placement per the
paper's experimental setup), per-run results (:class:`RunResult`) and the hook
used by offline algorithms (Static-Opt) that must see the whole sequence before
serving it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core import backend as _backend
from repro.core.cost import RequestCost
from repro.core.state import TreeNetwork
from repro.core.tree import CompleteBinaryTree
from repro.exceptions import AlgorithmError, MappingError
from repro.types import ElementId, Level, RequestSequence

__all__ = ["OnlineTreeAlgorithm", "RunResult"]


@dataclass
class RunResult:
    """Aggregate outcome of running one algorithm over one request sequence.

    Attributes
    ----------
    algorithm:
        The algorithm's registry name (e.g. ``"rotor-push"``).
    n_nodes:
        Size of the tree/universe.
    n_requests:
        Number of requests served.
    total_access_cost, total_adjustment_cost:
        Summed costs over the whole run.
    per_request:
        Optional per-request cost records (present when the network's ledger
        keeps records).  Stored as a lazily-materialising
        :class:`repro.core.cost.RequestRecordColumns` snapshot by the run
        loops — it behaves like a list of :class:`RequestCost` (indexing,
        slicing, iteration, equality) but costs three integer columns, not
        one object per request.
    metadata:
        Free-form extra information (seeds, workload parameters, ...).
    """

    algorithm: str
    n_nodes: int
    n_requests: int
    total_access_cost: int
    total_adjustment_cost: int
    per_request: Sequence[RequestCost] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def total_cost(self) -> int:
        """Total cost (access plus adjustment)."""
        return self.total_access_cost + self.total_adjustment_cost

    @property
    def average_access_cost(self) -> float:
        """Average access cost per request."""
        return self.total_access_cost / self.n_requests if self.n_requests else 0.0

    @property
    def average_adjustment_cost(self) -> float:
        """Average adjustment cost per request."""
        return self.total_adjustment_cost / self.n_requests if self.n_requests else 0.0

    @property
    def average_total_cost(self) -> float:
        """Average total cost per request."""
        return self.total_cost / self.n_requests if self.n_requests else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-serialisable summary (without per-request records)."""
        return {
            "algorithm": self.algorithm,
            "n_nodes": self.n_nodes,
            "n_requests": self.n_requests,
            "total_access_cost": self.total_access_cost,
            "total_adjustment_cost": self.total_adjustment_cost,
            "total_cost": self.total_cost,
            "average_access_cost": self.average_access_cost,
            "average_adjustment_cost": self.average_adjustment_cost,
            "average_total_cost": self.average_total_cost,
            "metadata": dict(self.metadata),
        }


class OnlineTreeAlgorithm(abc.ABC):
    """Base class for all single-source self-adjusting tree algorithms.

    Subclasses implement :meth:`_adjust`, which is called after the access cost
    of the requested element has been recorded, and may rearrange the tree
    using the network's swap primitives.

    Class attributes
    ----------------
    name:
        Registry name of the algorithm (lower-case, hyphenated).
    is_deterministic:
        ``True`` when the algorithm uses no randomness while serving.
    is_self_adjusting:
        ``True`` when the algorithm performs swaps; static trees set ``False``.
    requires_preparation:
        ``True`` when :meth:`prepare` must be called with the full request
        sequence before serving (offline algorithms such as Static-Opt).
    """

    name: str = "abstract"
    is_deterministic: bool = True
    is_self_adjusting: bool = True
    requires_preparation: bool = False

    #: Whether serving an element always leaves it at the root, with a
    #: level-0 request being a complete no-op (no placement change, no
    #: algorithm-state change, no randomness consumed).  Algorithms with this
    #: property (Move-To-Front, Rotor-Push, Random-Push) get the vectorised
    #: root-hit batch serve: every request equal to its predecessor is settled
    #: by array ops and only the placement-mutating requests run the scalar
    #: ``_adjust_fast``.  The vectorised path therefore also requires a
    #: trusted ``_adjust_fast`` port; setting the flag without one simply
    #: keeps the scalar loop.
    batch_root_promote: bool = False

    def __init__(self, network: TreeNetwork) -> None:
        self.network = network
        self._prepared = not self.requires_preparation

    # ------------------------------------------------------------ construction

    @classmethod
    def for_tree(
        cls,
        n_nodes: Optional[int] = None,
        depth: Optional[int] = None,
        placement_seed: Optional[int] = None,
        keep_records: bool = True,
        enforce_marking: bool = False,
        backend: Optional[str] = None,
        **kwargs,
    ) -> "OnlineTreeAlgorithm":
        """Build the algorithm on a fresh tree with a random initial placement.

        Exactly one of ``n_nodes`` or ``depth`` must be given.  The initial
        placement is uniformly random, seeded by ``placement_seed``, matching
        the paper's experimental setup.  ``backend`` selects the serve
        backend of the underlying network (see :mod:`repro.core.backend`).
        Additional keyword arguments are forwarded to the algorithm
        constructor (for example ``seed`` for Random-Push).
        """
        if (n_nodes is None) == (depth is None):
            raise AlgorithmError("specify exactly one of n_nodes or depth")
        if backend is None or backend == "auto":
            # Per-algorithm auto-detection, backed by the measured preference
            # table in repro.core.backend (typed-array placement pays for
            # itself only when a vectorised batch port consumes the NumPy
            # views).  Explicit names are always honoured.
            backend = _backend.auto_backend_for(
                cls.name,
                self_adjusting=cls.is_self_adjusting,
                batch_root_promote=cls.batch_root_promote,
            )
        tree = (
            CompleteBinaryTree(n_nodes)
            if n_nodes is not None
            else CompleteBinaryTree.from_depth(depth)
        )
        network = TreeNetwork.with_random_placement(
            tree,
            seed=placement_seed,
            with_rotor=cls._needs_rotor(),
            enforce_marking=enforce_marking,
            keep_records=keep_records,
            backend=backend,
        )
        return cls(network, **kwargs)

    @classmethod
    def _needs_rotor(cls) -> bool:
        """Whether the algorithm requires rotor pointers on its network."""
        return False

    # ----------------------------------------------------------------- serving

    def prepare(self, sequence: RequestSequence) -> None:
        """Give offline algorithms access to the whole sequence before serving.

        The default implementation is a no-op for online algorithms; offline
        algorithms override it and must call it before :meth:`serve`.
        """
        self._prepared = True

    def serve(self, element: ElementId) -> RequestCost:
        """Serve one request: pay the access cost, then rearrange the tree.

        Returns the :class:`RequestCost` record of this request.  On networks
        without marking enforcement the rearrangement runs on the trusted
        fast path (:meth:`_adjust_fast`); with ``enforce_marking`` enabled the
        fully checked reference path (:meth:`_adjust`) is used so the marking
        discipline stays observable.
        """
        if not self._prepared:
            raise AlgorithmError(
                f"{self.name} requires prepare(sequence) before serving requests"
            )
        network = self.network
        if network.enforce_marking:
            level = network.access(element)
            self._adjust(element, level)
            return network.finish_request()
        level, swaps = self._serve_fast(element)
        ledger = network.ledger
        if ledger.keep_records:
            return ledger.records[-1]
        return RequestCost(
            element=element,
            access_cost=level + 1,
            adjustment_cost=swaps,
            level_at_access=level,
        )

    def serve_reference(self, element: ElementId) -> RequestCost:
        """Serve one request through the checked reference path, unconditionally.

        Identical observable behaviour to :meth:`serve` (same configurations,
        same costs) but always runs :meth:`_adjust` with the validated swap
        primitives.  The property-test suite uses this to assert that the
        trusted fast paths are bit-identical to the reference implementation.
        """
        if not self._prepared:
            raise AlgorithmError(
                f"{self.name} requires prepare(sequence) before serving requests"
            )
        level = self.network.access(element)
        self._adjust(element, level)
        return self.network.finish_request()

    def run(self, sequence: Iterable[ElementId], metadata: Optional[dict] = None) -> RunResult:
        """Serve an entire request sequence and return the aggregate result.

        When the network's ledger runs with ``keep_records=False`` (and the
        marking discipline is not enforced), the loop takes a fast path that
        skips :class:`RequestCost` materialisation entirely: each request is
        accounted with a single batch ledger call instead of the
        open/charge/close protocol plus a record object.
        """
        sequence = list(sequence)
        if self.requires_preparation and not self._prepared:
            self.prepare(sequence)
        return self._run_chunks((sequence,), metadata)

    def run_stream(
        self,
        chunks: Iterable[Iterable[ElementId]],
        metadata: Optional[dict] = None,
    ) -> RunResult:
        """Serve a chunked request stream and return the aggregate result.

        The streaming twin of :meth:`run`: requests arrive as an iterable of
        chunks (see :meth:`repro.workloads.base.WorkloadGenerator.iter_requests`)
        and are served as they arrive, so the full sequence is never resident.
        Offline algorithms (``requires_preparation``) must see the whole
        sequence anyway and therefore materialise it first; an all-ndarray
        stream is concatenated (and prepared) without ever boxing a request
        into a Python int.  Costs are identical to ``run`` on the
        concatenated stream by construction — both drive the same serve loop.
        """
        if self.requires_preparation and not self._prepared:
            chunks = list(chunks)
            if (
                chunks
                and _backend.HAS_NUMPY
                and all(isinstance(chunk, _backend.np.ndarray) for chunk in chunks)
            ):
                sequence = (
                    _backend.np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
                )
                self.prepare(sequence)
                return self._run_chunks(chunks, metadata)
            sequence = [element for chunk in chunks for element in chunk]
            return self.run(sequence, metadata=metadata)
        return self._run_chunks(chunks, metadata)

    def _run_chunks(
        self,
        chunks: Iterable[Iterable[ElementId]],
        metadata: Optional[dict],
    ) -> RunResult:
        """Shared serve loop of :meth:`run` and :meth:`run_stream`.

        Every chunk goes through :meth:`serve_batch`, which dispatches to the
        vectorised array-backend implementations where available and to the
        scalar fast loop otherwise — the streaming chunks are the batch unit.
        """
        network = self.network
        ledger = network.ledger
        for chunk in chunks:
            self.serve_batch(chunk)
        return RunResult(
            algorithm=self.name,
            n_nodes=network.tree.n_nodes,
            n_requests=ledger.n_requests,
            total_access_cost=ledger.total_access_cost,
            total_adjustment_cost=ledger.total_adjustment_cost,
            # a columnar snapshot: records materialise only if someone reads
            # them, instead of one RequestCost object per served request here
            per_request=ledger.records.copy(),
            metadata=dict(metadata or {}),
        )

    # ------------------------------------------------------------ batch serving

    def serve_batch(self, requests: Sequence[ElementId]) -> int:
        """Serve one chunk of requests; return how many were served.

        Observable behaviour (final placement, ledger totals, per-request
        records, RNG consumption) is identical to serving the chunk one
        request at a time through :meth:`serve` — property tests pin this for
        every algorithm and backend.  On an array-backend network with NumPy
        available, algorithms with a vectorised port settle most of the chunk
        with array operations; everything else runs the scalar fast loop
        (with the marking-enforced reference path as the checked fallback).
        """
        if not self._prepared:
            raise AlgorithmError(
                f"{self.name} requires prepare(sequence) before serving requests"
            )
        network = self.network
        if not network.enforce_marking and _backend.vectorise_active(network.backend):
            chunk = _backend.as_request_array(requests)
            if chunk.shape[0] == 0:
                return 0
            served = self._serve_batch_array(chunk)
            if served is not None:
                return served
            requests = chunk.tolist()
        elif _backend.HAS_NUMPY and isinstance(requests, _backend.np.ndarray):
            # Scalar loops iterate Python ints; boxing NumPy scalars one by
            # one in the loop would be slower than one bulk conversion.
            requests = requests.tolist()
        if network.enforce_marking:
            for element in requests:
                self.serve(element)
            return len(requests)
        serve_fast = self._serve_fast
        count = 0
        for element in requests:
            serve_fast(element)
            count += 1
        return count

    def _serve_batch_array(self, chunk) -> Optional[int]:
        """Vectorised batch serve of an ndarray chunk, or ``None`` if unported.

        Called only on array-backend networks with NumPy importable and the
        marking discipline off.  The two built-in ports cover the cheap-adjust
        algorithms: static trees (no adjustment at all) and root-promoting
        algorithms (see :attr:`batch_root_promote`); subclasses may override
        for bespoke vectorisation.
        """
        if not self.is_self_adjusting:
            return self._serve_batch_static(chunk)
        if self.batch_root_promote:
            if type(self)._adjust_fast is OnlineTreeAlgorithm._adjust_fast:
                # The root-promote port drives _adjust_fast directly; a
                # subclass that sets the flag without a trusted port falls
                # back to the scalar loop (whose checked-reference fallback
                # handles the missing port per request).
                return None
            return self._serve_batch_root_promote(chunk)
        return None

    @staticmethod
    def _check_batch_bounds(chunk, n_elements: int) -> None:
        """Validate a whole chunk against the element universe in one pass.

        Batch twin of the per-request bounds check in :meth:`_serve_fast`;
        the chunk is validated up front, so an out-of-range element rejects
        the entire chunk instead of serving the requests before it.
        """
        if int(chunk.min()) < 0 or int(chunk.max()) >= n_elements:
            bad = chunk[(chunk < 0) | (chunk >= n_elements)]
            raise MappingError(
                f"element {int(bad[0])} outside universe of size {n_elements}"
            )

    def _serve_batch_static(self, chunk) -> int:
        """Vectorised batch serve for algorithms that never adjust.

        The placement is constant across the chunk, so the levels of all
        requested elements come from two fancy-indexes (element -> node ->
        level) and the chunk is accounted with one ledger call.
        """
        network = self.network
        node_of = network._node_of_np
        n_elements = node_of.shape[0]
        self._check_batch_bounds(chunk, n_elements)
        levels = _backend.node_levels_view(n_elements)[node_of[chunk]]
        count = chunk.shape[0]
        ledger = network.ledger
        if ledger.keep_records:
            ledger.record_batch_columns(chunk.tolist(), levels.tolist())
        else:
            ledger.record_batch(count, int(levels.sum()) + count, 0)
        return count

    def _serve_batch_root_promote(self, chunk) -> int:
        """Vectorised batch serve for root-promoting algorithms.

        After any served request the requested element occupies the root, so
        a request equal to its predecessor (or, for the first of the chunk,
        equal to the element currently at the root) is a guaranteed root hit:
        access cost 1, no swaps, no state change.  Those are settled for the
        whole chunk with one vectorised comparison; only the remaining
        requests — the ones that actually mutate the placement — run the
        scalar :meth:`_adjust_fast`.
        """
        np = _backend.np
        network = self.network
        node_of = network._node_of
        n_elements = len(node_of)
        self._check_batch_bounds(chunk, n_elements)
        hits = np.empty(chunk.shape, dtype=np.bool_)
        hits[0] = int(chunk[0]) == network._elem_at[0]
        np.equal(chunk[1:], chunk[:-1], out=hits[1:])
        count = chunk.shape[0]
        ledger = network.ledger
        adjust_fast = self._adjust_fast
        if ledger.keep_records:
            elements = chunk.tolist()
            levels = [0] * count
            swaps = [0] * count
            for index in np.flatnonzero(~hits).tolist():
                element = elements[index]
                level = (node_of[element] + 1).bit_length() - 1
                levels[index] = level
                swaps[index] = adjust_fast(element, level)
            ledger.record_batch_columns(elements, levels, swaps)
            return count
        active = chunk[~hits]
        access_total = count - active.shape[0]  # every root hit costs 1
        adjustment_total = 0
        for element in active.tolist():
            level = (node_of[element] + 1).bit_length() - 1
            adjustment_total += adjust_fast(element, level)
            access_total += level + 1
        ledger.record_batch(count, access_total, adjustment_total)
        return count

    def _serve_fast(self, element: ElementId) -> "tuple[int, int]":
        """Serve one request on the non-marking fast path; return (level, swaps).

        Shared by :meth:`serve` and the ``keep_records=False`` loop of
        :meth:`run`.  Algorithms with a trusted port (``_adjust_fast``
        returning a swap count) are accounted with one
        :meth:`repro.core.cost.CostLedger.record_request` call; unported
        algorithms fall back to the checked protocol with a record-free close
        (:meth:`TreeNetwork.finish_request_fast`, which also invalidates any
        marks the adjustment set).
        """
        network = self.network
        node_of = network._node_of
        if not 0 <= element < len(node_of):
            raise MappingError(
                f"element {element} outside universe of size {len(node_of)}"
            )
        level = (node_of[element] + 1).bit_length() - 1
        swaps = self._adjust_fast(element, level)
        if swaps is None:
            ledger = network.ledger
            ledger.open_request(element, level)
            self._adjust(element, level)
            swaps = ledger.pending_adjustment
            network.finish_request_fast()
        else:
            network.ledger.record_request(element, level, swaps)
        return level, swaps

    # -------------------------------------------------------------- adjustment

    @abc.abstractmethod
    def _adjust(self, element: ElementId, level: Level) -> None:
        """Rearrange the tree after accessing ``element`` found at ``level``.

        This is the *reference* implementation: it charges adjustment cost
        through the network's checked swap primitives (or
        :meth:`TreeNetwork.apply_cycle` with an analytic swap count) and obeys
        the marking discipline when it is enforced.
        """

    def _adjust_fast(self, element: ElementId, level: Level) -> Optional[int]:
        """Trusted fast-path twin of :meth:`_adjust`.

        Implementations rearrange the tree with the unchecked primitives
        (:meth:`TreeNetwork.apply_cycle_trusted` and friends), touch the
        ledger **not at all**, and return the adjustment swap count; the
        caller accounts it in one batch.  Must produce exactly the same
        element configuration and swap count as :meth:`_adjust`.

        The default returns ``None``, signalling "no trusted port available";
        callers then fall back to the checked reference path.
        """
        return None

    # ------------------------------------------------------------------ helpers

    def level_of(self, element: ElementId) -> Level:
        """Return the current level of ``element`` (convenience passthrough)."""
        return self.network.level_of(element)

    def reset_costs(self) -> None:
        """Clear the cost ledger without touching the tree configuration."""
        self.network.ledger.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(n={self.network.tree.n_nodes})"
