"""Per-level least-recently-used index.

Both Move-Half and Max-Push (Strict-MRU) need to find, at serve time, the
element with the *highest rank* on a given tree level - i.e. the element of
that level that was accessed least recently (elements never accessed so far
count as oldest).  Scanning a level is too slow for deep trees (the deepest
level of a 65,535-node tree has 32,768 nodes), so this module maintains one
lazy min-heap per level keyed by last-access time.

Entries become stale when an element is accessed again or moves to another
level; stale entries are discarded lazily when they surface at the top of a
heap, giving amortised ``O(log n)`` updates and queries.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.core.state import TreeNetwork
from repro.exceptions import AlgorithmError
from repro.types import ElementId, Level

__all__ = ["LevelLRUIndex"]

#: Last-access time assigned to elements that have never been requested.
NEVER_ACCESSED = -1


class LevelLRUIndex:
    """Tracks, for every tree level, which element was used least recently.

    Parameters
    ----------
    network:
        The tree network whose placement defines the initial level of every
        element.  The index does **not** observe the network afterwards; the
        owning algorithm must call :meth:`record_access` and :meth:`move`
        whenever it accesses or relocates elements.
    """

    __slots__ = ("_last_access", "_level_of", "_heaps", "_clock")

    def __init__(self, network: TreeNetwork) -> None:
        tree = network.tree
        n_elements = network.n_elements
        self._last_access: List[int] = [NEVER_ACCESSED] * n_elements
        self._level_of: List[Level] = [0] * n_elements
        self._heaps: List[List[Tuple[int, ElementId]]] = [
            [] for _ in range(tree.depth + 1)
        ]
        self._clock = 0
        for node in range(tree.n_nodes):
            element = network.element_at(node)
            level = tree.level(node)
            self._level_of[element] = level
            heapq.heappush(self._heaps[level], (NEVER_ACCESSED, element))

    # ----------------------------------------------------------------- updates

    def record_access(self, element: ElementId) -> None:
        """Mark ``element`` as the most recently used element."""
        self._clock += 1
        self._last_access[element] = self._clock
        heapq.heappush(
            self._heaps[self._level_of[element]], (self._clock, element)
        )

    def move(self, element: ElementId, new_level: Level) -> None:
        """Record that ``element`` now lives at ``new_level``."""
        if not 0 <= new_level < len(self._heaps):
            raise AlgorithmError(
                f"level {new_level} outside tree of depth {len(self._heaps) - 1}"
            )
        if self._level_of[element] == new_level:
            return
        self._level_of[element] = new_level
        heapq.heappush(
            self._heaps[new_level], (self._last_access[element], element)
        )

    # ----------------------------------------------------------------- queries

    def level_of(self, element: ElementId) -> Level:
        """Return the level the index believes ``element`` is on."""
        return self._level_of[element]

    def last_access(self, element: ElementId) -> int:
        """Return the logical time of the element's last access (-1 if never)."""
        return self._last_access[element]

    def least_recently_used(
        self, level: Level, exclude: Optional[ElementId] = None
    ) -> ElementId:
        """Return the least recently used element currently on ``level``.

        Elements never accessed count as oldest; ties are broken by element
        identifier for determinism.  ``exclude`` (typically the element that
        was just accessed) is skipped.
        """
        heap = self._heaps[level]
        skipped: List[Tuple[int, ElementId]] = []
        result: Optional[ElementId] = None
        while heap:
            timestamp, element = heap[0]
            if (
                self._level_of[element] != level
                or self._last_access[element] != timestamp
            ):
                heapq.heappop(heap)  # stale entry
                continue
            if exclude is not None and element == exclude:
                skipped.append(heapq.heappop(heap))
                continue
            result = element
            break
        for entry in skipped:
            heapq.heappush(heap, entry)
        if result is None:
            raise AlgorithmError(f"no eligible element on level {level}")
        return result

    def validate_against(self, network: TreeNetwork) -> None:
        """Check that tracked levels match the network placement (test helper)."""
        for element in range(network.n_elements):
            actual = network.level_of(element)
            if self._level_of[element] != actual:
                raise AlgorithmError(
                    f"LRU index thinks element {element} is on level "
                    f"{self._level_of[element]} but it is on level {actual}"
                )
