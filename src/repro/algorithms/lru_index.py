"""Per-level least-recently-used index.

Both Move-Half and Max-Push (Strict-MRU) need to find, at serve time, the
element with the *highest rank* on a given tree level - i.e. the element of
that level that was accessed least recently (elements never accessed so far
count as oldest).  Scanning a level is too slow for deep trees (the deepest
level of a 65,535-node tree has 32,768 nodes), so this module maintains one
recency-ordered intrusive doubly-linked list per level.

The lists are intrusive: the ``next``/``prev`` links of every element live in
two flat integer arrays indexed by element identifier, with one circular
sentinel per level, so membership changes are pointer writes with no node
allocation and no heap churn.  Each list is kept sorted by
``(last_access, element)`` from oldest (head) to newest (tail):

* an **access** stamps the globally newest timestamp, so the element is moved
  to the tail of its level's list in O(1);
* an **LRU query** reads the head of the list in O(1) — there are no stale
  entries to skip, unlike the previous lazy-heap implementation whose
  amortised cleanup dominated Max-Push's serve cost;
* a **level move** re-inserts the element by scanning from the tail towards
  the head.  The Strict-MRU demotion cascade that drives all moves demotes
  the *oldest* element of level ``j`` into level ``j + 1``, whose inhabitants
  are predominantly older still, so the scan almost always stops within a few
  links; the worst case is linear but never materialises under the
  algorithms' access patterns.

The ordering (and hence every victim choice) is identical to the previous
heap implementation: strictly by ``(last_access, element)``, with never
accessed elements (timestamp -1) oldest and ties broken by identifier.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.state import TreeNetwork
from repro.exceptions import AlgorithmError
from repro.types import ElementId, Level

__all__ = ["LevelLRUIndex"]

#: Last-access time assigned to elements that have never been requested.
NEVER_ACCESSED = -1


class LevelLRUIndex:
    """Tracks, for every tree level, which element was used least recently.

    Parameters
    ----------
    network:
        The tree network whose placement defines the initial level of every
        element.  The index does **not** observe the network afterwards; the
        owning algorithm must call :meth:`record_access` and :meth:`move`
        whenever it accesses or relocates elements.
    """

    __slots__ = ("_last_access", "_level_of", "_next", "_prev", "_clock", "_n_elements", "_depth")

    def __init__(self, network: TreeNetwork) -> None:
        tree = network.tree
        n_elements = network.n_elements
        self._n_elements = n_elements
        self._depth = tree.depth
        self._last_access: List[int] = [NEVER_ACCESSED] * n_elements
        self._level_of: List[Level] = [0] * n_elements
        self._clock = 0
        # Links for n_elements element slots plus one circular sentinel per
        # level (sentinel of level l is id n_elements + l).
        size = n_elements + tree.depth + 1
        self._next: List[int] = [0] * size
        self._prev: List[int] = [0] * size
        for level in range(tree.depth + 1):
            sentinel = n_elements + level
            self._next[sentinel] = sentinel
            self._prev[sentinel] = sentinel
        for level in range(tree.depth + 1):
            # All elements start never-accessed; appending in identifier
            # order seeds each list sorted by (NEVER_ACCESSED, element).
            for element in sorted(
                network.element_at(node) for node in tree.nodes_at_level(level)
            ):
                self._level_of[element] = level
                self._link_before(n_elements + level, element)

    # -------------------------------------------------------------- link plumbing

    def _link_before(self, anchor: int, element: int) -> None:
        """Insert ``element`` immediately before ``anchor`` in its circular list."""
        nxt, prv = self._next, self._prev
        tail = prv[anchor]
        nxt[tail] = element
        prv[element] = tail
        nxt[element] = anchor
        prv[anchor] = element

    def _unlink(self, element: int) -> None:
        """Remove ``element`` from whichever list currently holds it."""
        nxt, prv = self._next, self._prev
        before, after = prv[element], nxt[element]
        nxt[before] = after
        prv[after] = before

    # ----------------------------------------------------------------- updates

    def record_access(self, element: ElementId) -> None:
        """Mark ``element`` as the most recently used element."""
        self._clock += 1
        self._last_access[element] = self._clock
        # The fresh timestamp is the global maximum, so the element belongs
        # at the tail (newest end) of its level's list.
        self._unlink(element)
        self._link_before(self._n_elements + self._level_of[element], element)

    def record_repeats(self, element: ElementId, count: int) -> None:
        """Mark ``count`` uninterrupted repeat accesses of ``element`` at once.

        Equivalent to ``count`` consecutive :meth:`record_access` calls with
        no other element accessed or moved in between: the clock advances by
        ``count``, the element receives the final (globally newest) timestamp
        and sits at the tail of its level's list.  No other element's
        timestamp changes during such a run, so every future LRU query — and
        therefore every victim choice — is identical to the request-by-request
        protocol; the equivalence property tests pin this.  This is the
        Max-Push repeat-run batch path: a repeat run only bumps the clock.
        """
        if count <= 0:
            return
        # only the final access's timestamp is observable, so a run is the
        # last access with the clock pre-advanced by the earlier repeats
        self._clock += count - 1
        self.record_access(element)

    def move(self, element: ElementId, new_level: Level) -> None:
        """Record that ``element`` now lives at ``new_level``."""
        if not 0 <= new_level <= self._depth:
            raise AlgorithmError(
                f"level {new_level} outside tree of depth {self._depth}"
            )
        if self._level_of[element] == new_level:
            return
        self._unlink(element)
        self._level_of[element] = new_level
        # Ordered insert: walk from the tail towards the head until the
        # predecessor is not newer than the element.
        sentinel = self._n_elements + new_level
        last_access = self._last_access
        prv = self._prev
        stamp = last_access[element]
        cursor = prv[sentinel]
        while cursor != sentinel and (last_access[cursor], cursor) > (stamp, element):
            cursor = prv[cursor]
        nxt = self._next
        follower = nxt[cursor]
        nxt[cursor] = element
        prv[element] = cursor
        nxt[element] = follower
        prv[follower] = element

    # ----------------------------------------------------------------- queries

    def level_of(self, element: ElementId) -> Level:
        """Return the level the index believes ``element`` is on."""
        return self._level_of[element]

    def last_access(self, element: ElementId) -> int:
        """Return the logical time of the element's last access (-1 if never)."""
        return self._last_access[element]

    def least_recently_used(
        self, level: Level, exclude: Optional[ElementId] = None
    ) -> ElementId:
        """Return the least recently used element currently on ``level``.

        Elements never accessed count as oldest; ties are broken by element
        identifier for determinism.  ``exclude`` (typically the element that
        was just accessed) is skipped.  The lists are kept sorted, so this is
        a head read (or at most one hop past the excluded element).
        """
        if not 0 <= level <= self._depth:
            raise AlgorithmError(
                f"level {level} outside tree of depth {self._depth}"
            )
        sentinel = self._n_elements + level
        candidate = self._next[sentinel]
        if candidate == exclude:
            candidate = self._next[candidate]
        if candidate == sentinel:
            raise AlgorithmError(f"no eligible element on level {level}")
        return candidate

    def validate_against(self, network: TreeNetwork) -> None:
        """Check that tracked levels match the network placement (test helper)."""
        for element in range(network.n_elements):
            actual = network.level_of(element)
            if self._level_of[element] != actual:
                raise AlgorithmError(
                    f"LRU index thinks element {element} is on level "
                    f"{self._level_of[element]} but it is on level {actual}"
                )
