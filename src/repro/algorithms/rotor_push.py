"""Rotor-Push: the paper's deterministic self-adjusting tree algorithm.

Upon a request to an element ``e*`` currently at level ``d*``, Rotor-Push

1. fixes ``v = P^T_{d*}``, the level-``d*`` node of the global path induced by
   the rotor pointers (possibly ``v = nd(e*)``),
2. executes the augmented push-down operation ``PD(nd(e*), v)``, which moves
   ``e*`` to the root and pushes the elements of the global path one level
   down, and
3. executes ``flip(d*)``, toggling the pointers of the global-path nodes above
   level ``d*``.

Theorem 7 of the paper shows this deterministic algorithm is 12-competitive
even though (Lemma 8) it does not have the working-set property.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import OnlineTreeAlgorithm
from repro.core.pushdown import apply_pushdown_cycle, apply_pushdown_swaps
from repro.core.state import TreeNetwork
from repro.exceptions import AlgorithmError
from repro.types import ElementId, Level

__all__ = ["RotorPush"]


class RotorPush(OnlineTreeAlgorithm):
    """Deterministic push-down algorithm driven by rotor (Propp-machine) pointers.

    Parameters
    ----------
    network:
        Tree network to operate on; it must carry a rotor state (use
        :meth:`OnlineTreeAlgorithm.for_tree`, which attaches one automatically).
    exact_swaps:
        When ``True`` the augmented push-down is realised by explicit adjacent
        swaps (the Lemma-1 procedure); when ``False`` (default) the equivalent
        cyclic shift is applied directly and the same swap count is charged
        analytically.  Both paths yield identical configurations and costs.
        The flag selects how the *checked* reference path realises the
        operation; the trusted serve fast path always applies the cyclic
        shift, which is configuration- and cost-identical by Lemma 1.
    """

    name = "rotor-push"
    is_deterministic = True
    is_self_adjusting = True
    # PD always moves the requested element to the root, and a level-0
    # request returns before flip touches any pointer, so the vectorised
    # root-hit batch serve applies.
    batch_root_promote = True

    def __init__(self, network: TreeNetwork, exact_swaps: bool = False) -> None:
        super().__init__(network)
        if network.rotor is None:
            raise AlgorithmError("Rotor-Push requires a network with rotor pointers")
        self.exact_swaps = exact_swaps

    @classmethod
    def _needs_rotor(cls) -> bool:
        return True

    def _adjust(self, element: ElementId, level: Level) -> None:
        if level == 0:
            # The element already occupies the root: PD is trivial and flip(0)
            # toggles no pointers.
            return
        rotor = self.network.rotor
        # flip(d) returns the global path *before* toggling, whose level-d node
        # is exactly the push-down target v; PD only moves elements and flip
        # only moves pointers, so the two commute and we save one path walk.
        path_before = rotor.flip(level)
        target = path_before[level]
        source = self.network.node_of(element)
        if self.exact_swaps:
            apply_pushdown_swaps(self.network, source, target)
        else:
            apply_pushdown_cycle(self.network, source, target)

    def _adjust_fast(self, element: ElementId, level: Level) -> Optional[int]:
        if level == 0:
            return 0
        network = self.network
        elem_at = network._elem_at
        node_of = network._node_of
        pointers = network.rotor._pointers
        source = node_of[element]
        # Fused flip + push-down: one descent along the global path toggles
        # each pointer as it is consumed (flip(level)) and simultaneously
        # shifts every path element one level down, with the requested element
        # entering at the root (the PD cycle of Definition 1).  No path lists
        # are materialised; swap counts are the Lemma-1 closed forms.
        carried = elem_at[0]
        elem_at[0] = element
        node_of[element] = 0
        node = 0
        for _ in range(level):
            direction = pointers[node]
            pointers[node] = direction ^ 1
            node = 2 * node + 1 + direction
            displaced = elem_at[node]
            elem_at[node] = carried
            node_of[carried] = node
            carried = displaced
        if node == source:
            # The requested element sat on the global path: the cycle closes
            # at its node and ``carried`` is the stale copy of the element.
            return level
        elem_at[source] = carried
        node_of[carried] = source
        return 3 * level - 1
