"""The bundled live-serve client: a sync driver for tests, CI and benches.

:class:`ServeClient` is a deliberately simple blocking client — one
connection, one session, one outstanding message — built on the same
framing as the server (:mod:`repro.dist.framing`).  ``busy`` replies are
handled by bounded retry with backoff: the server never buffers past its
queue limit, so a fast producer is throttled here, client-side.

Run as a module it drives concurrent load (one thread + connection per
source) and prints the live cost table, which CI diffs against ``repro
replay`` output::

    python -m repro.serve.client --address tcp://127.0.0.1:PORT \
        --sources alpha,beta --requests 200 --batch 8 --print-table
"""

from __future__ import annotations

import argparse
import random
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.dist.framing import parse_listen_address, recv_frame, send_frame
from repro.dist.protocol import PROTOCOL_VERSION
from repro.serve.engine import ServeError
from repro.sim.results import ResultTable

__all__ = ["ServeClient", "drive_load", "main"]


class ServeClient:
    """A blocking client for one live-serve session."""

    def __init__(
        self,
        address: str,
        timeout: float = 30.0,
        retry_interval: float = 0.002,
    ) -> None:
        host, port = parse_listen_address(address)
        self.address = address
        self.retry_interval = retry_interval
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._next_id = 0
        self.source: Optional[str] = None
        #: ``busy`` replies absorbed by retry (introspected by tests).
        self.busy_count = 0
        send_frame(self._sock, {"type": "hello", "protocol": PROTOCOL_VERSION})
        welcome = recv_frame(self._sock)
        if welcome.get("type") != "welcome":
            raise ServeError(f"serve handshake failed: {welcome!r}")
        #: Server configuration from the handshake (n_nodes, algorithm, ...).
        self.server = welcome

    @property
    def n_nodes(self) -> int:
        return int(self.server["n_nodes"])

    def _rpc(self, message: Dict[str, object]) -> Dict[str, object]:
        send_frame(self._sock, message)
        reply = recv_frame(self._sock)
        if reply.get("type") == "error":
            raise ServeError(f"server rejected {message.get('type')}: {reply.get('error')}")
        return reply

    def open(self, source: str) -> Dict[str, object]:
        """Bind this connection to ``source``; returns the session frame."""
        session = self._rpc({"type": "open_session", "source": source})
        self.source = source
        return session

    def request_batch(
        self, destinations: Sequence[int], block: bool = True
    ) -> Dict[str, object]:
        """Send one batch; retry through ``busy`` until served (``block``).

        With ``block=False`` a ``busy`` reply is returned as-is, so callers
        can observe backpressure directly.
        """
        self._next_id += 1
        message = {
            "type": "request_batch",
            "id": self._next_id,
            "destinations": list(destinations),
        }
        delay = self.retry_interval
        while True:
            reply = self._rpc(message)
            if reply.get("type") != "busy":
                return reply
            self.busy_count += 1
            if not block:
                return reply
            time.sleep(delay)
            delay = min(delay * 2, 0.1)

    def request(self, destination: int, block: bool = True) -> Dict[str, object]:
        """Send one single-destination request."""
        self._next_id += 1
        message = {
            "type": "request",
            "id": self._next_id,
            "destination": destination,
        }
        delay = self.retry_interval
        while True:
            reply = self._rpc(message)
            if reply.get("type") != "busy":
                return reply
            self.busy_count += 1
            if not block:
                return reply
            time.sleep(delay)
            delay = min(delay * 2, 0.1)

    def stats(self) -> Dict[str, object]:
        """Fetch the live stats frame (works with or without a session)."""
        return self._rpc({"type": "stats"})

    def cost_table(self) -> ResultTable:
        """Fetch the live per-source cost table as a ResultTable."""
        document = self.stats()["cost_table"]
        table = ResultTable(
            name=document["name"], columns=list(document["columns"])
        )
        for row in document["rows"]:
            table.add_row(**row)
        return table

    def drain(self) -> Dict[str, object]:
        """Block until this session's queue is fully served and log-flushed."""
        return self._rpc({"type": "drain"})

    def close(self) -> None:
        """Politely end the session and close the connection (idempotent)."""
        if self._sock is None:
            return
        try:
            self._rpc({"type": "close"})
        except (ConnectionError, OSError, ServeError):
            pass
        try:
            self._sock.close()
        finally:
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def drive_load(
    address: str,
    sources: Sequence[str],
    n_requests: int,
    batch_size: int = 8,
    seed: int = 0,
) -> Dict[str, Dict[str, int]]:
    """Drive ``n_requests`` per source concurrently (one thread per source).

    Destinations are drawn from a per-source seeded RNG, uniform over the
    server's tree.  Returns client-side totals per source, accumulated from
    the server's ``reply`` frames — the cross-check the CI smoke and the
    tests compare against the ``stats`` frame and the replay table.
    """
    totals: Dict[str, Dict[str, int]] = {}
    errors: List[BaseException] = []

    def drive(index: int, source: str) -> None:
        try:
            with ServeClient(address) as client:
                client.open(source)
                rng = random.Random(seed * 1_000_003 + index)
                n_nodes = client.n_nodes
                accumulated = {"n": 0, "access_cost": 0, "adjustment_cost": 0}
                remaining = n_requests
                while remaining:
                    size = min(batch_size, remaining)
                    batch = [rng.randrange(n_nodes) for _ in range(size)]
                    reply = client.request_batch(batch)
                    for key in accumulated:
                        accumulated[key] += int(reply[key])
                    remaining -= size
                client.drain()
                totals[source] = accumulated
        except BaseException as error:  # noqa: BLE001 - re-raised in the caller
            errors.append(error)

    threads = [
        threading.Thread(target=drive, args=(index, source), daemon=True)
        for index, source in enumerate(sources)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return totals


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.client",
        description="Drive concurrent load at a repro serve daemon.",
    )
    parser.add_argument("--address", required=True, help="tcp://HOST:PORT")
    parser.add_argument(
        "--sources",
        default="alpha,beta",
        help="comma-separated source names, one concurrent session each",
    )
    parser.add_argument("--requests", type=int, default=200, help="requests per source")
    parser.add_argument("--batch", type=int, default=8, help="destinations per batch")
    parser.add_argument("--seed", type=int, default=0, help="destination RNG seed")
    parser.add_argument(
        "--print-table",
        action="store_true",
        help="print the live cost table (diffable against `repro replay`)",
    )
    args = parser.parse_args(argv)
    sources = [name for name in args.sources.split(",") if name]
    totals = drive_load(
        args.address,
        sources,
        n_requests=args.requests,
        batch_size=args.batch,
        seed=args.seed,
    )
    with ServeClient(args.address) as client:
        stats = client.stats()
        table = client.cost_table() if args.print_table else None
    # the reply-accumulated totals and the server's stats must agree exactly
    by_source = {row["source"]: row for row in stats["engine"]["sources"]}
    for source, accumulated in totals.items():
        row = by_source[source]
        if (
            row["n_requests"] != accumulated["n"]
            or row["total_access_cost"] != accumulated["access_cost"]
            or row["total_adjustment_cost"] != accumulated["adjustment_cost"]
        ):
            raise ServeError(
                f"client totals diverge from server stats for {source!r}: "
                f"{accumulated} != {row}"
            )
    if table is not None:
        # same rendering (trailing blank line included) as `repro replay`,
        # so CI can diff the two outputs directly
        print(table.format_text())
        print("", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
