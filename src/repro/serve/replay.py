"""Replay: turn a recorded ingest log back into a declarative plan.

``repro replay <log>`` is deliberately *not* a bespoke executor: the log is
converted into an ordinary :class:`~repro.plans.model.ExperimentPlan` — one
fixed-sequence :class:`~repro.plans.model.TrialPlan` stage per recorded
source, assembled by the built-in ``replay_totals`` assembler — and run
through :func:`repro.run`, so replay inherits every execution property the
plan layer already pins: process-pool and distributed fan-out, caching,
resume, and bit-identity across ``n_jobs``, chunk sizes and backends.

The replay contract (why this is bit-identical to the live run):

* stage ``k`` uses ``RunConfig(base_seed=base_seed + k * stride, n_trials=1)``
  so trial 0's derived seeds (``+10_000`` placement, ``+20_000`` algorithm)
  are exactly the live engine's seeds for source ``k``;
* per-source trees are independent, so each source's costs depend only on
  its *own* request order — the cross-source interleaving of a live session
  (which is timing-dependent and unrecorded) does not matter;
* ``serve_batch`` is chunk-invariant, so the batch boundaries clients chose
  live are irrelevant to replaying the concatenated per-source sequence.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.algorithms.registry import AlgorithmSpec
from repro.plans.execute import NETWORK_TRIAL_SEED_STRIDE
from repro.plans.model import ExperimentPlan, RunConfig, TrialPlan
from repro.serve.ingest import IngestError, IngestLogReader, read_ingest_log
from repro.workloads.spec import WorkloadSpec

__all__ = ["build_replay_plan", "replay_sequences"]


def replay_sequences(
    log: IngestLogReader,
) -> List[Tuple[str, int, List[int]]]:
    """Extract ``(source name, source id, destination sequence)`` per source.

    Sources come back in source-id (first-bind) order; each sequence is the
    concatenation of the source's accepted batches in log order.
    """
    names: Dict[int, str] = {}
    sequences: Dict[int, List[int]] = {}
    for record in log.records:
        kind = record.get("type")
        if kind == "bind":
            source_id = int(record["source_id"])
            if source_id != len(names):
                raise IngestError(
                    f"ingest log {log.path}: bind record for source id "
                    f"{source_id} arrived out of order (expected {len(names)})"
                )
            names[source_id] = str(record["source"])
            sequences[source_id] = []
        elif kind == "request":
            source_id = int(record["source_id"])
            if source_id not in names:
                raise IngestError(
                    f"ingest log {log.path}: request for unbound source id "
                    f"{source_id}"
                )
            sequences[source_id].extend(
                int(destination) for destination in record["destinations"]
            )
        else:
            raise IngestError(
                f"ingest log {log.path}: unknown record type {kind!r}"
            )
    return [
        (names[source_id], source_id, sequences[source_id])
        for source_id in sorted(names)
    ]


def build_replay_plan(
    log: Union[str, Path, IngestLogReader],
    name: str = "serve",
    allow_mid_loss: bool = False,
) -> ExperimentPlan:
    """Build the plan whose :func:`repro.run` output is the live cost table.

    ``log`` is an ingest-log directory (or an already-read
    :class:`~repro.serve.ingest.IngestLogReader`).  Sources that never
    served a request get no stage, matching
    :meth:`~repro.serve.engine.ServeEngine.cost_table` skipping them live.
    """
    if not isinstance(log, IngestLogReader):
        log = read_ingest_log(log, allow_mid_loss=allow_mid_loss)
    header = log.header
    try:
        n_nodes = int(header["n_nodes"])
        algorithm = AlgorithmSpec.from_dict(header["algorithm"])
        base_seed = int(header["base_seed"])
        backend = header.get("backend")
    except (KeyError, TypeError, ValueError) as error:
        raise IngestError(
            f"ingest log {log.path} has an incomplete header: {error!r}"
        ) from None
    stages = []
    for source, source_id, sequence in replay_sequences(log):
        if not sequence:
            continue
        window = base_seed + source_id * NETWORK_TRIAL_SEED_STRIDE
        stages.append(
            (
                source,
                TrialPlan(
                    name=f"{name}:{source}",
                    n_nodes=n_nodes,
                    workload=WorkloadSpec.create(
                        "fixed-sequence",
                        n_elements=n_nodes,
                        sequence=tuple(sequence),
                    ),
                    algorithms=(algorithm,),
                    config=RunConfig(
                        n_requests=len(sequence),
                        n_trials=1,
                        base_seed=window,
                        keep_records=False,
                        backend=backend,
                    ),
                ),
            )
        )
    return ExperimentPlan(
        name=name,
        stages=tuple(stages),
        assembler="replay_totals",
        params={"algorithm": algorithm.name, "n_nodes": n_nodes},
    )
