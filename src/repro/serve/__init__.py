"""Live serving: a long-lived traffic endpoint with replayable ingest.

``repro serve --listen tcp://0.0.0.0:PORT`` runs an asyncio daemon that
accepts request streams from many concurrent clients over the same
length-prefixed JSON framing as the distributed executor
(:mod:`repro.dist.framing`).  Each client session binds a named *source* to
its own per-source tree (rebuilt from an
:class:`~repro.algorithms.registry.AlgorithmSpec` and served through the
existing ``serve_batch`` backend dispatch); a deterministic engine loop
pulls from bounded per-session queues with explicit backpressure and
accumulates live route costs.

Every accepted request is appended to a crash-safe, segment-rotated
**ingest log** (:mod:`repro.serve.ingest`).  ``repro replay <log>``
reconstructs a fixed-sequence plan from the log and reruns it through
:func:`repro.run` — bit-identically to the live-accumulated per-source cost
table, because the engine derives its per-source seeds exactly as a replay
:class:`~repro.plans.model.TrialPlan` stage would (see
:mod:`repro.serve.engine`).
"""

from repro.serve.engine import ServeEngine, ServeError
from repro.serve.ingest import IngestLogReader, IngestWriter, read_ingest_log
from repro.serve.replay import build_replay_plan
from repro.serve.server import ServeServer, run_serve
from repro.serve.client import ServeClient

__all__ = [
    "IngestLogReader",
    "IngestWriter",
    "ServeClient",
    "ServeEngine",
    "ServeError",
    "ServeServer",
    "build_replay_plan",
    "read_ingest_log",
    "run_serve",
]
