"""The live serving engine: per-source trees, live totals, replayable costs.

One :class:`ServeEngine` owns every bound source's tree and the running
per-source cost totals.  Its seed contract is the whole determinism story of
live serving:

* source ids are assigned in first-bind order (0, 1, 2, ...), and recorded
  in the ingest log;
* source ``k`` gets a private seed window ``b_k = base_seed +
  k * NETWORK_TRIAL_SEED_STRIDE`` and builds its tree with
  ``placement_seed = b_k + 10_000`` and ``algorithm_seed = b_k + 20_000`` —
  exactly the seeds trial 0 of a :class:`~repro.plans.model.TrialPlan` with
  ``RunConfig(base_seed=b_k)`` would use.

Replay therefore needs no bespoke executor: ``repro replay`` rebuilds one
fixed-sequence ``TrialPlan`` stage per source from the log (see
:mod:`repro.serve.replay`) and runs it through :func:`repro.run`; because
``serve_batch`` is chunk-invariant (pinned by the batch-equivalence suites),
serving a source's requests in whatever batch sizes clients chose is
bit-identical to replaying its concatenated sequence in one go.

Live serving is restricted to *online* algorithms: an offline algorithm
(``requires_preparation``, e.g. static-opt) needs the full future sequence
before serving anything, which a live endpoint by definition does not have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.algorithms.registry import AlgorithmSpec, make_algorithm
from repro.exceptions import ExperimentError
from repro.plans.execute import NETWORK_TRIAL_SEED_STRIDE, REPLAY_TABLE_COLUMNS
from repro.serve.ingest import IngestWriter
from repro.sim.results import ResultTable

__all__ = ["ServeEngine", "ServeError", "SourceState"]


class ServeError(ExperimentError):
    """Raised for live-serving misuse (bad bind, bad destination, offline
    algorithm, unknown source)."""


@dataclass
class SourceState:
    """One bound source: its tree and its running totals."""

    name: str
    source_id: int
    algorithm: object
    n_requests: int = 0
    total_access_cost: int = 0
    total_adjustment_cost: int = 0
    batches: int = 0

    @property
    def total_cost(self) -> int:
        return self.total_access_cost + self.total_adjustment_cost


class ServeEngine:
    """Per-source trees plus live cost accounting, with replayable seeds.

    ``log`` (an :class:`~repro.serve.ingest.IngestWriter`) receives one
    ``bind`` record per new source and one ``request`` record per accepted
    batch, in acceptance order — appended *before* the batch is served, so a
    crash mid-serve never loses an acknowledged-to-be-accepted request.
    """

    def __init__(
        self,
        n_nodes: int,
        algorithm: Union[str, AlgorithmSpec],
        backend: Optional[str] = None,
        base_seed: int = 0,
        log: Optional[IngestWriter] = None,
    ) -> None:
        self.n_nodes = int(n_nodes)
        self.algorithm = AlgorithmSpec.coerce(algorithm)
        self.backend = backend
        self.base_seed = int(base_seed)
        self.log = log
        self._sources: Dict[str, SourceState] = {}
        self._order: List[SourceState] = []
        # probe build: surfaces bad algorithm names/params, non-tree n_nodes
        # and unavailable backends at construction instead of at first bind
        probe = make_algorithm(
            self.algorithm,
            n_nodes=self.n_nodes,
            placement_seed=0,
            seed=0,
            keep_records=False,
            backend=self.backend,
        )
        if probe.requires_preparation:
            raise ServeError(
                f"algorithm {self.algorithm.name!r} is offline "
                "(requires_preparation): it needs the full future sequence "
                "before serving, so it cannot serve live traffic"
            )

    # ------------------------------------------------------------- binding

    def bind(self, source: str) -> SourceState:
        """Bind ``source`` to its tree (idempotent; first bind assigns the id)."""
        if not isinstance(source, str) or not source:
            raise ServeError(f"source name must be a non-empty string, got {source!r}")
        state = self._sources.get(source)
        if state is not None:
            return state
        source_id = len(self._order)
        window = self.base_seed + source_id * NETWORK_TRIAL_SEED_STRIDE
        state = SourceState(
            name=source,
            source_id=source_id,
            algorithm=make_algorithm(
                self.algorithm,
                n_nodes=self.n_nodes,
                placement_seed=window + 10_000,
                seed=window + 20_000,
                keep_records=False,
                backend=self.backend,
            ),
        )
        self._sources[source] = state
        self._order.append(state)
        if self.log is not None:
            self.log.append(
                {"type": "bind", "source": source, "source_id": source_id}
            )
            self.log.flush()
        return state

    @property
    def sources(self) -> List[SourceState]:
        """Bound sources in source-id order."""
        return list(self._order)

    def source(self, name: str) -> SourceState:
        state = self._sources.get(name)
        if state is None:
            raise ServeError(
                f"unknown source {name!r}; bound sources: "
                f"{[s.name for s in self._order]}"
            )
        return state

    # ------------------------------------------------------------- serving

    def submit(self, source: str, destinations: Sequence[int]) -> Dict[str, int]:
        """Serve one accepted batch for ``source`` and return its costs.

        Destinations are validated *before* the batch is logged or served,
        so a rejected batch leaves neither the log nor the tree touched and
        the log stays exactly replayable.
        """
        state = self.source(source)
        batch = [int(destination) for destination in destinations]
        for destination in batch:
            if not 0 <= destination < self.n_nodes:
                raise ServeError(
                    f"destination {destination} outside the {self.n_nodes}-node "
                    f"tree (source {source!r})"
                )
        if self.log is not None:
            self.log.append(
                {
                    "type": "request",
                    "source_id": state.source_id,
                    "destinations": batch,
                }
            )
            self.log.flush()
        ledger = state.algorithm.network.ledger
        access_before = ledger.total_access_cost
        adjustment_before = ledger.total_adjustment_cost
        state.algorithm.serve_batch(batch)
        access = ledger.total_access_cost - access_before
        adjustment = ledger.total_adjustment_cost - adjustment_before
        state.n_requests += len(batch)
        state.total_access_cost += access
        state.total_adjustment_cost += adjustment
        state.batches += 1
        return {
            "n": len(batch),
            "access_cost": access,
            "adjustment_cost": adjustment,
        }

    # ------------------------------------------------------------- reporting

    @property
    def n_requests(self) -> int:
        return sum(state.n_requests for state in self._order)

    def cost_table(self, name: str = "serve") -> ResultTable:
        """The live per-source cost table, in source-id order.

        Byte-identical to what ``repro replay`` assembles from this engine's
        ingest log (the ``replay_totals`` assembler): one row per source
        that served at least one request — a bound-but-silent source has no
        replay stage, so it has no live row either — plus a ``"total"``
        aggregate row.
        """
        table = ResultTable(name=name, columns=list(REPLAY_TABLE_COLUMNS))
        served = [state for state in self._order if state.n_requests]
        for state in served:
            table.add_row(
                source=state.name,
                n_requests=state.n_requests,
                total_access_cost=state.total_access_cost,
                total_adjustment_cost=state.total_adjustment_cost,
                total_cost=state.total_cost,
            )
        table.add_row(
            source="total",
            n_requests=sum(state.n_requests for state in served),
            total_access_cost=sum(state.total_access_cost for state in served),
            total_adjustment_cost=sum(state.total_adjustment_cost for state in served),
            total_cost=sum(state.total_cost for state in served),
        )
        return table

    def stats(self) -> Dict[str, object]:
        """Structured live totals (the payload of a ``stats`` wire frame)."""
        return {
            "n_sources": len(self._order),
            "n_requests": self.n_requests,
            "total_access_cost": sum(s.total_access_cost for s in self._order),
            "total_adjustment_cost": sum(
                s.total_adjustment_cost for s in self._order
            ),
            "sources": [
                {
                    "source": state.name,
                    "source_id": state.source_id,
                    "n_requests": state.n_requests,
                    "total_access_cost": state.total_access_cost,
                    "total_adjustment_cost": state.total_adjustment_cost,
                    "total_cost": state.total_cost,
                    "batches": state.batches,
                }
                for state in self._order
            ],
        }

    def flush(self) -> None:
        """Durably flush the ingest log (no-op without one)."""
        if self.log is not None:
            self.log.flush(sync=True)
