"""The live serve daemon: asyncio front-end over the shared wire framing.

``repro serve --listen tcp://0.0.0.0:PORT`` runs one :class:`ServeServer`.
The conversation (all frames are the length-prefixed JSON envelopes of
:mod:`repro.dist.framing`) is session-oriented:

================   ==================  =====================================
message            direction           meaning
================   ==================  =====================================
``hello``          client → server     handshake (protocol version)
``welcome``        server → client     handshake reply (version, config)
``open_session``   client → server     bind this connection to a source
``session``        server → client     bound (source id, queue limit)
``request``        client → server     one destination (id-tagged)
``request_batch``  client → server     a batch of destinations (id-tagged)
``busy``           server → client     queue full — backpressure, retry
``reply``          server → client     batch served (costs, queue depth)
``stats``          client → server     live totals / queue depths / table
``drain``          client → server     block until this session is drained
``drained``        server → client     session queue empty, log flushed
``close``          client → server     end the session politely
``closed``         server → client     goodbye
``error``          server → client     rejected message (reason)
================   ==================  =====================================

Backpressure is explicit and bounded: each session owns a queue of at most
``queue_limit`` pending batches.  A ``request``/``request_batch`` that
arrives with the queue full is answered *immediately* with ``busy``
(carrying the depth and limit) and is neither queued, logged nor served —
the server never buffers unboundedly, clients decide whether to retry.

The engine task is the only consumer: it round-robins bound sessions in
source-id order, serving one queued batch per session per sweep, so the
interleaving of sessions is deterministic given arrival order and per-source
costs are replayable regardless of it (trees are independent).

Graceful shutdown (SIGTERM/SIGINT under ``repro serve``, or
:meth:`ServeServer.request_stop`): stop accepting connections and new
requests, drain every session queue through the engine, flush and close the
ingest log, report final totals, exit 0.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.algorithms.registry import AlgorithmSpec
from repro.dist.framing import (
    ProtocolError,
    parse_listen_address,
    read_frame,
    write_frame,
)
from repro.dist.protocol import PROTOCOL_VERSION
from repro.serve.engine import ServeEngine, ServeError
from repro.serve.ingest import DEFAULT_SEGMENT_BYTES, IngestWriter
from repro.telemetry.export import metrics_frame, start_metrics_server
from repro.telemetry.registry import MetricsRegistry, default_registry
from repro.telemetry.snapshots import MetricsSnapshotWriter
from repro.telemetry.trace import Tracer, default_tracer, span_id

__all__ = ["DEFAULT_QUEUE_LIMIT", "ServeServer", "run_serve"]

#: Default bound on each session's pending-batch queue.
DEFAULT_QUEUE_LIMIT = 64


class _Session:
    """One bound source's connection-side state."""

    __slots__ = ("name", "source_id", "queue", "writer", "in_flight", "seq")

    def __init__(self, name: str, source_id: int) -> None:
        self.name = name
        self.source_id = source_id
        #: Pending (reply id, destinations, enqueued-at, sequence) batches,
        #: engine-consumed FIFO.  The enqueue timestamp feeds the
        #: enqueue-to-reply latency histogram; the per-session sequence
        #: index derives the deterministic span ID.
        self.queue: Deque[Tuple[object, List[int], float, int]] = deque()
        #: The active connection's stream writer (None when disconnected).
        self.writer: Optional[asyncio.StreamWriter] = None
        self.in_flight = False
        self.seq = 0

    @property
    def pending(self) -> int:
        return len(self.queue) + (1 if self.in_flight else 0)


class ServeServer:
    """A live traffic endpoint over one :class:`~repro.serve.engine.ServeEngine`.

    Usable as a long-running process (:func:`run_serve`, the ``repro
    serve`` CLI) or embedded in tests: ``start()`` runs the event loop on a
    background thread and ``stop()`` drains and joins it, mirroring the
    ``WorkerServer`` ergonomics of :mod:`repro.dist`.  ``port=0`` binds an
    ephemeral port; :attr:`address` reports the bound endpoint either way.

    ``pause_engine()``/``resume_engine()`` suspend the engine task between
    batches — queues then fill deterministically, which is how the
    backpressure tests force ``busy`` replies without racing the engine.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        n_nodes: int = 63,
        algorithm: Union[str, AlgorithmSpec] = "rotor-push",
        backend: Optional[str] = None,
        base_seed: int = 0,
        log_dir: Optional[str] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        announce: bool = False,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if queue_limit <= 0:
            raise ServeError(f"queue_limit must be positive, got {queue_limit}")
        self.host = host
        self.port = port
        self.queue_limit = int(queue_limit)
        self.announce = announce
        self.metrics_registry = registry if registry is not None else default_registry()
        self.tracer = tracer if tracer is not None else default_tracer()
        # engine first (its probe build validates algorithm/n_nodes/backend),
        # so a bad configuration never leaves a header-only log directory
        self.engine = ServeEngine(
            n_nodes=n_nodes,
            algorithm=algorithm,
            backend=backend,
            base_seed=base_seed,
        )
        if log_dir is not None:
            self.engine.log = IngestWriter(
                log_dir,
                {
                    "n_nodes": self.engine.n_nodes,
                    "algorithm": self.engine.algorithm.to_dict(),
                    "backend": backend,
                    "base_seed": self.engine.base_seed,
                },
                segment_bytes=segment_bytes,
                registry=self.metrics_registry,
            )
        reg = self.metrics_registry
        self._m_latency = reg.histogram(
            "repro_serve_latency_seconds",
            "Enqueue-to-reply latency of served batches.",
        )
        self._m_queue_wait = reg.histogram(
            "repro_serve_queue_wait_seconds",
            "Time a batch waits in its session queue before the engine pops it.",
        )
        self._m_queue_depth = reg.gauge(
            "repro_serve_queue_depth",
            "Pending batches per bound session.",
            labels=("source",),
        )
        self._m_sessions = reg.gauge(
            "repro_serve_sessions", "Sessions bound to a source."
        )
        self._m_busy = reg.counter(
            "repro_serve_busy_total",
            "Requests rejected with busy backpressure (queue full).",
        )
        self._m_batches = reg.counter(
            "repro_serve_batches_total", "Batches served to completion."
        )
        self._m_requests = reg.counter(
            "repro_serve_requests_total", "Destinations served."
        )
        self._sessions: Dict[int, _Session] = {}
        self._by_name: Dict[str, _Session] = {}
        self._connections: set = set()
        self._stopping = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._started = time.monotonic()
        self.served_batches = 0
        # loop-owned primitives, created inside _main()
        self._work: Optional[asyncio.Event] = None
        self._resume: Optional[asyncio.Event] = None
        self._stop_requested: Optional[asyncio.Event] = None

    @property
    def address(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    # ------------------------------------------------------------ lifecycle

    async def _main(self, install_signal_handlers: bool = False) -> None:
        self._loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._resume = asyncio.Event()
        self._resume.set()
        self._stop_requested = asyncio.Event()
        if install_signal_handlers:
            import signal

            for sig in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(sig, self._stop_requested.set)
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.host, self.port = server.sockets[0].getsockname()[:2]
        self._started = time.monotonic()
        if self.announce:
            print(f"serve listening on {self.address}", flush=True)
        self._ready.set()
        engine_task = asyncio.create_task(self._engine_loop())
        try:
            await self._stop_requested.wait()
            # drain: no new connections, no new requests, engine empties
            # every session queue, then the ingest log is flushed and closed
            server.close()
            await server.wait_closed()
            self._stopping = True
            self._work.set()
            self._resume.set()
            await engine_task
        finally:
            engine_task.cancel()
            for writer in list(self._connections):
                writer.close()
            if self.engine.log is not None:
                self.engine.log.close()

    def start(self) -> "ServeServer":
        """Run the event loop on a daemon thread (test embedding)."""
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name=f"repro-serve-{self.port}",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise ServeError("serve server failed to start within 10s")
        return self

    def request_stop(self) -> None:
        """Ask the daemon to drain and exit (thread-safe, idempotent)."""
        loop = self._loop
        if loop is not None and self._stop_requested is not None:
            loop.call_soon_threadsafe(self._stop_requested.set)

    def stop(self) -> None:
        """Drain, shut down and join the background thread (idempotent)."""
        self.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _threadsafe(self, fn) -> None:
        loop = self._loop
        if loop is None:
            raise ServeError("serve server is not running")
        done = threading.Event()

        def apply() -> None:
            fn()
            done.set()

        loop.call_soon_threadsafe(apply)
        if not done.wait(timeout=5.0):
            raise ServeError("serve server loop did not acknowledge within 5s")

    def pause_engine(self) -> None:
        """Suspend the engine between batches (queues fill, ``busy`` fires)."""
        self._threadsafe(self._resume.clear)

    def resume_engine(self) -> None:
        """Resume a paused engine."""
        self._threadsafe(self._resume.set)

    # ---------------------------------------------------------- engine task

    def _session_order(self) -> List[_Session]:
        return [self._sessions[source_id] for source_id in sorted(self._sessions)]

    async def _engine_loop(self) -> None:
        """The single consumer: round-robin sessions in source-id order."""
        while True:
            await self._work.wait()
            await self._resume.wait()
            progressed = False
            for session in self._session_order():
                if not self._resume.is_set():
                    break
                if not session.queue:
                    continue
                reply_id, destinations, enqueued_at, seq = session.queue.popleft()
                session.in_flight = True
                self._m_queue_wait.observe(time.perf_counter() - enqueued_at)
                try:
                    outcome = self.engine.submit(session.name, destinations)
                finally:
                    session.in_flight = False
                self.served_batches += 1
                latency = time.perf_counter() - enqueued_at
                self._m_latency.observe(latency)
                self._m_batches.inc()
                self._m_requests.inc(len(destinations))
                self._m_queue_depth.set(len(session.queue), source=session.name)
                self.tracer.record(
                    "serve.batch",
                    span_id("serve", session.name, seq),
                    start=time.time() - latency,
                    duration=latency,
                    source=session.name,
                    n=len(destinations),
                )
                progressed = True
                writer = session.writer
                if writer is not None and not writer.is_closing():
                    try:
                        await write_frame(
                            writer,
                            {
                                "type": "reply",
                                "id": reply_id,
                                "source": session.name,
                                "queue_depth": len(session.queue),
                                **outcome,
                            },
                        )
                    except (ConnectionError, OSError):
                        session.writer = None
            if not progressed:
                if self._stopping:
                    self.engine.flush()
                    return
                self._work.clear()

    # ---------------------------------------------------------- connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        session: Optional[_Session] = None
        try:
            hello = await read_frame(reader)
            if (
                hello.get("type") != "hello"
                or hello.get("protocol") != PROTOCOL_VERSION
            ):
                await write_frame(
                    writer,
                    {"type": "error", "error": f"protocol mismatch: {hello!r}"},
                )
                return
            await write_frame(
                writer,
                {
                    "type": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "pid": os.getpid(),
                    "n_nodes": self.engine.n_nodes,
                    "algorithm": self.engine.algorithm.to_dict(),
                    "backend": self.engine.backend,
                    "queue_limit": self.queue_limit,
                },
            )
            while True:
                try:
                    message = await read_frame(reader)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    OSError,
                ):
                    return
                result = await self._dispatch(message, writer, session)
                if result is _CLOSED:
                    # keep ``session`` pointing at the _Session so the
                    # cleanup below releases the source for rebinding
                    return
                session = result
        except ProtocolError as error:
            try:
                await write_frame(writer, {"type": "error", "error": str(error)})
            except (ConnectionError, OSError):
                pass
        finally:
            if isinstance(session, _Session) and session.writer is writer:
                session.writer = None
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self,
        message: Dict[str, object],
        writer: asyncio.StreamWriter,
        session: Optional[_Session],
    ):
        kind = message.get("type")
        if kind == "open_session":
            return await self._open_session(message, writer, session)
        if kind in ("request", "request_batch"):
            await self._enqueue(message, writer, session)
            return session
        if kind == "stats":
            await write_frame(writer, self._stats_frame())
            return session
        if kind == "metrics":
            await write_frame(
                writer,
                metrics_frame(
                    self.metrics_registry,
                    self.tracer,
                    include_trace=bool(message.get("trace")),
                ),
            )
            return session
        if kind == "drain":
            await self._drain(writer, session)
            return session
        if kind == "close":
            await write_frame(writer, {"type": "closed"})
            return _CLOSED
        await write_frame(
            writer, {"type": "error", "error": f"unexpected message {kind!r}"}
        )
        return session

    async def _open_session(
        self,
        message: Dict[str, object],
        writer: asyncio.StreamWriter,
        session: Optional[_Session],
    ):
        if session is not None:
            await write_frame(
                writer,
                {
                    "type": "error",
                    "error": f"connection already serves source {session.name!r}",
                },
            )
            return session
        if self._stopping:
            await write_frame(
                writer, {"type": "error", "error": "server is draining"}
            )
            return None
        source = message.get("source")
        try:
            state = self.engine.bind(source)
        except ServeError as error:
            await write_frame(writer, {"type": "error", "error": str(error)})
            return None
        existing = self._by_name.get(state.name)
        if existing is not None and existing.writer is not None:
            await write_frame(
                writer,
                {
                    "type": "error",
                    "error": f"source {state.name!r} is already bound by an "
                    "active session",
                },
            )
            return None
        if existing is None:
            existing = _Session(state.name, state.source_id)
            self._sessions[state.source_id] = existing
            self._by_name[state.name] = existing
            self._m_sessions.set(len(self._sessions))
        existing.writer = writer
        await write_frame(
            writer,
            {
                "type": "session",
                "source": state.name,
                "source_id": state.source_id,
                "queue_limit": self.queue_limit,
            },
        )
        return existing

    async def _enqueue(
        self,
        message: Dict[str, object],
        writer: asyncio.StreamWriter,
        session: Optional[_Session],
    ) -> None:
        reply_id = message.get("id")
        if session is None:
            await write_frame(
                writer,
                {
                    "type": "error",
                    "id": reply_id,
                    "error": "open_session before sending requests",
                },
            )
            return
        if self._stopping:
            await write_frame(
                writer,
                {"type": "error", "id": reply_id, "error": "server is draining"},
            )
            return
        if message["type"] == "request":
            raw = [message.get("destination")]
        else:
            raw = message.get("destinations")
        if not isinstance(raw, list) or not raw:
            await write_frame(
                writer,
                {
                    "type": "error",
                    "id": reply_id,
                    "error": "request_batch needs a non-empty destinations list",
                },
            )
            return
        destinations: List[int] = []
        for value in raw:
            if (
                not isinstance(value, int)
                or isinstance(value, bool)
                or not 0 <= value < self.engine.n_nodes
            ):
                await write_frame(
                    writer,
                    {
                        "type": "error",
                        "id": reply_id,
                        "error": f"destination {value!r} outside the "
                        f"{self.engine.n_nodes}-node tree",
                    },
                )
                return
            destinations.append(value)
        if len(session.queue) >= self.queue_limit:
            self._m_busy.inc()
            await write_frame(
                writer,
                {
                    "type": "busy",
                    "id": reply_id,
                    "queue_depth": len(session.queue),
                    "queue_limit": self.queue_limit,
                },
            )
            return
        seq = session.seq
        session.seq = seq + 1
        session.queue.append((reply_id, destinations, time.perf_counter(), seq))
        self._m_queue_depth.set(len(session.queue), source=session.name)
        self._work.set()

    async def _drain(
        self, writer: asyncio.StreamWriter, session: Optional[_Session]
    ) -> None:
        while session is not None and session.pending:
            await asyncio.sleep(0.005)
        self.engine.flush()
        await write_frame(
            writer,
            {
                "type": "drained",
                "source": None if session is None else session.name,
                "n_requests": self.engine.n_requests,
            },
        )

    def _stats_frame(self) -> Dict[str, object]:
        uptime = max(time.monotonic() - self._started, 1e-9)
        table = self.engine.cost_table()
        return {
            "type": "stats",
            "uptime": uptime,
            "req_per_s": self.engine.n_requests / uptime,
            "served_batches": self.served_batches,
            "queue_limit": self.queue_limit,
            "queues": {
                session.name: session.pending
                for session in self._session_order()
            },
            "stopping": self._stopping,
            "engine": self.engine.stats(),
            "cost_table": {
                "name": table.name,
                "columns": list(table.columns),
                "rows": [dict(row) for row in table.rows],
            },
        }


#: Sentinel returned by ``_dispatch`` when the client said ``close``.
_CLOSED = object()


def run_serve(
    listen: str,
    n_nodes: int,
    algorithm: str,
    backend: Optional[str] = None,
    base_seed: int = 0,
    log_dir: Optional[str] = None,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    metrics: Optional[str] = None,
    metrics_snapshot_interval: float = 10.0,
) -> int:
    """Run the live serve daemon until signalled (the ``repro serve`` body).

    Prints ``serve listening on tcp://host:port`` once the listener is up
    (launch scripts wait for it, like the worker daemon's line).  SIGTERM
    and SIGINT drain: queued batches finish serving, the ingest log is
    flushed and closed, the final cost table and a ``serve drained`` line
    are printed, and the process exits 0.

    ``metrics`` (``tcp://HOST:PORT``) mounts the Prometheus/JSON metrics
    endpoint; with a ``log_dir``, a ``metrics.jsonl`` snapshot stream is
    appended next to the ingest segments every ``metrics_snapshot_interval``
    seconds (the replay reader ignores it — it only globs segments).
    """
    host, port = parse_listen_address(listen)
    server = ServeServer(
        host=host,
        port=port,
        n_nodes=n_nodes,
        algorithm=algorithm,
        backend=backend,
        base_seed=base_seed,
        log_dir=log_dir,
        queue_limit=queue_limit,
        announce=True,
    )
    endpoint = start_metrics_server(
        metrics, server.metrics_registry, server.tracer
    )
    if endpoint is not None:
        print(f"metrics listening on {endpoint.url}", flush=True)
    snapshots = None
    if log_dir is not None and metrics_snapshot_interval:
        snapshots = MetricsSnapshotWriter(
            os.path.join(log_dir, "metrics.jsonl"),
            interval=metrics_snapshot_interval,
            registry=server.metrics_registry,
        ).start()
    try:
        asyncio.run(server._main(install_signal_handlers=True))
    except KeyboardInterrupt:
        pass
    finally:
        if snapshots is not None:
            snapshots.stop()
        if endpoint is not None:
            endpoint.stop()
    print(server.engine.cost_table().format_text(), flush=True)
    print(
        f"serve drained ({server.engine.n_requests} requests, "
        f"{len(server.engine.sources)} sources, "
        f"{server.served_batches} batches)",
        flush=True,
    )
    return 0
