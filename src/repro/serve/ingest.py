"""Crash-safe, segment-rotated ingest log for the live serve daemon.

The log is a directory::

    <log>/header.json        # written atomically (temp + os.replace)
    <log>/segment-000000.jsonl
    <log>/segment-000001.jsonl
    ...

``header.json`` pins everything replay needs to rebuild the engine exactly:
the tree size, the algorithm spec, the backend knob, the base seed and the
format version.  It is written with the same atomic idiom as the resilience
store, so a crash during creation can never leave a half-header under the
final name.

Segments are append-only JSONL; every line is ``<sha256-prefix> <json>`` so
each record is self-verifying.  A crash mid-append leaves at most one torn
line at the tail of the *last* segment — the reader detects it (checksum or
JSON failure), drops the tail, and reports it in the
:class:`IngestReport` instead of failing: replay of every acknowledged
record before the tear still works.  Corruption in a *non-final* segment is
different — records after it were acknowledged to clients and silently
skipping them would make replay diverge — so that raises
:class:`~repro.serve.engine.ServeError` unless ``strict=False`` readers
asked to salvage (``allow_mid_loss=True``).

Records are dictionaries with a ``"type"`` key, mirroring the wire frames:

* ``{"type": "bind", "source": name, "source_id": k}`` — a source was bound
  (source ids are assigned in deterministic first-bind order);
* ``{"type": "request", "source_id": k, "destinations": [...]}`` — one
  accepted batch, in engine acceptance order.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.exceptions import ExperimentError
from repro.telemetry.registry import MetricsRegistry, default_registry

__all__ = [
    "INGEST_FORMAT_VERSION",
    "DEFAULT_SEGMENT_BYTES",
    "IngestError",
    "IngestLogReader",
    "IngestReport",
    "IngestWriter",
    "read_ingest_log",
]

#: Bumped when the record or header layout changes; readers refuse unknown
#: versions instead of misinterpreting them.
INGEST_FORMAT_VERSION = 1

#: Rotate to a new segment once the current one exceeds this many bytes.
DEFAULT_SEGMENT_BYTES = 4 << 20

_HEADER_FILE = "header.json"
_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"
_CHECKSUM_CHARS = 12


class IngestError(ExperimentError):
    """Raised for unusable ingest logs (missing, version-mismatched, or
    corrupted in a way that would make replay silently diverge)."""


def _checksum(body: bytes) -> str:
    return hashlib.sha256(body).hexdigest()[:_CHECKSUM_CHARS]


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:06d}{_SEGMENT_SUFFIX}"


def _atomic_write_json(path: Path, document: Dict[str, object]) -> None:
    """Write ``document`` to ``path`` atomically (temp file + ``os.replace``)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    body = json.dumps(document, indent=2, sort_keys=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class IngestWriter:
    """Appends records to a new ingest log, rotating segments by size.

    Creating the writer writes ``header.json`` atomically; :meth:`append`
    encodes, checksums and appends one record line; :meth:`flush` pushes
    buffered lines to the OS (called by the server after every accepted
    batch, and with ``sync=True`` on drain/shutdown for durability).
    """

    def __init__(
        self,
        path: Union[str, Path],
        header: Dict[str, object],
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        if segment_bytes <= 0:
            raise IngestError(f"segment_bytes must be positive, got {segment_bytes}")
        self.path = Path(path)
        self.segment_bytes = segment_bytes
        if self.path.exists() and any(self.path.iterdir()):
            raise IngestError(f"ingest log directory {self.path} is not empty")
        document = dict(header)
        document["format_version"] = INGEST_FORMAT_VERSION
        _atomic_write_json(self.path / _HEADER_FILE, document)
        self._segment_index = 0
        self._segment_size = 0
        self._handle = open(self.path / _segment_name(0), "ab")
        self.records_written = 0
        if registry is None:
            registry = default_registry()
        self._m_bytes = registry.counter(
            "repro_ingest_bytes_total", "Bytes appended to the ingest log."
        )
        self._m_records = registry.counter(
            "repro_ingest_records_total", "Records appended to the ingest log."
        )
        self._m_rotations = registry.counter(
            "repro_ingest_rotations_total", "Ingest log segment rotations."
        )

    def append(self, record: Dict[str, object]) -> None:
        """Append one record (rotating to a fresh segment when full)."""
        if self._handle is None:
            raise IngestError(f"ingest log {self.path} is closed")
        body = json.dumps(record, separators=(",", ":")).encode("utf-8")
        line = _checksum(body).encode("ascii") + b" " + body + b"\n"
        if self._segment_size and self._segment_size + len(line) > self.segment_bytes:
            self._rotate()
        self._handle.write(line)
        self._segment_size += len(line)
        self.records_written += 1
        self._m_bytes.inc(len(line))
        self._m_records.inc()

    def _rotate(self) -> None:
        self.flush(sync=True)
        self._handle.close()
        self._segment_index += 1
        self._segment_size = 0
        self._handle = open(self.path / _segment_name(self._segment_index), "ab")
        self._m_rotations.inc()

    def flush(self, sync: bool = False) -> None:
        """Flush buffered lines; ``sync=True`` additionally fsyncs."""
        if self._handle is None:
            return
        self._handle.flush()
        if sync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush, fsync and close (idempotent)."""
        if self._handle is None:
            return
        self.flush(sync=True)
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "IngestWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


@dataclass
class IngestReport:
    """What reading an ingest log observed beyond the records themselves."""

    segments: int = 0
    records: int = 0
    #: Lines dropped from the torn tail of the final segment (0 = clean).
    dropped: int = 0
    #: Human-readable descriptions of every anomaly encountered.
    anomalies: List[str] = field(default_factory=list)

    @property
    def truncated(self) -> bool:
        """True when a torn tail was detected and dropped."""
        return self.dropped > 0


@dataclass
class IngestLogReader:
    """A fully-read ingest log: header, records, and the read report."""

    path: Path
    header: Dict[str, object]
    records: List[Dict[str, object]]
    report: IngestReport

    def bind_records(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("type") == "bind"]

    def request_records(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("type") == "request"]


def _segment_paths(path: Path) -> List[Path]:
    return sorted(path.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))


def _read_segment(path: Path) -> Tuple[List[Dict[str, object]], List[int]]:
    """Return (valid records, 1-based line numbers of invalid lines).

    Validation stops at the first invalid line: everything after a tear is
    unreachable for replay anyway (the record count in between is unknown).
    """
    records: List[Dict[str, object]] = []
    bad: List[int] = []
    with open(path, "rb") as handle:
        for number, raw in enumerate(handle, start=1):
            line = raw.rstrip(b"\n")
            if not line:
                continue
            checksum, _, body = line.partition(b" ")
            if len(checksum) != _CHECKSUM_CHARS or _checksum(body) != checksum.decode(
                "ascii", "replace"
            ):
                bad.append(number)
                break
            try:
                record = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                bad.append(number)
                break
            if not isinstance(record, dict) or "type" not in record:
                bad.append(number)
                break
            records.append(record)
        remainder = sum(1 for raw in handle if raw.strip())
        if bad:
            bad.extend(range(bad[0] + 1, bad[0] + 1 + remainder))
    return records, bad


def read_ingest_log(
    path: Union[str, Path], allow_mid_loss: bool = False
) -> IngestLogReader:
    """Read an ingest log directory, tolerating a torn tail.

    A torn or corrupt tail in the *final* segment — the only damage a crash
    mid-append can cause — is dropped and reported via the returned
    :class:`IngestReport`, never fatal.  Corruption in an earlier segment
    means acknowledged records are unrecoverable, so it raises
    :class:`IngestError` unless ``allow_mid_loss=True`` explicitly asks to
    salvage what precedes the damage (the loss is still reported).
    """
    root = Path(path)
    header_path = root / _HEADER_FILE
    if not header_path.is_file():
        raise IngestError(f"not an ingest log (no {_HEADER_FILE}): {root}")
    try:
        header = json.loads(header_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise IngestError(f"unreadable ingest header {header_path}: {error}") from None
    version = header.get("format_version")
    if version != INGEST_FORMAT_VERSION:
        raise IngestError(
            f"ingest log {root} has format version {version!r}, "
            f"this reader understands {INGEST_FORMAT_VERSION}"
        )
    segments = _segment_paths(root)
    report = IngestReport(segments=len(segments))
    records: List[Dict[str, object]] = []
    for index, segment in enumerate(segments):
        segment_records, bad = _read_segment(segment)
        if bad:
            message = (
                f"segment {segment.name}: invalid record at line {bad[0]}; "
                f"dropped {len(bad)} line(s)"
            )
            if index != len(segments) - 1 and not allow_mid_loss:
                raise IngestError(
                    f"ingest log {root} is corrupt before its tail ({message}); "
                    "acknowledged records are missing — pass "
                    "allow_mid_loss=True to salvage what precedes the damage"
                )
            report.anomalies.append(message)
            report.dropped += len(bad)
        records.extend(segment_records)
    report.records = len(records)
    return IngestLogReader(path=root, header=header, records=records, report=report)
