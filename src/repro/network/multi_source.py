"""Multi-source self-adjusting network composed of per-source trees.

The introduction of the paper notes that single-source tree networks "can be
combined to form self-adjusting networks which serve multiple sources and whose
topology can be an arbitrary degree-bounded graph".  This module implements
that composition for the datacenter setting: every source node owns a
single-source self-adjusting tree over its destinations; the union of all tree
edges (plus the source-to-root attachment links) forms the reconfigurable
network topology, whose degree stays bounded because each node appears in each
tree at most once and each tree has maximum degree 3 (plus one link for the
source attachment).

The class routes a :class:`repro.network.traffic.TrafficTrace` through the
per-source trees, accumulates the self-adjustment costs, and reports per-source
and network-wide statistics.  It is the substrate used by the datacenter
example and by the multi-source benchmark.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.algorithms.registry import AlgorithmSpec
from repro.core import backend as _backend
from repro.core.cost import RequestCost
from repro.exceptions import AlgorithmError, BackendError
from repro.network.single_source import SingleSourceTreeNetwork
from repro.network.traffic import TrafficTrace
from repro.workloads.base import check_chunk_size
from repro.workloads.spec import DEFAULT_CHUNK_SIZE

__all__ = ["MultiSourceNetwork"]

#: Columns of :meth:`MultiSourceNetwork.per_source_columns`, in order.
PER_SOURCE_COLUMNS = (
    "source",
    "n_requests",
    "total_access_cost",
    "total_adjustment_cost",
    "total_cost",
)


class MultiSourceNetwork:
    """A reconfigurable network built from one self-adjusting tree per source.

    Parameters
    ----------
    n_nodes:
        Number of network nodes; every node can be a destination and the nodes
        listed in ``sources`` additionally act as sources.
    sources:
        The source node identifiers; by default every node is a source.
    algorithm:
        Registry name — or :class:`~repro.algorithms.registry.AlgorithmSpec`,
        the form :class:`repro.plans.NetworkPlan` payloads ship — of the tree
        algorithm used by every source tree.
    base_seed:
        Base seed; source ``s`` uses ``base_seed + s`` for both its placement
        and its algorithm randomness, so the network is fully reproducible.
    keep_records:
        Whether per-request cost records are retained inside each source tree.
    backend:
        Serve backend of every source tree (``"array"``, ``"python"`` or
        ``None``/``"auto"``).  A throughput knob only — per-request costs,
        placements and summaries are identical across backends.
    """

    def __init__(
        self,
        n_nodes: int,
        sources: Optional[Sequence[int]] = None,
        algorithm: Union[str, AlgorithmSpec] = "rotor-push",
        base_seed: int = 0,
        keep_records: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        if n_nodes < 2:
            raise AlgorithmError("a multi-source network needs at least two nodes")
        if backend is not None:
            _backend.resolve_backend(backend)  # validate the name eagerly
        self.n_nodes = n_nodes
        self.algorithm = AlgorithmSpec.coerce(algorithm)
        self.algorithm_name = self.algorithm.name
        self.base_seed = base_seed
        self.keep_records = keep_records
        self.backend = backend
        source_list = list(sources) if sources is not None else list(range(n_nodes))
        if not source_list:
            raise AlgorithmError("a multi-source network needs at least one source")
        for source in source_list:
            if not 0 <= source < n_nodes:
                raise AlgorithmError(f"source {source} outside [0, {n_nodes})")
        self._source_list = source_list
        self._trees: Dict[int, SingleSourceTreeNetwork] = {}
        self._build_trees()

    def _build_trees(self) -> None:
        """(Re)build every source tree from the stored seeds and backend.

        The initial placement depends only on the per-source seeds — never on
        the backend, which selects storage and serve loops — so rebuilding
        with a different backend reproduces bit-identical initial state.
        """
        self._trees = {
            source: SingleSourceTreeNetwork(
                source=source,
                destinations=[node for node in range(self.n_nodes) if node != source],
                algorithm=self.algorithm,
                placement_seed=self.base_seed + source,
                algorithm_seed=self.base_seed + 100_000 + source,
                keep_records=self.keep_records,
                backend=self.backend,
            )
            for source in self._source_list
        }

    # -------------------------------------------------------------- properties

    @property
    def sources(self) -> List[int]:
        """The source node identifiers."""
        return list(self._trees)

    def tree_of(self, source: int) -> SingleSourceTreeNetwork:
        """Return the single-source tree owned by ``source``."""
        try:
            return self._trees[source]
        except KeyError:
            raise AlgorithmError(f"node {source} is not a source of this network") from None

    # ----------------------------------------------------------------- serving

    def serve(self, source: int, destination: int) -> RequestCost:
        """Serve one communication request on the owning source tree."""
        return self.tree_of(source).serve(destination)

    def serve_trace(
        self,
        trace: TrafficTrace,
        backend: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[str, float]:
        """Route a whole traffic trace and return network-wide cost statistics.

        The trace is split into its per-source destination streams (each
        source's requests keep their relative order) and every stream flows
        through the owning tree's ``serve_batch`` dispatch in ``chunk_size``
        chunks — the PR-3 serve fast path lifted to the multi-source
        substrate.  Because the per-source trees are independent, this is
        cost-identical to serving the interleaved trace request by request
        through :meth:`serve`; per-tree record order, placements and all
        summaries match exactly.

        ``backend`` (``"array"``, ``"python"`` or ``None`` = keep the
        network's) selects the serve backend for this pass.  A different
        backend than the network was constructed with is honoured only while
        the network is still pristine — the source trees are then rebuilt
        from their seeds with bit-identical initial placements; once any
        request has been served the tree state cannot be migrated and a
        :class:`~repro.exceptions.BackendError` is raised.
        """
        if trace.n_nodes != self.n_nodes:
            raise AlgorithmError(
                f"trace has {trace.n_nodes} nodes but the network has {self.n_nodes}"
            )
        if backend is not None:
            requested = _backend.resolve_backend(backend)
            current = _backend.resolve_backend(self.backend)
            if requested != current:
                if any(tree.n_served for tree in self._trees.values()):
                    raise BackendError(
                        f"cannot switch serve backend to {backend!r} after "
                        "requests were served; construct the MultiSourceNetwork "
                        f"with backend={backend!r} instead"
                    )
                self.backend = backend
                self._build_trees()
        chunk = (
            DEFAULT_CHUNK_SIZE
            if chunk_size is None
            else check_chunk_size(int(chunk_size))
        )
        for source, destinations in trace.per_source_sequences().items():
            tree = self.tree_of(source)
            for start in range(0, len(destinations), chunk):
                tree.serve_batch(destinations[start : start + chunk])
        return self.cost_summary()

    def serve_trace_stream(
        self, chunks: Iterable[Tuple[Sequence[int], Sequence[int]]]
    ) -> Dict[str, float]:
        """Route a streamed trace and return network-wide cost statistics.

        The streaming twin of :meth:`serve_trace`: ``chunks`` is an iterable
        of ``(sources, destinations)`` chunk pairs — exactly what
        :meth:`repro.network.traffic.TrafficSpec.iter_trace` yields — served
        as they arrive, so the trace is never resident.  Each chunk is split
        into its per-source destination runs (relative order preserved) and
        fed through the owning trees' ``serve_batch`` dispatch; because the
        per-source trees are independent, the result is bit-identical to
        serving the interleaved trace request by request, whatever the chunk
        size.  This is what pool workers executing a
        :class:`repro.plans.NetworkPlan` run.
        """
        for sources, destinations in chunks:
            per_source: Dict[int, List[int]] = {}
            for source, destination in zip(sources, destinations):
                per_source.setdefault(source, []).append(destination)
            for source, batch in per_source.items():
                self.tree_of(source).serve_batch(batch)
        return self.cost_summary()

    # --------------------------------------------------------------- reporting

    def per_source_columns(self) -> Dict[str, List[float]]:
        """Return per-source cost totals as parallel columns.

        The columnar transport format of network-trial results (mirroring the
        PR-3 columnar record ledger): one list per
        :data:`PER_SOURCE_COLUMNS` entry, rows ordered by ascending source
        identifier.  Workers return these instead of nested per-source
        dictionaries, so a paper-scale fan-out ships five flat lists per
        trial rather than thousands of dict objects.
        """
        columns: Dict[str, List[float]] = {name: [] for name in PER_SOURCE_COLUMNS}
        for source in sorted(self._trees):
            summary = self._trees[source].cost_summary()
            columns["source"].append(source)
            columns["n_requests"].append(summary["n_requests"])
            columns["total_access_cost"].append(summary["total_access_cost"])
            columns["total_adjustment_cost"].append(summary["total_adjustment_cost"])
            columns["total_cost"].append(summary["total_cost"])
        return columns

    def per_source_summary(self) -> Dict[int, Dict[str, float]]:
        """Return the cost summary of every source tree."""
        return {source: tree.cost_summary() for source, tree in self._trees.items()}

    def cost_summary(self) -> Dict[str, float]:
        """Return aggregate network statistics (totals over all source trees)."""
        totals = {
            "n_requests": 0.0,
            "total_access_cost": 0.0,
            "total_adjustment_cost": 0.0,
            "total_cost": 0.0,
        }
        for tree in self._trees.values():
            summary = tree.cost_summary()
            totals["n_requests"] += summary["n_requests"]
            totals["total_access_cost"] += summary["total_access_cost"]
            totals["total_adjustment_cost"] += summary["total_adjustment_cost"]
            totals["total_cost"] += summary["total_cost"]
        if totals["n_requests"]:
            totals["average_total_cost"] = totals["total_cost"] / totals["n_requests"]
            totals["average_access_cost"] = (
                totals["total_access_cost"] / totals["n_requests"]
            )
            totals["average_adjustment_cost"] = (
                totals["total_adjustment_cost"] / totals["n_requests"]
            )
        else:
            totals["average_total_cost"] = 0.0
            totals["average_access_cost"] = 0.0
            totals["average_adjustment_cost"] = 0.0
        totals["n_sources"] = float(len(self._trees))
        totals["algorithm"] = self.algorithm_name
        return totals
