"""Multi-source self-adjusting network composed of per-source trees.

The introduction of the paper notes that single-source tree networks "can be
combined to form self-adjusting networks which serve multiple sources and whose
topology can be an arbitrary degree-bounded graph".  This module implements
that composition for the datacenter setting: every source node owns a
single-source self-adjusting tree over its destinations; the union of all tree
edges (plus the source-to-root attachment links) forms the reconfigurable
network topology, whose degree stays bounded because each node appears in each
tree at most once and each tree has maximum degree 3 (plus one link for the
source attachment).

The class routes a :class:`repro.network.traffic.TrafficTrace` through the
per-source trees, accumulates the self-adjustment costs, and reports per-source
and network-wide statistics.  It is the substrate used by the datacenter
example and by the multi-source benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.cost import RequestCost
from repro.exceptions import AlgorithmError
from repro.network.single_source import SingleSourceTreeNetwork
from repro.network.traffic import TrafficTrace

__all__ = ["MultiSourceNetwork"]


class MultiSourceNetwork:
    """A reconfigurable network built from one self-adjusting tree per source.

    Parameters
    ----------
    n_nodes:
        Number of network nodes; every node can be a destination and the nodes
        listed in ``sources`` additionally act as sources.
    sources:
        The source node identifiers; by default every node is a source.
    algorithm:
        Registry name of the tree algorithm used by every source tree.
    base_seed:
        Base seed; source ``s`` uses ``base_seed + s`` for both its placement
        and its algorithm randomness, so the network is fully reproducible.
    keep_records:
        Whether per-request cost records are retained inside each source tree.
    """

    def __init__(
        self,
        n_nodes: int,
        sources: Optional[Sequence[int]] = None,
        algorithm: str = "rotor-push",
        base_seed: int = 0,
        keep_records: bool = False,
    ) -> None:
        if n_nodes < 2:
            raise AlgorithmError("a multi-source network needs at least two nodes")
        self.n_nodes = n_nodes
        self.algorithm_name = algorithm
        source_list = list(sources) if sources is not None else list(range(n_nodes))
        if not source_list:
            raise AlgorithmError("a multi-source network needs at least one source")
        self._trees: Dict[int, SingleSourceTreeNetwork] = {}
        for source in source_list:
            if not 0 <= source < n_nodes:
                raise AlgorithmError(f"source {source} outside [0, {n_nodes})")
            destinations = [node for node in range(n_nodes) if node != source]
            self._trees[source] = SingleSourceTreeNetwork(
                source=source,
                destinations=destinations,
                algorithm=algorithm,
                placement_seed=base_seed + source,
                algorithm_seed=base_seed + 100_000 + source,
                keep_records=keep_records,
            )

    # -------------------------------------------------------------- properties

    @property
    def sources(self) -> List[int]:
        """The source node identifiers."""
        return list(self._trees)

    def tree_of(self, source: int) -> SingleSourceTreeNetwork:
        """Return the single-source tree owned by ``source``."""
        try:
            return self._trees[source]
        except KeyError:
            raise AlgorithmError(f"node {source} is not a source of this network") from None

    # ----------------------------------------------------------------- serving

    def serve(self, source: int, destination: int) -> RequestCost:
        """Serve one communication request on the owning source tree."""
        return self.tree_of(source).serve(destination)

    def serve_trace(self, trace: TrafficTrace) -> Dict[str, float]:
        """Route a whole traffic trace and return network-wide cost statistics.

        Requests are served strictly in trace order (each on its source's
        tree); offline per-source preparation is not used here because the
        trace is consumed online, mirroring the reconfigurable-network setting.
        """
        if trace.n_nodes != self.n_nodes:
            raise AlgorithmError(
                f"trace has {trace.n_nodes} nodes but the network has {self.n_nodes}"
            )
        for request in trace:
            self.serve(request.source, request.destination)
        return self.cost_summary()

    # --------------------------------------------------------------- reporting

    def per_source_summary(self) -> Dict[int, Dict[str, float]]:
        """Return the cost summary of every source tree."""
        return {source: tree.cost_summary() for source, tree in self._trees.items()}

    def cost_summary(self) -> Dict[str, float]:
        """Return aggregate network statistics (totals over all source trees)."""
        totals = {
            "n_requests": 0.0,
            "total_access_cost": 0.0,
            "total_adjustment_cost": 0.0,
            "total_cost": 0.0,
        }
        for tree in self._trees.values():
            summary = tree.cost_summary()
            totals["n_requests"] += summary["n_requests"]
            totals["total_access_cost"] += summary["total_access_cost"]
            totals["total_adjustment_cost"] += summary["total_adjustment_cost"]
            totals["total_cost"] += summary["total_cost"]
        if totals["n_requests"]:
            totals["average_total_cost"] = totals["total_cost"] / totals["n_requests"]
            totals["average_access_cost"] = (
                totals["total_access_cost"] / totals["n_requests"]
            )
            totals["average_adjustment_cost"] = (
                totals["total_adjustment_cost"] / totals["n_requests"]
            )
        else:
            totals["average_total_cost"] = 0.0
            totals["average_access_cost"] = 0.0
            totals["average_adjustment_cost"] = 0.0
        totals["n_sources"] = float(len(self._trees))
        totals["algorithm"] = self.algorithm_name
        return totals
