"""Reconfigurable-datacenter substrate: traffic, single- and multi-source networks."""

from repro.network.multi_source import MultiSourceNetwork
from repro.network.single_source import SingleSourceTreeNetwork
from repro.network.topology import (
    degree_statistics,
    multi_source_topology,
    single_source_topology,
    theoretical_degree_bound,
)
from repro.network.traffic import (
    INTERLEAVINGS,
    TrafficRequest,
    TrafficSpec,
    TrafficTrace,
    iter_interleaving,
    trace_from_workloads,
    uniform_trace,
)

__all__ = [
    "INTERLEAVINGS",
    "MultiSourceNetwork",
    "SingleSourceTreeNetwork",
    "TrafficRequest",
    "TrafficSpec",
    "TrafficTrace",
    "iter_interleaving",
    "degree_statistics",
    "multi_source_topology",
    "single_source_topology",
    "theoretical_degree_bound",
    "trace_from_workloads",
    "uniform_trace",
]
