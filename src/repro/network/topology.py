"""Topology views of the reconfigurable network.

The physical topology induced by a multi-source self-adjusting network is the
union of the per-source tree edges (between the *network nodes currently
hosted* at adjacent tree positions) plus one attachment link from each source
to the network node at the root of its tree.  This module materialises that
view as a :mod:`networkx` graph and computes the degree statistics that make
the "bounded degree" claim of the composition concrete: each source tree
contributes at most 3 edges to any hosted node (binary tree degree) plus the
attachment link at its root, so the total degree is at most ``4 * n_sources``
and in practice far lower.
"""

from __future__ import annotations

from typing import Dict

import networkx as nx

from repro.network.multi_source import MultiSourceNetwork
from repro.network.single_source import SingleSourceTreeNetwork

__all__ = [
    "single_source_topology",
    "multi_source_topology",
    "degree_statistics",
    "theoretical_degree_bound",
]


def single_source_topology(tree_network: SingleSourceTreeNetwork) -> nx.Graph:
    """Return the current physical topology of one source tree as a graph.

    Graph nodes are network node identifiers (the source plus its
    destinations); edges connect network nodes hosted at adjacent tree
    positions, and one edge attaches the source to the network node currently
    at the tree root.  Filler (padding) elements are skipped.
    """
    graph = nx.Graph()
    graph.add_node(tree_network.source)
    algorithm = tree_network.tree_algorithm
    tree = algorithm.network.tree
    hosted: Dict[int, int] = {}
    for destination in tree_network.destinations():
        element = tree_network.element_of(destination)
        hosted[algorithm.network.node_of(element)] = destination
        graph.add_node(destination)

    for node, destination in hosted.items():
        if node == tree.root:
            graph.add_edge(tree_network.source, destination, kind="attachment")
        else:
            parent = tree.parent(node)
            parent_destination = hosted.get(parent)
            if parent_destination is not None:
                graph.add_edge(parent_destination, destination, kind="tree")
    # If the root hosts a filler element, attach the source to nothing yet; the
    # source node still appears in the graph so degree statistics are complete.
    return graph


def multi_source_topology(network: MultiSourceNetwork) -> nx.Graph:
    """Return the union topology of all source trees of a multi-source network."""
    union = nx.Graph()
    union.add_nodes_from(range(network.n_nodes))
    for source in network.sources:
        tree_graph = single_source_topology(network.tree_of(source))
        for first, second, data in tree_graph.edges(data=True):
            if union.has_edge(first, second):
                union[first][second]["multiplicity"] = (
                    union[first][second].get("multiplicity", 1) + 1
                )
            else:
                union.add_edge(first, second, multiplicity=1, kind=data.get("kind", "tree"))
    return union


def degree_statistics(graph: nx.Graph) -> Dict[str, float]:
    """Return max / mean degree and edge count of a topology graph."""
    degrees = [degree for _, degree in graph.degree()]
    if not degrees:
        return {"max_degree": 0.0, "mean_degree": 0.0, "n_edges": 0.0, "n_nodes": 0.0}
    return {
        "max_degree": float(max(degrees)),
        "mean_degree": sum(degrees) / len(degrees),
        "n_edges": float(graph.number_of_edges()),
        "n_nodes": float(graph.number_of_nodes()),
    }


def theoretical_degree_bound(n_sources: int) -> int:
    """Return the worst-case degree of any node in the union topology.

    Within one source tree a hosted network node touches at most 3 tree edges
    (its parent and two children) and possibly the source attachment link at
    the root, so ``n_sources`` trees contribute at most ``4 * n_sources``.
    """
    return 4 * n_sources
