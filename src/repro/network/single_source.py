"""Single-source reconfigurable tree network.

A :class:`SingleSourceTreeNetwork` is the datacenter-facing wrapper around one
self-adjusting tree algorithm: a *source* network node is attached to the root
of a complete binary tree whose nodes host the source's possible communication
*destinations*.  Serving a communication request to destination ``d`` costs the
destination's current depth plus one (the number of optical hops from the
source), and the tree may then be reconfigured by swapping adjacent
destinations, at unit cost per swap - exactly the model of the paper.

The wrapper takes care of the bookkeeping the raw algorithms do not do:
mapping arbitrary destination identifiers onto tree elements and padding the
universe up to the next complete-binary-tree size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.algorithms.base import OnlineTreeAlgorithm, RunResult
from repro.algorithms.registry import AlgorithmSpec, make_algorithm
from repro.core.cost import RequestCost
from repro.exceptions import AlgorithmError
from repro.types import ElementId
from repro.workloads.corpus import next_complete_size

__all__ = ["SingleSourceTreeNetwork"]


class SingleSourceTreeNetwork:
    """A source node plus a self-adjusting tree of its destinations.

    Parameters
    ----------
    source:
        Identifier of the source network node (kept for reporting only).
    destinations:
        The destination identifiers reachable from this source.  They are
        mapped to tree elements in the order given; the universe is padded to
        the next ``2**k - 1`` size with unused filler elements.
    algorithm:
        Registry name — or :class:`~repro.algorithms.registry.AlgorithmSpec`,
        whose params become constructor keyword arguments — of the tree
        algorithm to use (default ``"rotor-push"``).
    placement_seed, algorithm_seed:
        Seeds for the initial random placement and for the algorithm's own
        randomness (Random-Push).
    keep_records:
        Whether to keep per-request cost records.
    backend:
        Serve backend of the underlying tree (``"array"``, ``"python"`` or
        ``None``/``"auto"``, see :mod:`repro.core.backend`).  A throughput
        knob only; costs are identical across backends.
    """

    def __init__(
        self,
        source: int,
        destinations: Sequence[int],
        algorithm: Union[str, AlgorithmSpec] = "rotor-push",
        placement_seed: Optional[int] = None,
        algorithm_seed: Optional[int] = None,
        keep_records: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        if not destinations:
            raise AlgorithmError(f"source {source} has no destinations")
        unique = list(dict.fromkeys(destinations))
        if source in unique:
            raise AlgorithmError(f"source {source} cannot be its own destination")
        algorithm = AlgorithmSpec.coerce(algorithm)
        self.source = source
        self.algorithm_name = algorithm.name
        self.backend = backend
        self._element_of: Dict[int, ElementId] = {
            destination: index for index, destination in enumerate(unique)
        }
        self._destination_of: Dict[ElementId, int] = {
            index: destination for destination, index in self._element_of.items()
        }
        universe = next_complete_size(len(unique))
        self._tree_algorithm: OnlineTreeAlgorithm = make_algorithm(
            algorithm,
            n_nodes=universe,
            placement_seed=placement_seed,
            seed=algorithm_seed,
            keep_records=keep_records,
            backend=backend,
        )
        self._served = 0

    # -------------------------------------------------------------- properties

    @property
    def n_destinations(self) -> int:
        """Number of real (non-filler) destinations."""
        return len(self._element_of)

    @property
    def tree_size(self) -> int:
        """Size of the underlying (padded) complete binary tree."""
        return self._tree_algorithm.network.tree.n_nodes

    @property
    def tree_algorithm(self) -> OnlineTreeAlgorithm:
        """The underlying self-adjusting tree algorithm instance."""
        return self._tree_algorithm

    @property
    def n_served(self) -> int:
        """Number of communication requests served so far."""
        return self._served

    def destinations(self) -> List[int]:
        """Return the destination identifiers handled by this source tree."""
        return list(self._element_of)

    # ----------------------------------------------------------------- serving

    def element_of(self, destination: int) -> ElementId:
        """Return the tree element hosting ``destination``."""
        try:
            return self._element_of[destination]
        except KeyError:
            raise AlgorithmError(
                f"destination {destination} is not reachable from source {self.source}"
            ) from None

    def destination_depth(self, destination: int) -> int:
        """Return the current depth (level) of ``destination`` in the source tree."""
        return self._tree_algorithm.network.level_of(self.element_of(destination))

    def serve(self, destination: int) -> RequestCost:
        """Serve one communication request to ``destination`` and return its cost."""
        record = self._tree_algorithm.serve(self.element_of(destination))
        self._served += 1
        return record

    def serve_batch(self, destinations: Sequence[int]) -> int:
        """Serve a destination chunk through the tree's batch dispatch.

        The multi-source fast path: destinations are translated to elements
        in bulk and handed to
        :meth:`repro.algorithms.base.OnlineTreeAlgorithm.serve_batch`, which
        vectorises on the array backend and runs the scalar fast loop
        otherwise.  Costs, placements and records are identical to serving
        the chunk one :meth:`serve` call at a time.
        """
        elements = [self.element_of(destination) for destination in destinations]
        served = self._tree_algorithm.serve_batch(elements)
        self._served += served
        return served

    def serve_sequence(self, destinations: Sequence[int]) -> RunResult:
        """Serve a whole destination sequence and return the aggregated result.

        Offline tree algorithms (Static-Opt) are prepared with the translated
        element sequence before serving, mirroring
        :meth:`repro.algorithms.base.OnlineTreeAlgorithm.run`.
        """
        elements = [self.element_of(destination) for destination in destinations]
        result = self._tree_algorithm.run(
            elements, metadata={"source": self.source, "algorithm": self.algorithm_name}
        )
        self._served += len(elements)
        return result

    # --------------------------------------------------------------- reporting

    def cost_summary(self) -> Dict[str, float]:
        """Return the cost totals accumulated by this source tree so far."""
        summary = self._tree_algorithm.network.ledger.snapshot_totals()
        summary["source"] = self.source
        summary["n_destinations"] = self.n_destinations
        return summary
