"""Command-line interface for the repro library.

Installed as the ``repro`` console script (also runnable via
``python -m repro``).  Subcommands:

``list``
    List the registered algorithms, workload kinds, adversary kinds,
    experiment scales and golden plans.
``demo``
    Run a small comparison of all algorithms on a combined-locality workload
    and print the cost table (internally: a :class:`repro.plans.TrialPlan`).
``run``
    Execute a declarative experiment plan — a JSON file or a shipped golden
    plan name (``q1`` … ``q5``, ``smoke``).  The ``--jobs``/``--chunk-size``/
    ``--backend`` flags override the plan document's run shape (CLI wins);
    ``--cache-dir``/``--resume``/``--max-retries`` attach the resilience
    layer (checkpointed, resumable, fault-isolated execution);
    ``--executor tcp://host:port[,host:port...]`` dispatches the trials to a
    remote worker fleet (see ``repro worker``) with byte-identical results.
``worker``
    Start a long-lived trial worker daemon serving a coordinator over TCP
    (``repro worker --listen tcp://0.0.0.0:7777``).
``serve``
    Start the live traffic endpoint (``repro serve --listen
    tcp://0.0.0.0:7000 --nodes 63 --algorithm rotor-push --log-dir LOG``):
    concurrent client sessions, bounded queues with explicit backpressure,
    live stats, and a crash-safe replayable ingest log.  SIGTERM/SIGINT
    drain before exit.
``replay``
    Rerun a recorded ingest log bit-identically through ``repro.run``
    (``repro replay LOG``): prints the same per-source cost table the live
    engine accumulated.
``cache``
    Inspect or maintain a checkpoint store: ``stats`` (entry count, bytes,
    orphaned temp files), ``verify`` (re-check every entry's checksum) and
    ``prune`` (drop corrupt entries and orphaned temp files).
``experiment``
    Run one named experiment (``q1`` ... ``q5``, ``table1`` or ``all``) at a
    chosen scale, print the resulting tables and optionally write CSV files.
``report``
    Run every experiment and write the Markdown report (EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.algorithms.registry import PAPER_ALGORITHMS, available_algorithms
from repro.exceptions import ReproError
from repro.experiments import (
    SCALES,
    generate_report,
    run_q1,
    run_q2,
    run_q3,
    run_q4_histogram,
    run_q4_wireframe,
    run_q5,
    run_table1,
)
from repro.experiments.plotting import histogram_chart
from repro.plans import (
    RunConfig,
    TrialPlan,
    golden_plan_names,
    load,
    load_golden_plan,
    plan_with_overrides,
)
from repro.plans.execute import run as run_plan
from repro.resilience.store import DEFAULT_CACHE_DIR, ResultStore
from repro.sim.results import ResultTable
from repro.workloads.adversarial import registered_adversary_kinds
from repro.workloads.spec import WorkloadSpec, registered_kinds

__all__ = ["main", "build_parser", "resolve_run_plan"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-adjusting tree networks with rotor walks - reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def jobs_type(value: str) -> int:
        jobs = int(value)
        if jobs == 0:
            raise argparse.ArgumentTypeError(
                "must be positive (worker count) or negative (all CPUs), not 0"
            )
        return jobs

    jobs_help = (
        "worker processes for trial execution (1 = serial, negative = all CPUs); "
        "results are bit-identical for every value"
    )

    def chunk_type(value: str) -> int:
        chunk = int(value)
        if chunk <= 0:
            raise argparse.ArgumentTypeError("must be a positive request count")
        return chunk

    chunk_help = (
        "streaming chunk size for spec-shipped workloads (requests per chunk; "
        "memory/batching knob only, never changes results)"
    )

    backend_help = (
        "serve backend: 'array' = typed-array placement + vectorised batch "
        "serving (NumPy), 'python' = canonical scalar loops, 'auto' (default) "
        "picks per algorithm; results are bit-identical for every choice"
    )

    def add_backend_argument(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--backend",
            choices=["auto", "array", "python"],
            default=None,
            help=backend_help,
        )

    subparsers.add_parser("list", help="list algorithms, scales and golden plans")

    demo = subparsers.add_parser("demo", help="run a quick algorithm comparison")
    demo.add_argument("--nodes", type=int, default=255, help="tree size (2**k - 1)")
    demo.add_argument("--requests", type=int, default=5_000, help="requests per trial")
    demo.add_argument("--trials", type=int, default=2, help="number of trials")
    demo.add_argument("--zipf", type=float, default=1.6, help="Zipf exponent")
    demo.add_argument("--repeat", type=float, default=0.5, help="repeat probability")
    demo.add_argument("--jobs", type=jobs_type, default=1, help=jobs_help)
    demo.add_argument("--chunk-size", type=chunk_type, default=None, help=chunk_help)
    add_backend_argument(demo)

    run = subparsers.add_parser(
        "run",
        help="execute a declarative experiment plan (JSON file or golden name)",
    )
    run.add_argument(
        "plan",
        help=(
            "path to a plan JSON file, or the name of a shipped golden plan "
            "(see 'repro list')"
        ),
    )
    run.add_argument("--csv-dir", default=None, help="directory for CSV exports")
    run.add_argument("--jobs", type=jobs_type, default=None, help=jobs_help)
    run.add_argument("--chunk-size", type=chunk_type, default=None, help=chunk_help)

    def trials_type(value: str) -> int:
        trials = int(value)
        if trials <= 0:
            raise argparse.ArgumentTypeError("must be a positive trial count")
        return trials

    def requests_type(value: str) -> int:
        requests = int(value)
        if requests < 0:
            raise argparse.ArgumentTypeError("must be a non-negative request count")
        return requests

    run.add_argument(
        "--trials",
        type=trials_type,
        default=None,
        help=(
            "override the trial count of every stage in the plan document "
            "(CLI wins, recursively) — e.g. to smoke-test a big plan"
        ),
    )
    run.add_argument(
        "--requests",
        type=requests_type,
        default=None,
        help=(
            "override the per-trial request count of every stage in the plan "
            "document (CLI wins, recursively); for network plans this counts "
            "requests per source"
        ),
    )

    def retries_type(value: str) -> int:
        retries = int(value)
        if retries < 0:
            raise argparse.ArgumentTypeError("must be a non-negative retry count")
        return retries

    run.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "checkpoint store directory: every completed trial is persisted "
            "there as it finishes (overrides the plan document's cache_dir, "
            "recursively); results are bit-identical with or without a cache"
        ),
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help=(
            "skip trials whose checkpoint entry already exists in the cache "
            "(needs --cache-dir or a cache_dir in the plan document); "
            "corrupted entries are detected and re-run"
        ),
    )
    run.add_argument(
        "--max-retries",
        type=retries_type,
        default=None,
        help=(
            "per-trial retry budget for transient worker failures, and the "
            "pool-rebuild budget before degrading to serial execution "
            "(overrides the plan document, recursively; robustness knob "
            "only, never changes results)"
        ),
    )
    run.add_argument(
        "--executor",
        default=None,
        help=(
            "dispatch trials to a remote worker fleet instead of the local "
            "pool: tcp://HOST:PORT[,HOST:PORT...][?lease=SECONDS&heartbeat="
            "SECONDS] (workers started with 'repro worker'); lost workers "
            "are requeued and the run degrades to local execution if the "
            "whole fleet is lost — results are byte-identical either way"
        ),
    )

    def seconds_type(field: str):
        def parse(value: str) -> float:
            try:
                seconds = float(value)
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"{field} must be a number of seconds, got {value!r}"
                ) from None
            if not seconds > 0:
                raise argparse.ArgumentTypeError(
                    f"{field} must be a positive number of seconds, got {value!r}"
                )
            return seconds

        return parse

    run.add_argument(
        "--lease",
        type=seconds_type("--lease"),
        default=None,
        help=(
            "seconds a distributed lease survives without a heartbeat before "
            "the payload is requeued (needs --executor; overrides any "
            "?lease= in the address)"
        ),
    )
    run.add_argument(
        "--heartbeat",
        type=seconds_type("--heartbeat"),
        default=None,
        help=(
            "heartbeat cadence workers are asked to keep while computing "
            "(needs --executor; overrides any ?heartbeat= in the address)"
        ),
    )
    add_backend_argument(run)

    worker = subparsers.add_parser(
        "worker",
        help="start a trial worker daemon for distributed execution",
    )
    worker.add_argument(
        "--listen",
        default="tcp://127.0.0.1:0",
        help=(
            "address to listen on, tcp://HOST:PORT (default "
            "tcp://127.0.0.1:0 — port 0 picks a free port, printed on "
            "startup); point coordinators at it via 'repro run --executor'"
        ),
    )
    worker.add_argument(
        "--metrics",
        default=None,
        metavar="tcp://HOST:PORT",
        help=(
            "mount the Prometheus/JSON metrics endpoint on this address "
            "(GET /metrics, /metrics.json, /trace.json; scrape with "
            "'repro metrics')"
        ),
    )

    def worker_heartbeat_type(value: str) -> float:
        try:
            seconds = float(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--heartbeat must be a number of seconds, got {value!r}"
            ) from None
        if not seconds > 0:
            raise argparse.ArgumentTypeError(
                f"--heartbeat must be a positive number of seconds, got {value!r}"
            )
        return seconds

    worker.add_argument(
        "--heartbeat",
        type=worker_heartbeat_type,
        default=None,
        help=(
            "default heartbeat cadence (seconds) for leases that don't "
            "carry one; a coordinator-specified cadence always wins"
        ),
    )

    serve = subparsers.add_parser(
        "serve",
        help="start the live traffic endpoint (replayable ingest, live stats)",
    )
    serve.add_argument(
        "--listen",
        default="tcp://127.0.0.1:0",
        help=(
            "address to listen on, tcp://HOST:PORT (default "
            "tcp://127.0.0.1:0 — port 0 picks a free port, printed on "
            "startup); drive it with repro.serve.client"
        ),
    )
    serve.add_argument(
        "--nodes", type=int, default=63, help="tree size per source (2**k - 1)"
    )
    serve.add_argument(
        "--algorithm",
        default="rotor-push",
        help="online algorithm every source's tree runs (see 'repro list')",
    )
    serve.add_argument(
        "--base-seed",
        type=int,
        default=0,
        help=(
            "base of the per-source seed windows; replaying the ingest log "
            "reproduces the exact per-source costs for any value"
        ),
    )
    serve.add_argument(
        "--log-dir",
        default=None,
        help=(
            "ingest-log directory (created, must not exist non-empty): every "
            "accepted request is appended crash-safely for 'repro replay'"
        ),
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help=(
            "max pending batches per session before requests are answered "
            "with 'busy' backpressure instead of being buffered"
        ),
    )
    serve.add_argument(
        "--metrics",
        default=None,
        metavar="tcp://HOST:PORT",
        help=(
            "mount the Prometheus/JSON metrics endpoint on this address "
            "(GET /metrics, /metrics.json, /trace.json; scrape with "
            "'repro metrics')"
        ),
    )

    def snapshot_interval_type(value: str) -> float:
        try:
            seconds = float(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--metrics-snapshot-interval must be a number of seconds, "
                f"got {value!r}"
            ) from None
        if not seconds > 0:
            raise argparse.ArgumentTypeError(
                "--metrics-snapshot-interval must be a positive number of "
                f"seconds, got {value!r}"
            )
        return seconds

    serve.add_argument(
        "--metrics-snapshot-interval",
        type=snapshot_interval_type,
        default=10.0,
        help=(
            "seconds between JSONL metrics snapshots appended to "
            "<log-dir>/metrics.jsonl (only with --log-dir; the replay "
            "reader ignores the file)"
        ),
    )
    add_backend_argument(serve)

    replay = subparsers.add_parser(
        "replay",
        help="rerun a recorded ingest log bit-identically via repro.run",
    )
    replay.add_argument("log", help="ingest-log directory written by 'repro serve'")
    replay.add_argument("--jobs", type=jobs_type, default=None, help=jobs_help)
    replay.add_argument("--chunk-size", type=chunk_type, default=None, help=chunk_help)
    replay.add_argument(
        "--csv-dir", default=None, help="directory for CSV exports"
    )
    replay.add_argument(
        "--allow-mid-loss",
        action="store_true",
        help=(
            "salvage a log corrupted before its tail (replays what precedes "
            "the damage; a torn tail alone never needs this)"
        ),
    )
    add_backend_argument(replay)

    cache = subparsers.add_parser(
        "cache",
        help="inspect or maintain a checkpoint store",
    )
    cache.add_argument(
        "action",
        choices=["stats", "verify", "prune"],
        help=(
            "stats: entry count, byte footprint and orphaned temp files; "
            "verify: re-check every entry's length and checksum; "
            "prune: delete corrupt entries and orphaned temp files"
        ),
    )
    cache.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"checkpoint store directory (default: {DEFAULT_CACHE_DIR})",
    )
    cache.add_argument(
        "--json",
        action="store_true",
        help=(
            "machine-readable JSON output (stats action: entry/byte/orphan/"
            "corrupt counts) for CI and scrapers"
        ),
    )

    metrics = subparsers.add_parser(
        "metrics",
        help="scrape and render metrics from a running daemon",
    )
    metrics.add_argument(
        "address",
        help=(
            "what to scrape: http://HOST:PORT for a daemon's --metrics "
            "endpoint, or tcp://HOST:PORT for a daemon's main protocol port "
            "(worker or serve — both answer a 'metrics' frame)"
        ),
    )
    metrics.add_argument(
        "--json",
        action="store_true",
        help="print the raw registry snapshot as JSON instead of Prometheus text",
    )
    metrics.add_argument(
        "--trace",
        action="store_true",
        help="also fetch and print the span ring buffer (JSON)",
    )

    experiment = subparsers.add_parser("experiment", help="run one paper experiment")
    experiment.add_argument(
        "name",
        choices=["q1", "q2", "q3", "q4", "q5", "table1", "all"],
        help="experiment to run",
    )
    experiment.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    experiment.add_argument("--csv-dir", default=None, help="directory for CSV exports")
    experiment.add_argument("--jobs", type=jobs_type, default=1, help=jobs_help)
    experiment.add_argument("--chunk-size", type=chunk_type, default=None, help=chunk_help)
    add_backend_argument(experiment)

    report = subparsers.add_parser("report", help="run all experiments and write EXPERIMENTS.md")
    report.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    report.add_argument("--output", default="EXPERIMENTS.md", help="output Markdown path")
    report.add_argument("--jobs", type=jobs_type, default=1, help=jobs_help)
    report.add_argument("--chunk-size", type=chunk_type, default=None, help=chunk_help)
    add_backend_argument(report)

    return parser


def _print_table(table: ResultTable, csv_dir: Optional[str]) -> None:
    print(table.format_text())
    print()
    if csv_dir is not None:
        path = Path(csv_dir) / f"{table.name}.csv"
        table.to_csv(str(path))
        print(f"(written to {path})")
        print()


def _print_result(result: object, csv_dir: Optional[str]) -> None:
    """Print any plan result: tables, stage dicts, the Q4 histogram pair."""
    if isinstance(result, ResultTable):
        _print_table(result, csv_dir)
        return
    if isinstance(result, dict):
        for value in result.values():
            _print_result(value, csv_dir)
        return
    if isinstance(result, tuple) and len(result) == 2 and isinstance(result[1], dict):
        histogram, summary = result
        print(histogram_chart("per-request cost difference", histogram))
        if "mean_difference" in summary:
            print(f"mean difference: {summary['mean_difference']:+.5f}")
        print()
        return
    print(result)


def _command_list() -> int:
    print("Algorithms:")
    for name in available_algorithms():
        marker = "*" if name in PAPER_ALGORITHMS else " "
        print(f"  {marker} {name}")
    print("(* = compared in the paper's evaluation)")
    print()
    print("Workload kinds (WorkloadSpec.create / plan documents):")
    for name in registered_kinds():
        print(f"  {name}")
    print()
    print("Adversary kinds (AdversarySpec.create / adversarial payloads):")
    for name in registered_adversary_kinds():
        print(f"  {name}")
    print()
    print("Experiment scales:")
    for name, scale in SCALES.items():
        print(
            f"  {name:8s} nodes={scale.n_nodes:6d} requests={scale.n_requests:8d} "
            f"trials={scale.n_trials}"
        )
    print()
    print("Golden plans (repro run <name>):")
    for name in golden_plan_names():
        print(f"  {name}")
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    plan = TrialPlan(
        name="demo",
        n_nodes=args.nodes,
        workload=WorkloadSpec.create(
            "combined-locality",
            n_elements=args.nodes,
            zipf_exponent=args.zipf,
            repeat_probability=args.repeat,
        ),
        algorithms=tuple(PAPER_ALGORITHMS),
        config=RunConfig(
            n_requests=args.requests,
            n_trials=args.trials,
            n_jobs=args.jobs,
            chunk_size=args.chunk_size,
            backend=args.backend,
        ),
    )
    print(run_plan(plan).format_text())
    return 0


def resolve_run_plan(args: argparse.Namespace):
    """Resolve the ``run`` subcommand's plan with CLI overrides applied.

    The positional argument names either a JSON file (when the path exists)
    or a shipped golden plan.  Flags given on the command line override the
    plan document's run shape, recursively over nested stages — the override
    precedence is "CLI wins", pinned by the CLI tests.
    """
    from repro.dist.protocol import compose_executor_address

    path = Path(args.plan)
    if path.is_file():
        plan = load(path)
    else:
        plan = load_golden_plan(args.plan)
    executor = compose_executor_address(
        getattr(args, "executor", None),
        lease=getattr(args, "lease", None),
        heartbeat=getattr(args, "heartbeat", None),
    )
    return plan_with_overrides(
        plan,
        n_jobs=args.jobs,
        chunk_size=args.chunk_size,
        backend=args.backend,
        n_trials=getattr(args, "trials", None),
        n_requests=getattr(args, "requests", None),
        max_retries=getattr(args, "max_retries", None),
        cache_dir=getattr(args, "cache_dir", None),
        executor=executor,
    )


def _command_run(args: argparse.Namespace) -> int:
    try:
        plan = resolve_run_plan(args)
        result = run_plan(plan, resume=args.resume)
    except ReproError as error:
        # malformed documents, unknown registry names, unsatisfiable
        # backends, bad run shapes — all surface as one clean message
        print(f"repro run: {error}", file=sys.stderr)
        return 2
    _print_result(result, args.csv_dir)
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    from repro.dist.protocol import DEFAULT_HEARTBEAT_INTERVAL
    from repro.dist.worker import run_worker  # lazy: keeps CLI import light

    heartbeat = args.heartbeat
    if heartbeat is None:
        heartbeat = DEFAULT_HEARTBEAT_INTERVAL
    try:
        run_worker(args.listen, metrics=args.metrics, heartbeat=heartbeat)
    except ReproError as error:
        print(f"repro worker: {error}", file=sys.stderr)
        return 2
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import run_serve  # lazy: keeps CLI import light

    try:
        return run_serve(
            args.listen,
            n_nodes=args.nodes,
            algorithm=args.algorithm,
            backend=args.backend,
            base_seed=args.base_seed,
            log_dir=args.log_dir,
            queue_limit=args.queue_limit,
            metrics=args.metrics,
            metrics_snapshot_interval=args.metrics_snapshot_interval,
        )
    except ReproError as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 2


def _command_metrics(args: argparse.Namespace) -> int:
    from repro.telemetry.export import scrape  # lazy: keeps CLI import light
    from repro.telemetry.registry import render_prometheus

    try:
        result = scrape(args.address, include_trace=args.trace)
    except ReproError as error:
        print(f"repro metrics: {error}", file=sys.stderr)
        return 2
    try:
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True))
            return 0
        sys.stdout.write(render_prometheus(result["metrics"]))
        if args.trace and result.get("trace") is not None:
            trace = result["trace"]
            print(
                f"# trace: {len(trace['spans'])} spans "
                f"(capacity {trace['capacity']}, dropped {trace['dropped']})"
            )
            for span in trace["spans"]:
                duration = span.get("duration")
                timing = "" if duration is None else f" {duration:.6f}s"
                attrs = "".join(
                    f" {key}={value!r}"
                    for key, value in sorted(span["attrs"].items())
                )
                print(f"# span {span['id']} {span['name']}{timing}{attrs}")
    except BrokenPipeError:
        # a downstream consumer (e.g. `| grep -q`) closed the pipe early;
        # swap stdout for devnull so the interpreter's exit flush stays quiet
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    return 0


def _command_replay(args: argparse.Namespace) -> int:
    from repro.serve.ingest import read_ingest_log
    from repro.serve.replay import build_replay_plan

    try:
        log = read_ingest_log(args.log, allow_mid_loss=args.allow_mid_loss)
        for anomaly in log.report.anomalies:
            print(f"repro replay: ingest log anomaly: {anomaly}", file=sys.stderr)
        plan = plan_with_overrides(
            build_replay_plan(log),
            n_jobs=args.jobs,
            chunk_size=args.chunk_size,
            backend=args.backend,
        )
        result = run_plan(plan)
    except ReproError as error:
        print(f"repro replay: {error}", file=sys.stderr)
        return 2
    _print_result(result, args.csv_dir)
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    store = ResultStore(args.cache_dir)
    if args.action == "stats":
        stats = store.stats()
        if getattr(args, "json", False):
            report = store.verify()
            print(
                json.dumps(
                    {
                        "cache_dir": str(store.root),
                        "entries": stats["entries"],
                        "bytes": stats["bytes"],
                        "orphans": stats["orphans"],
                        "corrupt": len(report["corrupt"]),
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        print(f"cache directory: {store.root}")
        print(f"entries:         {stats['entries']}")
        print(f"bytes:           {stats['bytes']}")
        print(f"orphaned temps:  {stats['orphans']}")
        return 0
    if args.action == "verify":
        report = store.verify()
        print(f"cache directory: {store.root}")
        print(f"ok entries:      {len(report['ok'])}")
        print(f"corrupt entries: {len(report['corrupt'])}")
        for key in report["corrupt"]:
            print(f"  corrupt: {key}")
        return 1 if report["corrupt"] else 0
    removed = store.prune()
    print(f"cache directory: {store.root}")
    print(f"removed corrupt entries: {removed['corrupt']}")
    print(f"removed orphaned temps:  {removed['orphans']}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    name, scale, csv_dir, jobs = args.name, args.scale, args.csv_dir, args.jobs
    chunk, backend = args.chunk_size, args.backend
    if name in ("q1", "all"):
        for table in run_q1(
            scale, n_jobs=jobs, chunk_size=chunk, backend=backend
        ).values():
            _print_table(table, csv_dir)
    if name in ("q2", "all"):
        _print_table(
            run_q2(scale, n_jobs=jobs, chunk_size=chunk, backend=backend), csv_dir
        )
    if name in ("q3", "all"):
        _print_table(
            run_q3(scale, n_jobs=jobs, chunk_size=chunk, backend=backend), csv_dir
        )
    if name in ("q4", "all"):
        _print_table(
            run_q4_wireframe(scale, n_jobs=jobs, chunk_size=chunk, backend=backend),
            csv_dir,
        )
        histogram, summary = run_q4_histogram(
            scale, n_jobs=jobs, chunk_size=chunk, backend=backend
        )
        print(histogram_chart("Rotor-Push minus Random-Push (access cost)", histogram))
        print(f"mean difference: {summary['mean_difference']:+.5f}")
        print()
    if name in ("q5", "all"):
        for table in run_q5(scale, n_jobs=jobs, backend=backend).values():
            _print_table(table, csv_dir)
    if name in ("table1", "all"):
        _print_table(run_table1(), csv_dir)
    return 0


def _command_report(args: argparse.Namespace) -> int:
    report = generate_report(
        scale=args.scale,
        path=args.output,
        n_jobs=args.jobs,
        chunk_size=args.chunk_size,
        backend=args.backend,
    )
    print(f"wrote {args.output} ({len(report.splitlines())} lines)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "demo":
        return _command_demo(args)
    if args.command == "run":
        return _command_run(args)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "replay":
        return _command_replay(args)
    if args.command == "cache":
        return _command_cache(args)
    if args.command == "metrics":
        return _command_metrics(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "report":
        return _command_report(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
