"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses indicate which subsystem
detected the problem (tree geometry, element mapping, rotor state, cost
accounting, workload generation or experiment configuration).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TreeStructureError(ReproError):
    """Raised when a tree is constructed or indexed inconsistently.

    Examples include a node count that does not correspond to a complete binary
    tree, a node index outside ``[0, n)``, or asking for the parent of the root.
    """


class MappingError(ReproError):
    """Raised when the element-to-node bijection is violated or misused.

    The library maintains a bijection ``nd : E -> T`` between elements and tree
    nodes; any operation that would break it (duplicate placement, unknown
    element, mismatched sizes) raises this error.
    """


class RotorStateError(ReproError):
    """Raised for invalid rotor-pointer state or rotor operations.

    For instance toggling the pointer of a leaf node, or querying the global
    path of a tree whose rotor state has a different shape.
    """


class SwapError(ReproError):
    """Raised when a swap operation is not allowed.

    Swaps must involve two adjacent nodes (parent and child); when the marking
    discipline is enforced, at least one endpoint must already be marked.
    """


class CostAccountingError(ReproError):
    """Raised when cost bookkeeping is used inconsistently.

    For example closing a request record twice, or charging adjustment cost
    outside of an open request.
    """


class AlgorithmError(ReproError):
    """Raised when an online algorithm is misconfigured or misused.

    Typical causes: requesting an element outside the element universe, or
    running an offline algorithm (such as Static-Opt) without preparing it with
    the request sequence first.
    """


class WorkloadError(ReproError):
    """Raised when a workload generator receives invalid parameters.

    For example a repeat probability outside ``[0, 1]``, a non-positive request
    count, or a Zipf exponent that is not strictly positive.
    """


class ExperimentError(ReproError):
    """Raised when an experiment or benchmark harness is configured incorrectly."""


class PlanError(ReproError):
    """Raised for invalid experiment plans (see :mod:`repro.plans`).

    Covers malformed plan documents (missing keys, wrong types), plans that
    reference unknown algorithm or workload registry names, and plan-level
    configuration conflicts.  Environment-level problems (e.g. a backend that
    cannot run here) keep their dedicated exception types."""


class FaultInjectionError(ReproError):
    """Raised by a deliberately injected transient fault (see
    :mod:`repro.resilience.faults`).

    The fault-injection harness uses this type for its ``"exception"`` mode so
    that tests can distinguish an injected failure from a genuine bug; the
    executor treats it like any other transient worker exception (retried
    under the active :class:`repro.resilience.RetryPolicy`).
    """


class BackendError(ReproError):
    """Raised for unknown serve-backend names or unsatisfiable backend requests.

    The serve path accepts ``backend="array"``, ``"python"`` or ``"auto"``
    (see :mod:`repro.core.backend`); anything else raises this error.
    """
