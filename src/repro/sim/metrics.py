"""Per-request metrics, time series and histograms.

Several of the paper's figures are not simple cost totals: Figure 5b is a
histogram of the per-request access-cost difference between Rotor-Push and
Random-Push, and some analyses need sliding-window cost averages.  This module
provides the small numeric helpers for those, so experiments stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.algorithms.base import RunResult
from repro.exceptions import ExperimentError

__all__ = [
    "access_cost_series",
    "adjustment_cost_series",
    "total_cost_series",
    "moving_average",
    "per_request_cost_difference",
    "Histogram",
    "histogram_of_differences",
]


def access_cost_series(result: RunResult) -> List[int]:
    """Return the per-request access costs of a run (requires kept records)."""
    _require_records(result)
    return [record.access_cost for record in result.per_request]


def adjustment_cost_series(result: RunResult) -> List[int]:
    """Return the per-request adjustment costs of a run (requires kept records)."""
    _require_records(result)
    return [record.adjustment_cost for record in result.per_request]


def total_cost_series(result: RunResult) -> List[int]:
    """Return the per-request total costs of a run (requires kept records)."""
    _require_records(result)
    return [record.total_cost for record in result.per_request]


def _require_records(result: RunResult) -> None:
    if result.n_requests and not result.per_request:
        raise ExperimentError(
            "per-request records were not kept for this run; "
            "re-run with keep_records=True"
        )


def moving_average(values: Sequence[float], window: int) -> List[float]:
    """Return the sliding-window average of ``values`` (window clipped at the start)."""
    if window <= 0:
        raise ExperimentError(f"window must be positive, got {window}")
    averages: List[float] = []
    running = 0.0
    for index, value in enumerate(values):
        running += float(value)
        if index >= window:
            running -= float(values[index - window])
            averages.append(running / window)
        else:
            averages.append(running / (index + 1))
    return averages


def per_request_cost_difference(
    first: RunResult,
    second: RunResult,
    which: str = "access",
) -> List[int]:
    """Return the per-request cost difference ``first - second``.

    Both runs must have served the same number of requests (normally the very
    same sequence).  ``which`` selects ``"access"``, ``"adjustment"`` or
    ``"total"`` costs.
    """
    selectors = {
        "access": access_cost_series,
        "adjustment": adjustment_cost_series,
        "total": total_cost_series,
    }
    if which not in selectors:
        raise ExperimentError(f"which must be one of {sorted(selectors)}, got {which!r}")
    series_first = selectors[which](first)
    series_second = selectors[which](second)
    if len(series_first) != len(series_second):
        raise ExperimentError(
            "runs served different numbers of requests "
            f"({len(series_first)} vs {len(series_second)})"
        )
    return [a - b for a, b in zip(series_first, series_second)]


@dataclass(frozen=True)
class Histogram:
    """A simple integer-valued histogram with probability normalisation.

    Attributes
    ----------
    counts:
        Mapping from value to occurrence count.
    total:
        Total number of samples.
    """

    counts: Dict[int, int]
    total: int

    def probability(self, value: int) -> float:
        """Return the empirical probability of ``value``."""
        if self.total == 0:
            return 0.0
        return self.counts.get(value, 0) / self.total

    def mean(self) -> float:
        """Return the sample mean."""
        if self.total == 0:
            return 0.0
        return sum(value * count for value, count in self.counts.items()) / self.total

    def support(self) -> List[int]:
        """Return the sorted list of observed values."""
        return sorted(self.counts)

    def as_rows(self) -> List[Tuple[int, int, float]]:
        """Return ``(value, count, probability)`` rows sorted by value."""
        return [(value, self.counts[value], self.probability(value)) for value in self.support()]


def histogram_of_differences(differences: Sequence[int]) -> Histogram:
    """Build a :class:`Histogram` from integer samples (e.g. per-request cost differences)."""
    counts: Dict[int, int] = {}
    for value in differences:
        counts[int(value)] = counts.get(int(value), 0) + 1
    return Histogram(counts=counts, total=len(differences))
