"""Single-run simulation engine.

The engine glues together a workload, an algorithm and the cost model: it
builds (or receives) an algorithm instance, feeds it a request sequence and
returns the :class:`repro.algorithms.base.RunResult`, enriched with workload
metadata and locality statistics so that downstream experiment code never has
to recompute them.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.algorithms.base import OnlineTreeAlgorithm, RunResult
from repro.algorithms.registry import AlgorithmSpec, make_algorithm
from repro.analysis.entropy import locality_summary
from repro.exceptions import ExperimentError
from repro.types import ElementId
from repro.workloads.base import WorkloadGenerator

__all__ = [
    "simulate",
    "simulate_algorithm_on_sequence",
    "simulate_stream",
    "simulate_workload",
]


def simulate_algorithm_on_sequence(
    algorithm: OnlineTreeAlgorithm,
    sequence: Iterable[ElementId],
    metadata: Optional[dict] = None,
    with_locality_stats: bool = False,
) -> RunResult:
    """Run a pre-built algorithm instance over ``sequence`` and return the result."""
    sequence = list(sequence)
    extra = dict(metadata or {})
    if with_locality_stats:
        extra["locality"] = locality_summary(sequence)
    return algorithm.run(sequence, metadata=extra)


def simulate(
    algorithm_name: Union[str, AlgorithmSpec],
    sequence: Iterable[ElementId],
    n_nodes: Optional[int] = None,
    depth: Optional[int] = None,
    placement_seed: Optional[int] = None,
    seed: Optional[int] = None,
    keep_records: bool = True,
    metadata: Optional[dict] = None,
    with_locality_stats: bool = False,
    backend: Optional[str] = None,
    **algorithm_kwargs,
) -> RunResult:
    """Build an algorithm by name (or spec) and run it over ``sequence``.

    This is the main entry point used by experiments and examples: it hides
    the registry/factory plumbing and attaches the algorithm parameters to the
    result metadata.  ``algorithm_name`` may be a registry name or an
    :class:`~repro.algorithms.registry.AlgorithmSpec` — the form
    :class:`~repro.sim.runner.TrialPayload` ships, whose params become
    constructor keyword arguments.  ``backend`` selects the serve backend
    (:mod:`repro.core.backend`); costs are identical across backends.
    """
    algorithm = make_algorithm(
        algorithm_name,
        n_nodes=n_nodes,
        depth=depth,
        placement_seed=placement_seed,
        seed=seed,
        keep_records=keep_records,
        backend=backend,
        **algorithm_kwargs,
    )
    extra = dict(metadata or {})
    extra.setdefault("placement_seed", placement_seed)
    extra.setdefault("algorithm_seed", seed)
    return simulate_algorithm_on_sequence(
        algorithm, sequence, metadata=extra, with_locality_stats=with_locality_stats
    )


def simulate_stream(
    algorithm_name: Union[str, AlgorithmSpec],
    chunks: Iterable[Iterable[ElementId]],
    n_nodes: Optional[int] = None,
    depth: Optional[int] = None,
    placement_seed: Optional[int] = None,
    seed: Optional[int] = None,
    keep_records: bool = True,
    metadata: Optional[dict] = None,
    backend: Optional[str] = None,
    **algorithm_kwargs,
) -> RunResult:
    """Build an algorithm by name (or spec) and serve a chunked request stream.

    The streaming twin of :func:`simulate`: ``chunks`` is an iterable of
    request chunks (typically
    :meth:`repro.workloads.base.WorkloadGenerator.iter_requests`), served as
    they are produced so the full sequence is never materialised.  Pool
    workers use this to turn a shipped :class:`repro.workloads.spec.WorkloadSpec`
    into costs without ever holding a paper-scale sequence.  On the array
    backend each chunk is served as one vectorised batch; chunks may be NumPy
    arrays (see ``iter_requests(..., as_array=True)``) so Zipf draws never
    round-trip through Python ints.
    """
    algorithm = make_algorithm(
        algorithm_name,
        n_nodes=n_nodes,
        depth=depth,
        placement_seed=placement_seed,
        seed=seed,
        keep_records=keep_records,
        backend=backend,
        **algorithm_kwargs,
    )
    extra = dict(metadata or {})
    extra.setdefault("placement_seed", placement_seed)
    extra.setdefault("algorithm_seed", seed)
    return algorithm.run_stream(chunks, metadata=extra)


def simulate_workload(
    algorithm_name: str,
    workload: WorkloadGenerator,
    n_requests: int,
    placement_seed: Optional[int] = None,
    seed: Optional[int] = None,
    keep_records: bool = True,
    with_locality_stats: bool = False,
    backend: Optional[str] = None,
    **algorithm_kwargs,
) -> RunResult:
    """Generate ``n_requests`` from ``workload`` and run ``algorithm_name`` on them.

    The tree size is taken from the workload's universe size, which therefore
    must be a complete-binary-tree size (``2**k - 1``).
    """
    if n_requests < 0:
        raise ExperimentError(f"n_requests must be non-negative, got {n_requests}")
    sequence = workload.generate(n_requests)
    metadata = {"workload": workload.parameters(), "n_requests": len(sequence)}
    return simulate(
        algorithm_name,
        sequence,
        n_nodes=workload.n_elements,
        placement_seed=placement_seed,
        seed=seed,
        keep_records=keep_records,
        metadata=metadata,
        with_locality_stats=with_locality_stats,
        backend=backend,
        **algorithm_kwargs,
    )
