"""Simulation engine, multi-trial runners, parameter sweeps and result tables."""

from repro.sim.engine import (
    simulate,
    simulate_algorithm_on_sequence,
    simulate_stream,
    simulate_workload,
)
from repro.sim.metrics import (
    Histogram,
    access_cost_series,
    adjustment_cost_series,
    histogram_of_differences,
    moving_average,
    per_request_cost_difference,
    total_cost_series,
)
from repro.sim.parallel import map_ordered, resolve_n_jobs, shutdown_persistent_pool
from repro.sim.results import ResultTable, summarise_values
from repro.sim.runner import (
    AggregatedOutcome,
    SequenceSource,
    SpecSource,
    TrialOutcome,
    TrialPayload,
    TrialRunner,
    compare_algorithms,
)
from repro.sim.sweep import ParameterSweep

__all__ = [
    "AggregatedOutcome",
    "Histogram",
    "ParameterSweep",
    "ResultTable",
    "SequenceSource",
    "SpecSource",
    "TrialOutcome",
    "TrialPayload",
    "TrialRunner",
    "map_ordered",
    "resolve_n_jobs",
    "shutdown_persistent_pool",
    "simulate_stream",
    "access_cost_series",
    "adjustment_cost_series",
    "compare_algorithms",
    "histogram_of_differences",
    "moving_average",
    "per_request_cost_difference",
    "simulate",
    "simulate_algorithm_on_sequence",
    "simulate_workload",
    "summarise_values",
    "total_cost_series",
]
