"""Simulation engine, multi-trial runners, parameter sweeps and result tables."""

from repro.sim.engine import simulate, simulate_algorithm_on_sequence, simulate_workload
from repro.sim.metrics import (
    Histogram,
    access_cost_series,
    adjustment_cost_series,
    histogram_of_differences,
    moving_average,
    per_request_cost_difference,
    total_cost_series,
)
from repro.sim.parallel import map_ordered, resolve_n_jobs
from repro.sim.results import ResultTable, summarise_values
from repro.sim.runner import (
    AggregatedOutcome,
    TrialOutcome,
    TrialRunner,
    compare_algorithms,
)
from repro.sim.sweep import ParameterSweep

__all__ = [
    "AggregatedOutcome",
    "Histogram",
    "ParameterSweep",
    "ResultTable",
    "TrialOutcome",
    "TrialRunner",
    "map_ordered",
    "resolve_n_jobs",
    "access_cost_series",
    "adjustment_cost_series",
    "compare_algorithms",
    "histogram_of_differences",
    "moving_average",
    "per_request_cost_difference",
    "simulate",
    "simulate_algorithm_on_sequence",
    "simulate_workload",
    "summarise_values",
    "total_cost_series",
]
