"""Parameter sweeps over workload and tree parameters.

Every figure of the paper's evaluation is a sweep: over tree sizes (Q1), over
the temporal-locality parameter ``p`` (Q2), over the Zipf exponent ``a`` (Q3)
or over the two-dimensional ``(p, a)`` grid (Q4).  :class:`ParameterSweep`
captures that pattern once: it takes a list of parameter points, a workload
factory parameterised by the point, the algorithms to compare, and produces a
:class:`repro.sim.results.ResultTable` with one row per (point, algorithm).
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ExperimentError
from repro.resilience.retry import RetryPolicy
from repro.sim.results import ResultTable
from repro.sim.runner import _UNSET, TrialPayload, TrialRunner, execute_payloads
from repro.workloads.base import WorkloadGenerator, check_chunk_size
from repro.workloads.spec import WorkloadSpec

__all__ = ["SweepPoint", "ParameterSweep"]

#: A sweep point is a dictionary of named parameter values.
SweepPoint = Dict[str, object]

#: Factory building a workload (or a spec) for a sweep point and a trial seed.
PointWorkloadFactory = Callable[[SweepPoint, int], Union[WorkloadGenerator, WorkloadSpec]]


class ParameterSweep:
    """Run a set of algorithms over a list of parameter points.

    Parameters
    ----------
    points:
        The parameter points (each a dict of named values, e.g.
        ``{"p": 0.3}`` or ``{"p": 0.5, "a": 1.6}``).  Points may also carry a
        per-point ``n_nodes`` entry, which overrides the sweep-wide tree size
        (used by the Q1 size sweep).
    workload_factory:
        Callable building the workload for a given point and trial seed.
    algorithms:
        Registry names of the algorithms to run.
    n_nodes:
        Default tree size for points that do not carry their own.
    config:
        The run shape as a :class:`repro.plans.RunConfig` (preferred);
        mutually exclusive with the loose keyword arguments below.  The
        declarative :class:`repro.plans.SweepPlan` executes through this
        path.
    n_requests, n_trials, base_seed:
        Passed to the underlying :class:`repro.sim.runner.TrialRunner`.
    n_jobs:
        Worker processes for the fan-out.  All (point, trial, algorithm) work
        items of the sweep are flattened into a single pool pass, so the
        parallelism is not throttled by small per-point trial counts; results
        are reassembled in order and bit-identical to a serial run.
    chunk_size:
        Streaming chunk size for spec-shipped workloads (memory/batching knob
        only; never changes the generated stream).
    backend:
        Serve backend shipped inside every payload (``"array"``,
        ``"python"`` or ``None``/``"auto"``); a throughput knob only, results
        are bit-identical across backends.
    """

    def __init__(
        self,
        points: Sequence[SweepPoint],
        workload_factory: PointWorkloadFactory,
        algorithms: Sequence[str],
        n_nodes: Optional[int] = None,
        n_requests: int = _UNSET,
        n_trials: int = _UNSET,
        base_seed: int = _UNSET,
        algorithm_kwargs: Optional[Dict[str, dict]] = None,
        n_jobs: int = _UNSET,
        chunk_size: Optional[int] = _UNSET,
        backend: Optional[str] = _UNSET,
        config=None,
    ) -> None:
        if not points:
            raise ExperimentError("a sweep needs at least one parameter point")
        if not algorithms:
            raise ExperimentError("a sweep needs at least one algorithm")
        if config is not None:
            explicit = [
                name
                for name, value in (
                    ("n_requests", n_requests),
                    ("n_trials", n_trials),
                    ("base_seed", base_seed),
                    ("n_jobs", n_jobs),
                    ("chunk_size", chunk_size),
                    ("backend", backend),
                )
                if value is not _UNSET
            ]
            if explicit:
                raise ExperimentError(
                    "ParameterSweep: pass either config= or the loose keyword "
                    f"arguments {explicit}, not both"
                )
            n_requests = config.n_requests
            n_trials = config.n_trials
            base_seed = config.base_seed
            n_jobs = config.n_jobs
            chunk_size = config.chunk_size
            backend = config.backend
            self.keep_records = config.keep_records
            self.worker_timeout = getattr(config, "worker_timeout", None)
            self.max_retries = getattr(config, "max_retries", 2)
            self.cache_dir = getattr(config, "cache_dir", None)
            self.executor = getattr(config, "executor", None)
        else:
            n_requests = 10_000 if n_requests is _UNSET else n_requests
            n_trials = 3 if n_trials is _UNSET else n_trials
            base_seed = 0 if base_seed is _UNSET else base_seed
            n_jobs = 1 if n_jobs is _UNSET else n_jobs
            chunk_size = None if chunk_size is _UNSET else chunk_size
            backend = None if backend is _UNSET else backend
            self.keep_records = False
            self.worker_timeout = None
            self.max_retries = 2
            self.cache_dir = None
            self.executor = None
        self.points = [dict(point) for point in points]
        self.workload_factory = workload_factory
        self.algorithms = list(algorithms)
        self.n_nodes = n_nodes
        self.n_requests = n_requests
        self.n_trials = n_trials
        self.base_seed = base_seed
        self.algorithm_kwargs = algorithm_kwargs or {}
        self.n_jobs = n_jobs
        if chunk_size is not None:
            check_chunk_size(int(chunk_size))
        self.chunk_size = chunk_size
        self.backend = backend

    def _point_runner(self, n_nodes: int) -> TrialRunner:
        """Build the per-point runner without tripping the legacy-knob shim."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return TrialRunner(
                n_nodes=n_nodes,
                n_requests=self.n_requests,
                n_trials=self.n_trials,
                base_seed=self.base_seed,
                keep_records=self.keep_records,
                chunk_size=self.chunk_size,
                backend=self.backend,
            )

    def _point_columns(self) -> List[str]:
        columns: List[str] = []
        for point in self.points:
            for key in point:
                if key not in columns:
                    columns.append(key)
        return columns

    def build_payloads(self) -> Tuple[List[TrialPayload], List[Tuple[SweepPoint, int]]]:
        """Phase 1: describe every (point, trial, algorithm) work item.

        The whole sweep is flattened into one payload list so a single pool
        pass can load-balance across points.  Spec-able workloads cross as
        specs — no request sequence is ever materialised in the parent
        process, so phase 1 is O(points × trials) small objects instead of
        O(points × trials × n_requests) resident integers.

        Returns the flat payload list plus ``(point, n_payloads)`` pairs for
        reassembly.
        """
        all_payloads: List[TrialPayload] = []
        point_chunks: List[Tuple[SweepPoint, int]] = []
        for point in self.points:
            n_nodes = int(point.get("n_nodes", self.n_nodes or 0))
            if n_nodes <= 0:
                raise ExperimentError(
                    f"sweep point {point} has no tree size and no default was given"
                )
            runner = self._point_runner(n_nodes)
            sources = runner.trial_sources(
                lambda seed, _point=point: self.workload_factory(_point, seed)
            )
            payloads = runner.build_payloads(
                self.algorithms, sources, self.algorithm_kwargs
            )
            all_payloads.extend(payloads)
            point_chunks.append((point, len(payloads)))
        return all_payloads, point_chunks

    def run(self, table_name: str = "sweep") -> ResultTable:
        """Execute the sweep and return a result table.

        The table has one row per (point, algorithm) with the mean per-request
        access, adjustment and total cost over the trials.
        """
        point_columns = self._point_columns()
        columns = point_columns + [
            "algorithm",
            "mean_access_cost",
            "mean_adjustment_cost",
            "mean_total_cost",
            "n_trials",
        ]
        table = ResultTable(name=table_name, columns=columns)

        all_payloads, point_chunks = self.build_payloads()

        # Phase 2: execute (serially or on the pool) and aggregate per point.
        all_results = execute_payloads(
            all_payloads,
            self.n_jobs,
            worker_timeout=self.worker_timeout,
            retry=RetryPolicy.for_config(self),
            cache_dir=self.cache_dir,
            executor=self.executor,
        )
        cursor = 0
        for point, n_payloads in point_chunks:
            payloads = all_payloads[cursor : cursor + n_payloads]
            results = all_results[cursor : cursor + n_payloads]
            cursor += n_payloads
            outcomes = TrialRunner.collect(self.algorithms, payloads, results)
            aggregated = TrialRunner.aggregate(outcomes)
            for algorithm in self.algorithms:
                summary = aggregated[algorithm]
                row: Dict[str, object] = {key: point.get(key) for key in point_columns}
                row.update(
                    {
                        "algorithm": algorithm,
                        "mean_access_cost": summary.mean_access_cost,
                        "mean_adjustment_cost": summary.mean_adjustment_cost,
                        "mean_total_cost": summary.mean_total_cost,
                        "n_trials": summary.n_trials,
                    }
                )
                table.add_row(**row)
        return table
