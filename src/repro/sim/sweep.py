"""Parameter sweeps over workload and tree parameters.

Every figure of the paper's evaluation is a sweep: over tree sizes (Q1), over
the temporal-locality parameter ``p`` (Q2), over the Zipf exponent ``a`` (Q3)
or over the two-dimensional ``(p, a)`` grid (Q4).  :class:`ParameterSweep`
captures that pattern once: it takes a list of parameter points, a workload
factory parameterised by the point, the algorithms to compare, and produces a
:class:`repro.sim.results.ResultTable` with one row per (point, algorithm).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.sim.parallel import map_ordered
from repro.sim.results import ResultTable
from repro.sim.runner import TrialPayload, TrialRunner, _execute_trial
from repro.workloads.base import WorkloadGenerator

__all__ = ["SweepPoint", "ParameterSweep"]

#: A sweep point is a dictionary of named parameter values.
SweepPoint = Dict[str, object]

#: Factory building a workload for a sweep point and a trial seed.
PointWorkloadFactory = Callable[[SweepPoint, int], WorkloadGenerator]


class ParameterSweep:
    """Run a set of algorithms over a list of parameter points.

    Parameters
    ----------
    points:
        The parameter points (each a dict of named values, e.g.
        ``{"p": 0.3}`` or ``{"p": 0.5, "a": 1.6}``).  Points may also carry a
        per-point ``n_nodes`` entry, which overrides the sweep-wide tree size
        (used by the Q1 size sweep).
    workload_factory:
        Callable building the workload for a given point and trial seed.
    algorithms:
        Registry names of the algorithms to run.
    n_nodes:
        Default tree size for points that do not carry their own.
    n_requests, n_trials, base_seed:
        Passed to the underlying :class:`repro.sim.runner.TrialRunner`.
    n_jobs:
        Worker processes for the fan-out.  All (point, trial, algorithm) work
        items of the sweep are flattened into a single pool pass, so the
        parallelism is not throttled by small per-point trial counts; results
        are reassembled in order and bit-identical to a serial run.
    """

    def __init__(
        self,
        points: Sequence[SweepPoint],
        workload_factory: PointWorkloadFactory,
        algorithms: Sequence[str],
        n_nodes: Optional[int] = None,
        n_requests: int = 10_000,
        n_trials: int = 3,
        base_seed: int = 0,
        algorithm_kwargs: Optional[Dict[str, dict]] = None,
        n_jobs: int = 1,
    ) -> None:
        if not points:
            raise ExperimentError("a sweep needs at least one parameter point")
        if not algorithms:
            raise ExperimentError("a sweep needs at least one algorithm")
        self.points = [dict(point) for point in points]
        self.workload_factory = workload_factory
        self.algorithms = list(algorithms)
        self.n_nodes = n_nodes
        self.n_requests = n_requests
        self.n_trials = n_trials
        self.base_seed = base_seed
        self.algorithm_kwargs = algorithm_kwargs or {}
        self.n_jobs = n_jobs

    def _point_columns(self) -> List[str]:
        columns: List[str] = []
        for point in self.points:
            for key in point:
                if key not in columns:
                    columns.append(key)
        return columns

    def run(self, table_name: str = "sweep") -> ResultTable:
        """Execute the sweep and return a result table.

        The table has one row per (point, algorithm) with the mean per-request
        access, adjustment and total cost over the trials.
        """
        point_columns = self._point_columns()
        columns = point_columns + [
            "algorithm",
            "mean_access_cost",
            "mean_adjustment_cost",
            "mean_total_cost",
            "n_trials",
        ]
        table = ResultTable(name=table_name, columns=columns)

        # Phase 1: materialise every (point, trial, algorithm) work item.  The
        # whole sweep is flattened into one payload list so a single pool pass
        # can load-balance across points.
        all_payloads: List[TrialPayload] = []
        point_chunks: List[Tuple[SweepPoint, List[TrialPayload]]] = []
        for point in self.points:
            n_nodes = int(point.get("n_nodes", self.n_nodes or 0))
            if n_nodes <= 0:
                raise ExperimentError(
                    f"sweep point {point} has no tree size and no default was given"
                )
            runner = TrialRunner(
                n_nodes=n_nodes,
                n_requests=self.n_requests,
                n_trials=self.n_trials,
                base_seed=self.base_seed,
            )
            sequences = runner.trial_sequences(
                lambda seed, _point=point: self.workload_factory(_point, seed)
            )
            payloads = runner.build_payloads(
                self.algorithms, sequences, self.algorithm_kwargs
            )
            all_payloads.extend(payloads)
            point_chunks.append((point, payloads))

        # Phase 2: execute (serially or on the pool) and aggregate per point.
        all_results = map_ordered(_execute_trial, all_payloads, self.n_jobs)
        cursor = 0
        for point, payloads in point_chunks:
            results = all_results[cursor : cursor + len(payloads)]
            cursor += len(payloads)
            outcomes = TrialRunner.collect(self.algorithms, payloads, results)
            aggregated = TrialRunner.aggregate(outcomes)
            for algorithm in self.algorithms:
                summary = aggregated[algorithm]
                row: Dict[str, object] = {key: point.get(key) for key in point_columns}
                row.update(
                    {
                        "algorithm": algorithm,
                        "mean_access_cost": summary.mean_access_cost,
                        "mean_adjustment_cost": summary.mean_adjustment_cost,
                        "mean_total_cost": summary.mean_total_cost,
                        "n_trials": summary.n_trials,
                    }
                )
                table.add_row(**row)
        return table
