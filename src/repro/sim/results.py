"""Result records, tables and serialisation.

Experiments produce tabular data: one row per (algorithm, parameter point,
trial) with cost columns.  :class:`ResultTable` is a small dependency-free
table abstraction with CSV/JSON export and fixed-width text rendering, used by
every experiment module and by the benchmark harness to print the series that
correspond to the paper's figures.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.exceptions import ExperimentError

__all__ = ["ResultTable", "summarise_values"]


def summarise_values(values: Sequence[float]) -> Dict[str, float]:
    """Return mean / min / max / count of a numeric sample (empty-safe)."""
    values = [float(v) for v in values]
    if not values:
        return {"mean": 0.0, "min": 0.0, "max": 0.0, "count": 0.0}
    return {
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
        "count": float(len(values)),
    }


@dataclass
class ResultTable:
    """A list of homogeneous result rows (dictionaries) with export helpers.

    Attributes
    ----------
    name:
        Table name, used as default file stem and in rendered headers.
    columns:
        Column order; rows may contain extra keys, which are ignored when
        rendering but preserved when exporting to JSON.
    rows:
        The data rows.
    """

    name: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append a row given as keyword arguments."""
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise ExperimentError(
                f"row for table {self.name!r} is missing columns: {missing}"
            )
        self.rows.append(dict(values))

    def extend(self, rows: Iterable[Dict[str, object]]) -> None:
        """Append many rows."""
        for row in rows:
            self.add_row(**row)

    def column(self, name: str) -> List[object]:
        """Return all values of one column, in row order."""
        if name not in self.columns and not any(name in row for row in self.rows):
            raise ExperimentError(f"unknown column {name!r} in table {self.name!r}")
        return [row.get(name) for row in self.rows]

    def filter(self, **criteria: object) -> "ResultTable":
        """Return a new table containing only the rows matching all criteria."""
        selected = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]
        return ResultTable(name=self.name, columns=list(self.columns), rows=selected)

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------ export

    def to_csv(self, path: str) -> Path:
        """Write the table to ``path`` as CSV and return the path."""
        file_path = Path(path)
        file_path.parent.mkdir(parents=True, exist_ok=True)
        with file_path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.columns, extrasaction="ignore")
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)
        return file_path

    def to_json(self, path: Optional[str] = None) -> str:
        """Serialise the table to JSON; optionally also write it to ``path``."""
        payload = json.dumps(
            {"name": self.name, "columns": self.columns, "rows": self.rows},
            indent=2,
            default=str,
        )
        if path is not None:
            file_path = Path(path)
            file_path.parent.mkdir(parents=True, exist_ok=True)
            file_path.write_text(payload)
        return payload

    # --------------------------------------------------------------- rendering

    def format_text(self, float_digits: int = 3, max_rows: Optional[int] = None) -> str:
        """Render the table as fixed-width text (used in reports and benchmarks)."""
        rows = self.rows if max_rows is None else self.rows[:max_rows]

        def render(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.{float_digits}f}"
            return str(value)

        rendered = [[render(row.get(column, "")) for column in self.columns] for row in rows]
        widths = [
            max(len(column), *(len(row[index]) for row in rendered)) if rendered else len(column)
            for index, column in enumerate(self.columns)
        ]
        header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(self.columns))
        separator = "  ".join("-" * widths[i] for i in range(len(self.columns)))
        lines = [f"# {self.name}", header, separator]
        for row in rendered:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)
