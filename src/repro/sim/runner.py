"""Multi-trial experiment runner.

The paper repeats every synthetic experiment ten times and plots averages; this
module provides :class:`TrialRunner`, which runs one (algorithm, workload)
configuration over several seeded trials and aggregates the average costs, and
:func:`compare_algorithms`, which does so for a set of algorithms on the *same*
per-trial sequences (so differences between algorithms are not confounded by
workload noise).

Work items are shipped to workers as :class:`TrialPayload` objects whose
workload half is a :class:`WorkloadSource`:

* :class:`SpecSource` — an immutable :class:`repro.workloads.spec.WorkloadSpec`
  plus a request count; the worker rebuilds the generator and *streams*
  requests in chunks into the serve fast path.  This is the default whenever
  the workload can describe itself as a spec: nothing is generated in the
  parent process and the payload pickles in bytes, not megabytes.
* :class:`SequenceSource` — a materialised request sequence, used for
  workloads without a spec (ad-hoc generators) and by the explicit
  :meth:`TrialRunner.run_on_sequences` API.
* :class:`AdversarySource` — an :class:`repro.workloads.adversarial.
  AdversarySpec` plus a request count; the worker builds the *adaptive*
  adversary (which must observe the algorithm's tree, so it cannot be a
  plain workload spec), lets it drive its own algorithm instance and
  returns the costs it extracted.  This is how the paper's Lemma 8 and
  lower-bound constructions run under plans with fan-out and caching.

Both accept ``n_jobs`` to fan the independent (trial, algorithm) work items
out over a persistent process pool (see :mod:`repro.sim.parallel`).  Per-trial
seeds are derived from the trial index alone, spec seeds are therefore pure
functions of the trial index, and results are reassembled in payload order, so
``n_jobs > 1`` — and streaming versus materialising — produce bit-for-bit the
same outcomes as a serial run.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.algorithms.base import RunResult
from repro.algorithms.registry import AlgorithmSpec
from repro.core import backend as _backend
from repro.exceptions import ExperimentError
from repro.network.multi_source import MultiSourceNetwork
from repro.network.traffic import TrafficSpec
from repro.resilience.context import current_context
from repro.resilience.faults import FaultSpec, fault_spec_from_env, maybe_inject
from repro.resilience.retry import RetryPolicy
from repro.resilience.store import payload_key
from repro.sim.engine import simulate, simulate_stream
from repro.sim.parallel import map_ordered
from repro.sim.results import summarise_values
from repro.telemetry.registry import default_registry
from repro.telemetry.trace import default_tracer, span_id
from repro.types import ElementId
from repro.workloads.adversarial import AdversarySpec
from repro.workloads.base import WorkloadGenerator, check_chunk_size
from repro.workloads.spec import DEFAULT_CHUNK_SIZE, WorkloadSpec, build_workload

__all__ = [
    "AdversarySource",
    "SequenceSource",
    "SpecSource",
    "TrafficSource",
    "TrialOutcome",
    "AggregatedOutcome",
    "TrialPayload",
    "TrialRunner",
    "compare_algorithms",
    "execute_payloads",
]

#: Signature of a factory producing a fresh workload — or directly a
#: :class:`~repro.workloads.spec.WorkloadSpec` — for trial ``i``.
WorkloadFactory = Callable[[int], Union[WorkloadGenerator, WorkloadSpec]]


@dataclass(frozen=True)
class SequenceSource:
    """A materialised request sequence crossing the process boundary as data."""

    sequence: Tuple[ElementId, ...]


@dataclass(frozen=True)
class SpecSource:
    """A workload spec to rebuild and stream inside the worker.

    ``shared`` marks sources that appear in several payloads (one per
    algorithm of the same trial): workers then memoise the generated chunks
    in a single-entry cache, so the stream is generated once per trial per
    worker instead of once per payload — the worker-side memory cost (one
    resident sequence) is exactly what the materialised pipeline paid.
    Unshared sources stream without retaining anything.
    """

    spec: WorkloadSpec
    n_requests: int
    chunk_size: int = DEFAULT_CHUNK_SIZE
    shared: bool = False


@dataclass(frozen=True)
class TrafficSource:
    """A multi-source traffic spec to rebuild and stream inside the worker.

    The network variant of :class:`SpecSource`: the payload carries a
    :class:`repro.network.traffic.TrafficSpec` (per-source workload specs +
    interleaving policy, already trial-seeded) and the per-source request
    count; the worker rebuilds the :class:`repro.network.multi_source.
    MultiSourceNetwork` from the payload seeds, streams the trace through
    :meth:`~repro.network.multi_source.MultiSourceNetwork.serve_trace_stream`
    and returns columnar per-source totals — the parent process never
    materialises a single trace request.  The payload's ``placement_seed``
    doubles as the network's ``base_seed`` (per-source placement and
    algorithm seeds are derived from it inside ``MultiSourceNetwork``).
    """

    traffic: TrafficSpec
    requests_per_source: int
    chunk_size: int = DEFAULT_CHUNK_SIZE


@dataclass(frozen=True)
class AdversarySource:
    """An adaptive-adversary spec to build and run inside the worker.

    Adaptive adversaries construct their request sequences *online* from the
    state of the algorithm's own tree, so — unlike every other source — the
    payload's algorithm half is decided by the adversary itself (the spec's
    construction pins which algorithm it attacks).  The payload's
    ``algorithm`` field is ignored; its seeds are ignored too, because the
    constructions are deterministic.  What the worker returns is the cost
    record the adversary extracted, shaped as a normal
    :class:`~repro.algorithms.base.RunResult` so stores, tables and caches
    need no special cases.
    """

    adversary: AdversarySpec
    n_requests: int


WorkloadSource = Union[SequenceSource, SpecSource, TrafficSource, AdversarySource]


@dataclass(frozen=True)
class TrialPayload:
    """One (trial, algorithm) work item, picklable and order-independent.

    Payloads carry *specs only*: the algorithm half is an
    :class:`~repro.algorithms.registry.AlgorithmSpec` (bare registry names
    are coerced on construction) and the workload half a
    :class:`WorkloadSource` whose preferred form is a spec.  ``backend`` is
    the serve-backend choice shipped to the worker (``None`` means
    auto-detect there); it selects the placement storage and batch serve
    path plus — for spec sources — whether the workload streams NumPy
    chunks.  Results are bit-identical across backends, so payloads remain
    order- and placement-independent.

    ``fault`` is the test-only fault-injection hook (see
    :mod:`repro.resilience.faults`): when set, the worker body fires the
    fault *before* serving any request, so a recovered re-run of the payload
    starts from its pristine seeded state and is byte-identical to a
    fault-free run.  Like ``backend``, the field never affects result
    content and is excluded from the payload's cache key.
    """

    algorithm: AlgorithmSpec
    source: WorkloadSource
    n_nodes: int
    placement_seed: Optional[int]
    algorithm_seed: Optional[int]
    keep_records: bool
    trial: int
    metadata: Dict[str, object] = field(default_factory=dict)
    backend: Optional[str] = None
    fault: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if not isinstance(self.algorithm, AlgorithmSpec):
            object.__setattr__(
                self, "algorithm", AlgorithmSpec.coerce(self.algorithm)
            )

    @property
    def algorithm_name(self) -> str:
        """Registry name of the planned algorithm."""
        return self.algorithm.name


#: Single-entry per-process memo for ``shared`` spec sources (see
#: :class:`SpecSource`).  Keyed by ``(source, as_array)``; cleared whenever a
#: different shared source arrives, so at most one sequence is resident.
#: :func:`execute_payloads` clears it when a pass completes; idle pool
#: workers hold at most one trial's sequence until their next pass (or
#: :func:`repro.sim.parallel.shutdown_persistent_pool`).
_shared_chunks_cache: Dict[object, List] = {}


def execute_payloads(
    payloads: Sequence["TrialPayload"],
    n_jobs: Optional[int],
    *,
    worker_timeout: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> List[RunResult]:
    """Execute payloads (serially or on the pool), releasing the stream memo.

    The one entry point the runners use around :func:`map_ordered` — and the
    seam where the resilience layer plugs in.  When a plan run has activated
    an :class:`repro.resilience.ExecutionContext` (via ``repro.run(...,
    cache=...)`` or a ``cache_dir`` in the stage config):

    * every completed payload is persisted to the checkpoint store *as it
      completes* (``on_result``), so an interrupted campaign keeps what it
      already computed;
    * with ``resume=True``, payloads whose verified entry already exists are
      served from the store and never re-executed — corrupt or truncated
      entries are logged, counted and simply re-run.

    Results are pure functions of payload content (seeds derive from the
    trial index alone), so mixing cached and fresh results is bit-identical
    to computing everything; reassembly stays strictly in payload order.
    Legacy callers with no active context get the exact pre-resilience
    behaviour: no store, no resume, plain fan-out.

    With an ``executor`` address (``tcp://host:port[,host:port...]``) the
    pending payloads are dispatched to the remote worker fleet instead of
    the local pool; :func:`repro.dist.run_distributed` owns the next rungs
    of the degradation ladder (fleet -> local pool -> serial), so results
    and persistence behave identically either way.
    """
    context = current_context()
    store = context.store_for(cache_dir) if context is not None else None
    stats = context.stats if context is not None else None
    registry = default_registry()
    tracer = default_tracer()
    m_turnaround = registry.histogram(
        "repro_payload_turnaround_seconds",
        "Fan-out start to payload completion, parent-side.",
    )
    results: List[Optional[RunResult]] = [None] * len(payloads)
    pending: List[int] = []
    keys: Dict[int, str] = {}
    if store is not None:
        keys = {index: payload_key(payload) for index, payload in enumerate(payloads)}
    if store is not None and context.resume:
        for index in range(len(payloads)):
            key = keys[index]
            present = key in store
            cached = store.get(key) if present else None
            if cached is not None:
                results[index] = cached
                _count_stat(stats, "cache_hits")
            else:
                if present:
                    _count_stat(stats, "corrupt_entries")
                pending.append(index)
    else:
        pending = list(range(len(payloads)))
    if store is not None:
        registry.counter(
            "repro_run_cache_misses_total",
            "Payloads not servable from the checkpoint store.",
        ).inc(len(pending))
    fanout_started = time.perf_counter()
    fanout_wall = time.time()

    def observe(position: int, result: RunResult) -> None:
        turnaround = time.perf_counter() - fanout_started
        m_turnaround.observe(turnaround)
        index = pending[position]
        payload = payloads[index]
        sid = (
            span_id("payload", keys[index])
            if keys
            else span_id("run", payload.trial, payload.algorithm_name, index)
        )
        tracer.record(
            "run.payload",
            sid,
            start=fanout_wall,
            duration=turnaround,
            trial=payload.trial,
            algorithm=payload.algorithm_name,
        )
        if store is not None:
            store.put(keys[index], result)
            _count_stat(stats, "stored")

    try:
        if executor is not None:
            # Imported lazily: repro.dist.coordinator itself imports this
            # module for _execute_trial, so a top-level import would cycle.
            from repro.dist.coordinator import run_distributed

            fresh = run_distributed(
                [payloads[index] for index in pending],
                executor,
                n_jobs=n_jobs,
                worker_timeout=worker_timeout,
                retry=retry,
                on_result=observe,
                stats=stats,
            )
        else:
            fresh = map_ordered(
                _execute_trial,
                [payloads[index] for index in pending],
                n_jobs,
                worker_timeout=worker_timeout,
                retry=retry,
                on_result=observe,
                stats=stats,
            )
    finally:
        _shared_chunks_cache.clear()
    for position, index in enumerate(pending):
        results[index] = fresh[position]
    return results  # type: ignore[return-value]


def _count_stat(stats: Optional[object], name: str) -> None:
    """Bump a counter when a stats object is attached (no-op otherwise)."""
    if stats is not None:
        setattr(stats, name, getattr(stats, name) + 1)


def _chunks_of(source: SpecSource, as_array: bool):
    """Return the request chunks of ``source``, memoising shared sources.

    ``as_array`` asks the generator for NumPy chunks (array-backend
    transport); it is part of the memo key because the same source may be
    streamed for payloads of different backends.
    """
    if not source.shared:
        workload = build_workload(source.spec)
        return workload.iter_requests(
            source.n_requests, source.chunk_size, as_array=as_array
        )
    key = (source, as_array)
    chunks = _shared_chunks_cache.get(key)
    if chunks is None:
        workload = build_workload(source.spec)
        chunks = list(
            workload.iter_requests(
                source.n_requests, source.chunk_size, as_array=as_array
            )
        )
        _shared_chunks_cache.clear()
        _shared_chunks_cache[key] = chunks
    return chunks


def _execute_trial(payload: TrialPayload) -> RunResult:
    """Process-pool worker: run one algorithm on one trial workload.

    Module-level so it is picklable.  Observes the trial's wall time into
    the *executing* process's registry — the pool worker's own, or the dist
    worker daemon's (where it is scrapeable via its metrics endpoint) —
    then delegates to :func:`_execute_trial_body`.
    """
    started = time.perf_counter()
    try:
        return _execute_trial_body(payload)
    finally:
        default_registry().histogram(
            "repro_trial_seconds",
            "Wall time of one trial execution, in the executing process.",
            labels=("algorithm",),
        ).observe(
            time.perf_counter() - started, algorithm=payload.algorithm_name
        )


def _execute_trial_body(payload: TrialPayload) -> RunResult:
    """The actual trial body behind :func:`_execute_trial`.

    Spec sources are rebuilt and streamed
    chunk by chunk into the serve fast path; sequence sources are served as
    is.  Both produce identical results for the same underlying requests.
    The payload's backend choice is passed through verbatim: ``None`` must
    reach ``make_algorithm`` unresolved so its per-algorithm auto-detection
    still applies in the worker.  Only the transport format is decided here —
    array chunks when the environment could vectorise; a scalar-backend
    algorithm handed array chunks converts them per chunk, which is cheap
    and keeps shared sources single-format across the algorithms of a trial.
    """
    maybe_inject(payload.fault, payload.trial, payload.algorithm_name)
    metadata: Dict[str, object] = {"trial": payload.trial, **payload.metadata}
    source = payload.source
    if isinstance(source, TrafficSource):
        return _execute_network_trial(payload, source, metadata)
    if isinstance(source, AdversarySource):
        return _execute_adversary_trial(payload, source, metadata)
    as_array = _backend.vectorise_active(_backend.resolve_backend(payload.backend))
    if isinstance(source, SpecSource):
        chunks = _chunks_of(source, as_array=as_array)
        return simulate_stream(
            payload.algorithm,
            chunks,
            n_nodes=payload.n_nodes,
            placement_seed=payload.placement_seed,
            seed=payload.algorithm_seed,
            keep_records=payload.keep_records,
            metadata=metadata,
            backend=payload.backend,
        )
    return simulate(
        payload.algorithm,
        source.sequence,
        n_nodes=payload.n_nodes,
        placement_seed=payload.placement_seed,
        seed=payload.algorithm_seed,
        keep_records=payload.keep_records,
        metadata=metadata,
        backend=payload.backend,
    )


def _execute_network_trial(
    payload: TrialPayload, source: TrafficSource, metadata: Dict[str, object]
) -> RunResult:
    """Process-pool worker body for one multi-source network trial.

    Rebuilds the network from the shipped specs and seeds, streams the trace
    through the per-source ``serve_batch`` dispatch and returns the aggregate
    totals, with the per-source breakdown attached as columnar metadata
    (``metadata["per_source"]``, see
    :meth:`~repro.network.multi_source.MultiSourceNetwork.per_source_columns`).
    Seeds are pure functions of the trial index, so results are bit-identical
    wherever and in whatever order the payload runs.
    """
    traffic = source.traffic
    network = MultiSourceNetwork(
        n_nodes=payload.n_nodes,
        sources=traffic.source_ids(),
        algorithm=payload.algorithm,
        base_seed=payload.placement_seed if payload.placement_seed is not None else 0,
        keep_records=payload.keep_records,
        backend=payload.backend,
    )
    summary = network.serve_trace_stream(
        traffic.iter_trace(source.requests_per_source, source.chunk_size)
    )
    metadata = dict(metadata)
    metadata["per_source"] = network.per_source_columns()
    metadata["interleaving"] = traffic.interleaving
    return RunResult(
        algorithm=payload.algorithm_name,
        n_nodes=payload.n_nodes,
        n_requests=int(summary["n_requests"]),
        total_access_cost=int(summary["total_access_cost"]),
        total_adjustment_cost=int(summary["total_adjustment_cost"]),
        metadata=metadata,
    )


def _execute_adversary_trial(
    payload: TrialPayload, source: AdversarySource, metadata: Dict[str, object]
) -> RunResult:
    """Process-pool worker body for one adaptive-adversary run.

    Builds the adversary from its registry-validated spec, lets it drive its
    own algorithm instance for ``n_requests`` requests, and folds the
    per-request :class:`~repro.core.cost.RequestCost` records it produced
    into a :class:`RunResult`.  The constructions are deterministic, so the
    result is a pure function of ``(spec, n_requests)`` — exactly what the
    cache key records.
    """
    adversary = source.adversary.build()
    _, costs = adversary.generate_with_costs(source.n_requests)
    return RunResult(
        algorithm=adversary.algorithm.name,
        n_nodes=adversary.n_elements,
        n_requests=len(costs),
        total_access_cost=sum(cost.access_cost for cost in costs),
        total_adjustment_cost=sum(cost.adjustment_cost for cost in costs),
        per_request=costs if payload.keep_records else [],
        metadata=metadata,
    )


@dataclass(frozen=True)
class TrialOutcome:
    """Result of one algorithm on one trial sequence."""

    algorithm: str
    trial: int
    result: RunResult


@dataclass
class AggregatedOutcome:
    """Aggregate of one algorithm over all trials of a configuration.

    The statistics are over per-trial *average* costs (cost per request), which
    is what the paper's figures plot.
    """

    algorithm: str
    n_trials: int
    access_cost: Dict[str, float] = field(default_factory=dict)
    adjustment_cost: Dict[str, float] = field(default_factory=dict)
    total_cost: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_access_cost(self) -> float:
        """Mean per-request access cost over trials."""
        return self.access_cost.get("mean", 0.0)

    @property
    def mean_adjustment_cost(self) -> float:
        """Mean per-request adjustment cost over trials."""
        return self.adjustment_cost.get("mean", 0.0)

    @property
    def mean_total_cost(self) -> float:
        """Mean per-request total cost over trials."""
        return self.total_cost.get("mean", 0.0)


#: Sentinel distinguishing "not passed" from an explicit value in the legacy
#: keyword-threaded signatures (so the deprecation shim only fires for
#: callers actually using them).
_UNSET: object = object()


def _resolve_legacy_run_shape(
    owner: str,
    config,
    n_requests,
    n_trials,
    base_seed,
    keep_records,
    n_jobs,
    chunk_size,
    backend,
) -> Tuple[int, int, int, bool, int, Optional[int], Optional[str]]:
    """Shared shim: fold a ``RunConfig`` or legacy keywords into run shape.

    ``config`` (any object with the :class:`repro.plans.RunConfig` fields —
    duck-typed so this low-level module never imports the plan layer) is the
    preferred way to describe the run shape.  The legacy keyword-threaded
    perf knobs (``n_jobs``/``chunk_size``/``backend``) still work but emit a
    :class:`DeprecationWarning` pointing at configs/plans.
    """
    if config is not None:
        explicit = [
            name
            for name, value in (
                ("n_requests", n_requests),
                ("n_trials", n_trials),
                ("base_seed", base_seed),
                ("keep_records", keep_records),
                ("n_jobs", n_jobs),
                ("chunk_size", chunk_size),
                ("backend", backend),
            )
            if value is not _UNSET and value is not None
        ]
        if explicit:
            raise ExperimentError(
                f"{owner}: pass either config= or the loose keyword arguments "
                f"{explicit}, not both"
            )
        return (
            config.n_requests,
            config.n_trials,
            config.base_seed,
            config.keep_records,
            config.n_jobs,
            config.chunk_size,
            config.backend,
        )
    if n_requests is _UNSET or n_requests is None:
        raise ExperimentError(f"{owner}: n_requests is required (or pass config=)")
    legacy_knobs = [
        name
        for name, value in (
            ("n_jobs", n_jobs),
            ("chunk_size", chunk_size),
            ("backend", backend),
        )
        if value is not _UNSET
    ]
    if legacy_knobs:
        warnings.warn(
            f"threading {', '.join(legacy_knobs)} through {owner} keyword "
            "arguments is deprecated; bundle the run shape in a "
            "repro.plans.RunConfig (config=...) or run a declarative plan "
            "via repro.run(...)",
            DeprecationWarning,
            stacklevel=3,
        )
    return (
        n_requests,
        3 if n_trials is _UNSET else n_trials,
        0 if base_seed is _UNSET else base_seed,
        False if keep_records is _UNSET else keep_records,
        1 if n_jobs is _UNSET else n_jobs,
        None if chunk_size is _UNSET else chunk_size,
        None if backend is _UNSET else backend,
    )


class TrialRunner:
    """Runs algorithms over repeated, seeded workload trials.

    The run shape is best given as one ``config`` object
    (:class:`repro.plans.RunConfig` — trials, requests, seed policy, worker
    processes, chunk size, backend, record mode); the loose keyword
    arguments remain as a deprecated shim for the knob-threading style the
    plan API replaced.

    Parameters
    ----------
    n_nodes:
        Tree size (must be a complete-binary-tree size).
    config:
        The run shape as a :class:`repro.plans.RunConfig` (preferred).
        Mutually exclusive with the keyword arguments below.
    n_requests:
        Number of requests per trial.
    n_trials:
        Number of independent trials (the paper uses 10).
    base_seed:
        Base of the per-trial seeds (trial ``i`` uses ``base_seed + i`` for the
        workload, the placement and the algorithm randomness).
    keep_records:
        Whether to retain per-request cost records (memory-heavy for long runs).
    n_jobs:
        .. deprecated:: use ``config``.  Worker processes for the (trial,
        algorithm) fan-out; ``1`` (default) runs serially, negative uses
        every CPU.  Parallel runs are bit-identical to serial ones (see
        :mod:`repro.sim.parallel`).
    chunk_size:
        .. deprecated:: use ``config``.  Streaming chunk size for
        spec-shipped workloads (default
        :data:`repro.workloads.spec.DEFAULT_CHUNK_SIZE`); affects memory and
        batching only, never the generated stream.
    backend:
        .. deprecated:: use ``config``.  Serve backend shipped inside every
        payload: ``"array"``, ``"python"`` or ``None``/``"auto"`` (resolved
        in the worker).  Results are bit-identical across backends; the knob
        trades throughput only.
    """

    def __init__(
        self,
        n_nodes: int,
        n_requests: Optional[int] = _UNSET,
        n_trials: int = _UNSET,
        base_seed: int = _UNSET,
        keep_records: bool = _UNSET,
        n_jobs: int = _UNSET,
        chunk_size: Optional[int] = _UNSET,
        backend: Optional[str] = _UNSET,
        config=None,
    ) -> None:
        (
            n_requests,
            n_trials,
            base_seed,
            keep_records,
            n_jobs,
            chunk_size,
            backend,
        ) = _resolve_legacy_run_shape(
            "TrialRunner",
            config,
            n_requests,
            n_trials,
            base_seed,
            keep_records,
            n_jobs,
            chunk_size,
            backend,
        )
        if n_trials <= 0:
            raise ExperimentError(f"n_trials must be positive, got {n_trials}")
        if n_requests < 0:
            raise ExperimentError(f"n_requests must be non-negative, got {n_requests}")
        if backend is not None:
            _backend.resolve_backend(backend)  # validate eagerly, ship verbatim
        self.n_nodes = n_nodes
        self.n_requests = n_requests
        self.n_trials = n_trials
        self.base_seed = base_seed
        self.keep_records = keep_records
        self.n_jobs = n_jobs
        self.chunk_size = (
            DEFAULT_CHUNK_SIZE if chunk_size is None else check_chunk_size(int(chunk_size))
        )
        self.backend = backend
        # Resilience knobs live only on configs (no legacy keyword shim —
        # they postdate the plan API); duck-typed so older config-like
        # objects without the fields keep working.
        self.worker_timeout = getattr(config, "worker_timeout", None)
        self.max_retries = getattr(config, "max_retries", 2)
        self.cache_dir = getattr(config, "cache_dir", None)
        self.executor = getattr(config, "executor", None)

    def _check_universe(self, n_elements: object) -> None:
        if n_elements != self.n_nodes:
            raise ExperimentError(
                f"workload universe {n_elements} does not match "
                f"runner tree size {self.n_nodes}"
            )

    def trial_sources(self, workload_factory: WorkloadFactory) -> List[WorkloadSource]:
        """Build one workload source per trial without generating any requests.

        The factory is called with the per-trial seed and may return either a
        :class:`~repro.workloads.spec.WorkloadSpec` directly or a freshly
        constructed generator.  Generators that can describe themselves as a
        spec (:meth:`~repro.workloads.base.WorkloadGenerator.to_spec`) are
        shipped as specs and streamed in the worker; only spec-less workloads
        are materialised here as a fallback.
        """
        sources: List[WorkloadSource] = []
        for trial in range(self.n_trials):
            built = workload_factory(self.base_seed + trial)
            if isinstance(built, WorkloadSpec):
                self._check_universe(built.get("n_elements", self.n_nodes))
                sources.append(SpecSource(built, self.n_requests, self.chunk_size))
                continue
            self._check_universe(built.n_elements)
            spec = built.to_spec() if built.ships_as_spec else None
            if spec is not None:
                sources.append(SpecSource(spec, self.n_requests, self.chunk_size))
            else:
                # Spec-less workloads (adaptive adversaries, ad-hoc
                # generators) and trace-backed workloads, whose spec would
                # embed the whole trace: ship the truncated sequence instead.
                sources.append(
                    SequenceSource(tuple(built.generate(self.n_requests)))
                )
        return sources

    def trial_sequences(self, workload_factory: WorkloadFactory) -> List[List[ElementId]]:
        """Generate one materialised request sequence per trial (legacy path).

        Kept for callers that need the raw sequences (entropy measurements,
        oracle comparisons); the runners themselves ship specs via
        :meth:`trial_sources` instead.
        """
        sequences: List[List[ElementId]] = []
        for trial in range(self.n_trials):
            workload = workload_factory(self.base_seed + trial)
            if isinstance(workload, WorkloadSpec):
                workload = build_workload(workload)
            self._check_universe(workload.n_elements)
            sequences.append(workload.generate(self.n_requests))
        return sequences

    def run(
        self,
        algorithms: Sequence[str],
        workload_factory: WorkloadFactory,
        algorithm_kwargs: Optional[Dict[str, dict]] = None,
    ) -> Dict[str, List[TrialOutcome]]:
        """Run every algorithm on every trial workload.

        All algorithms see the *same* stream in a given trial (the same spec
        rebuilds the same generator in every worker); per-trial placement
        seeds are also shared so the initial tree is identical across
        algorithms, as in the paper's setup.
        """
        sources = self.trial_sources(workload_factory)
        payloads = self.build_payloads(algorithms, sources, algorithm_kwargs)
        results = self._execute(payloads, self.n_jobs)
        return self.collect(algorithms, payloads, results)

    def _execute(
        self, payloads: Sequence[TrialPayload], n_jobs: Optional[int]
    ) -> List[RunResult]:
        """Fan the payloads out with this runner's resilience knobs attached."""
        return execute_payloads(
            payloads,
            n_jobs,
            worker_timeout=self.worker_timeout,
            retry=RetryPolicy.for_config(self),
            cache_dir=self.cache_dir,
            executor=self.executor,
        )

    def build_payloads(
        self,
        algorithms: Sequence[str],
        sources: Sequence[Union[WorkloadSource, Sequence[ElementId]]],
        algorithm_kwargs: Optional[Dict[str, dict]] = None,
    ) -> List[TrialPayload]:
        """Build the (trial, algorithm) work items in deterministic order.

        ``sources`` may mix :class:`SpecSource`/:class:`SequenceSource`
        objects and raw sequences (wrapped transparently).  Seeds depend only
        on the trial index (placement ``base_seed + 10_000 + trial``,
        algorithm ``base_seed + 20_000 + trial``), so the payloads — and
        therefore the results — are independent of where and in which order
        they are executed.  When :data:`repro.resilience.faults.FAULT_SPEC_ENV`
        is set, the requested fault spec is stamped onto every payload (the
        CI fault smoke's injection path).
        """
        algorithm_kwargs = algorithm_kwargs or {}
        specs = [
            AlgorithmSpec.create(
                spec.name, **{**spec.param_dict(), **algorithm_kwargs.get(spec.name, {})}
            )
            for spec in (AlgorithmSpec.coerce(algorithm) for algorithm in algorithms)
        ]
        fault = fault_spec_from_env()
        payloads: List[TrialPayload] = []
        for trial, source in enumerate(sources):
            if not isinstance(source, (SpecSource, SequenceSource)):
                source = SequenceSource(tuple(source))
            if isinstance(source, SpecSource) and len(specs) > 1:
                # every algorithm of this trial serves the same stream; let
                # workers generate it once, not once per algorithm
                source = replace(source, shared=True)
            placement_seed = self.base_seed + 10_000 + trial
            algorithm_seed = self.base_seed + 20_000 + trial
            for spec in specs:
                payloads.append(
                    TrialPayload(
                        algorithm=spec,
                        source=source,
                        n_nodes=self.n_nodes,
                        placement_seed=placement_seed,
                        algorithm_seed=algorithm_seed,
                        keep_records=self.keep_records,
                        trial=trial,
                        backend=self.backend,
                        fault=fault,
                    )
                )
        return payloads

    @staticmethod
    def collect(
        algorithms: Sequence[str],
        payloads: Sequence[TrialPayload],
        results: Sequence[RunResult],
    ) -> Dict[str, List[TrialOutcome]]:
        """Reassemble ordered worker results into the per-algorithm outcome map."""
        outcomes: Dict[str, List[TrialOutcome]] = {
            AlgorithmSpec.coerce(algorithm).name: [] for algorithm in algorithms
        }
        for payload, result in zip(payloads, results):
            outcomes[payload.algorithm_name].append(
                TrialOutcome(
                    algorithm=payload.algorithm_name,
                    trial=payload.trial,
                    result=result,
                )
            )
        return outcomes

    def run_on_sequences(
        self,
        algorithms: Sequence[str],
        sequences: Sequence[Sequence[ElementId]],
        algorithm_kwargs: Optional[Dict[str, dict]] = None,
        n_jobs: Optional[int] = None,
    ) -> Dict[str, List[TrialOutcome]]:
        """Run every algorithm on externally supplied per-trial sequences.

        ``n_jobs`` overrides the runner-wide setting for this call.
        """
        payloads = self.build_payloads(algorithms, sequences, algorithm_kwargs)
        results = self._execute(payloads, self.n_jobs if n_jobs is None else n_jobs)
        return self.collect(algorithms, payloads, results)

    @staticmethod
    def aggregate(outcomes: Dict[str, List[TrialOutcome]]) -> Dict[str, AggregatedOutcome]:
        """Aggregate per-trial average costs for every algorithm."""
        aggregated: Dict[str, AggregatedOutcome] = {}
        for name, trials in outcomes.items():
            aggregated[name] = AggregatedOutcome(
                algorithm=name,
                n_trials=len(trials),
                access_cost=summarise_values(
                    [t.result.average_access_cost for t in trials]
                ),
                adjustment_cost=summarise_values(
                    [t.result.average_adjustment_cost for t in trials]
                ),
                total_cost=summarise_values(
                    [t.result.average_total_cost for t in trials]
                ),
            )
        return aggregated


def compare_algorithms(
    algorithms: Sequence[str],
    workload_factory: WorkloadFactory,
    n_nodes: int,
    n_requests: Optional[int] = _UNSET,
    n_trials: int = _UNSET,
    base_seed: int = _UNSET,
    keep_records: bool = _UNSET,
    algorithm_kwargs: Optional[Dict[str, dict]] = None,
    n_jobs: int = _UNSET,
    chunk_size: Optional[int] = _UNSET,
    backend: Optional[str] = _UNSET,
    config=None,
) -> Dict[str, AggregatedOutcome]:
    """One-call helper: run all algorithms over seeded trials and aggregate.

    Prefer passing the run shape as one ``config``
    (:class:`repro.plans.RunConfig`) — or, for spec-able workloads, building
    a :class:`repro.plans.TrialPlan` and calling ``repro.run(plan)``.  The
    loose ``n_jobs``/``chunk_size``/``backend`` keywords are a deprecated
    shim kept for the pre-plan call sites.
    """
    (
        n_requests,
        n_trials,
        base_seed,
        keep_records,
        n_jobs,
        chunk_size,
        backend,
    ) = _resolve_legacy_run_shape(
        "compare_algorithms",
        config,
        n_requests,
        n_trials,
        base_seed,
        keep_records,
        n_jobs,
        chunk_size,
        backend,
    )
    with warnings.catch_warnings():
        # the shim above already warned once if legacy knobs were used; do
        # not warn a second time from the internal TrialRunner construction
        warnings.simplefilter("ignore", DeprecationWarning)
        runner = TrialRunner(
            n_nodes=n_nodes,
            n_requests=n_requests,
            n_trials=n_trials,
            base_seed=base_seed,
            keep_records=keep_records,
            n_jobs=n_jobs,
            chunk_size=chunk_size,
            backend=backend,
        )
    outcomes = runner.run(algorithms, workload_factory, algorithm_kwargs)
    return TrialRunner.aggregate(outcomes)
