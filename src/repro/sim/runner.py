"""Multi-trial experiment runner.

The paper repeats every synthetic experiment ten times and plots averages; this
module provides :class:`TrialRunner`, which runs one (algorithm, workload)
configuration over several seeded trials and aggregates the average costs, and
:func:`compare_algorithms`, which does so for a set of algorithms on the *same*
per-trial sequences (so differences between algorithms are not confounded by
workload noise).

Both accept ``n_jobs`` to fan the independent (trial, algorithm) work items
out over a process pool (see :mod:`repro.sim.parallel`).  Per-trial seeds are
derived from the trial index alone, and results are reassembled in payload
order, so ``n_jobs > 1`` produces bit-for-bit the same outcomes as a serial
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import RunResult
from repro.exceptions import ExperimentError
from repro.sim.engine import simulate
from repro.sim.parallel import map_ordered
from repro.sim.results import summarise_values
from repro.types import ElementId
from repro.workloads.base import WorkloadGenerator

__all__ = ["TrialOutcome", "AggregatedOutcome", "TrialRunner", "compare_algorithms"]

#: Signature of a factory producing a fresh workload for trial ``i``.
WorkloadFactory = Callable[[int], WorkloadGenerator]

#: One (trial, algorithm) work item: everything :func:`repro.sim.engine.simulate`
#: needs, fully materialised so it can cross a process boundary.
TrialPayload = Tuple[str, List[ElementId], int, int, int, bool, int, dict]


def _execute_trial(payload: TrialPayload) -> RunResult:
    """Process-pool worker: run one algorithm on one trial sequence.

    Module-level so it is picklable; the payload carries plain data only.
    """
    name, sequence, n_nodes, placement_seed, seed, keep_records, trial, kwargs = payload
    return simulate(
        name,
        sequence,
        n_nodes=n_nodes,
        placement_seed=placement_seed,
        seed=seed,
        keep_records=keep_records,
        metadata={"trial": trial},
        **kwargs,
    )


@dataclass(frozen=True)
class TrialOutcome:
    """Result of one algorithm on one trial sequence."""

    algorithm: str
    trial: int
    result: RunResult


@dataclass
class AggregatedOutcome:
    """Aggregate of one algorithm over all trials of a configuration.

    The statistics are over per-trial *average* costs (cost per request), which
    is what the paper's figures plot.
    """

    algorithm: str
    n_trials: int
    access_cost: Dict[str, float] = field(default_factory=dict)
    adjustment_cost: Dict[str, float] = field(default_factory=dict)
    total_cost: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_access_cost(self) -> float:
        """Mean per-request access cost over trials."""
        return self.access_cost.get("mean", 0.0)

    @property
    def mean_adjustment_cost(self) -> float:
        """Mean per-request adjustment cost over trials."""
        return self.adjustment_cost.get("mean", 0.0)

    @property
    def mean_total_cost(self) -> float:
        """Mean per-request total cost over trials."""
        return self.total_cost.get("mean", 0.0)


class TrialRunner:
    """Runs algorithms over repeated, seeded workload trials.

    Parameters
    ----------
    n_nodes:
        Tree size (must be a complete-binary-tree size).
    n_requests:
        Number of requests per trial.
    n_trials:
        Number of independent trials (the paper uses 10).
    base_seed:
        Base of the per-trial seeds (trial ``i`` uses ``base_seed + i`` for the
        workload, the placement and the algorithm randomness).
    keep_records:
        Whether to retain per-request cost records (memory-heavy for long runs).
    n_jobs:
        Worker processes for the (trial, algorithm) fan-out; ``1`` (default)
        runs serially, negative uses every CPU.  Parallel runs are
        bit-identical to serial ones (see :mod:`repro.sim.parallel`).
    """

    def __init__(
        self,
        n_nodes: int,
        n_requests: int,
        n_trials: int = 3,
        base_seed: int = 0,
        keep_records: bool = False,
        n_jobs: int = 1,
    ) -> None:
        if n_trials <= 0:
            raise ExperimentError(f"n_trials must be positive, got {n_trials}")
        if n_requests < 0:
            raise ExperimentError(f"n_requests must be non-negative, got {n_requests}")
        self.n_nodes = n_nodes
        self.n_requests = n_requests
        self.n_trials = n_trials
        self.base_seed = base_seed
        self.keep_records = keep_records
        self.n_jobs = n_jobs

    def trial_sequences(self, workload_factory: WorkloadFactory) -> List[List[ElementId]]:
        """Generate one request sequence per trial using the factory."""
        sequences: List[List[ElementId]] = []
        for trial in range(self.n_trials):
            workload = workload_factory(self.base_seed + trial)
            if workload.n_elements != self.n_nodes:
                raise ExperimentError(
                    f"workload universe {workload.n_elements} does not match "
                    f"runner tree size {self.n_nodes}"
                )
            sequences.append(workload.generate(self.n_requests))
        return sequences

    def run(
        self,
        algorithms: Sequence[str],
        workload_factory: WorkloadFactory,
        algorithm_kwargs: Optional[Dict[str, dict]] = None,
    ) -> Dict[str, List[TrialOutcome]]:
        """Run every algorithm on every trial sequence.

        All algorithms see the *same* sequence in a given trial; per-trial
        placement seeds are also shared so the initial tree is identical across
        algorithms, as in the paper's setup.
        """
        sequences = self.trial_sequences(workload_factory)
        return self.run_on_sequences(algorithms, sequences, algorithm_kwargs)

    def build_payloads(
        self,
        algorithms: Sequence[str],
        sequences: Sequence[Sequence[ElementId]],
        algorithm_kwargs: Optional[Dict[str, dict]] = None,
    ) -> List[TrialPayload]:
        """Materialise the (trial, algorithm) work items in deterministic order.

        Seeds depend only on the trial index (placement ``base_seed + 10_000 +
        trial``, algorithm ``base_seed + 20_000 + trial``), so the payloads —
        and therefore the results — are independent of where and in which
        order they are executed.
        """
        algorithm_kwargs = algorithm_kwargs or {}
        payloads: List[TrialPayload] = []
        for trial, sequence in enumerate(sequences):
            placement_seed = self.base_seed + 10_000 + trial
            algorithm_seed = self.base_seed + 20_000 + trial
            for name in algorithms:
                payloads.append(
                    (
                        name,
                        list(sequence),
                        self.n_nodes,
                        placement_seed,
                        algorithm_seed,
                        self.keep_records,
                        trial,
                        dict(algorithm_kwargs.get(name, {})),
                    )
                )
        return payloads

    @staticmethod
    def collect(
        algorithms: Sequence[str],
        payloads: Sequence[TrialPayload],
        results: Sequence[RunResult],
    ) -> Dict[str, List[TrialOutcome]]:
        """Reassemble ordered worker results into the per-algorithm outcome map."""
        outcomes: Dict[str, List[TrialOutcome]] = {name: [] for name in algorithms}
        for payload, result in zip(payloads, results):
            name, trial = payload[0], payload[6]
            outcomes[name].append(
                TrialOutcome(algorithm=name, trial=trial, result=result)
            )
        return outcomes

    def run_on_sequences(
        self,
        algorithms: Sequence[str],
        sequences: Sequence[Sequence[ElementId]],
        algorithm_kwargs: Optional[Dict[str, dict]] = None,
        n_jobs: Optional[int] = None,
    ) -> Dict[str, List[TrialOutcome]]:
        """Run every algorithm on externally supplied per-trial sequences.

        ``n_jobs`` overrides the runner-wide setting for this call.
        """
        payloads = self.build_payloads(algorithms, sequences, algorithm_kwargs)
        results = map_ordered(
            _execute_trial,
            payloads,
            self.n_jobs if n_jobs is None else n_jobs,
        )
        return self.collect(algorithms, payloads, results)

    @staticmethod
    def aggregate(outcomes: Dict[str, List[TrialOutcome]]) -> Dict[str, AggregatedOutcome]:
        """Aggregate per-trial average costs for every algorithm."""
        aggregated: Dict[str, AggregatedOutcome] = {}
        for name, trials in outcomes.items():
            aggregated[name] = AggregatedOutcome(
                algorithm=name,
                n_trials=len(trials),
                access_cost=summarise_values(
                    [t.result.average_access_cost for t in trials]
                ),
                adjustment_cost=summarise_values(
                    [t.result.average_adjustment_cost for t in trials]
                ),
                total_cost=summarise_values(
                    [t.result.average_total_cost for t in trials]
                ),
            )
        return aggregated


def compare_algorithms(
    algorithms: Sequence[str],
    workload_factory: WorkloadFactory,
    n_nodes: int,
    n_requests: int,
    n_trials: int = 3,
    base_seed: int = 0,
    keep_records: bool = False,
    algorithm_kwargs: Optional[Dict[str, dict]] = None,
    n_jobs: int = 1,
) -> Dict[str, AggregatedOutcome]:
    """One-call helper: run all algorithms over seeded trials and aggregate."""
    runner = TrialRunner(
        n_nodes=n_nodes,
        n_requests=n_requests,
        n_trials=n_trials,
        base_seed=base_seed,
        keep_records=keep_records,
        n_jobs=n_jobs,
    )
    outcomes = runner.run(algorithms, workload_factory, algorithm_kwargs)
    return TrialRunner.aggregate(outcomes)
