"""Process-pool fan-out for trial execution.

The paper-scale configurations (65,535 nodes, 10^6 requests, 10 trials, six
algorithms) multiply into hours of strictly serial CPU time.  Every (trial,
algorithm) work item is, however, completely independent once its seeds are
fixed: the workload sequence is generated up front and the placement and
algorithm seeds are pure functions of the trial index.  This module provides
the one primitive the runners need — "map this worker over these payloads,
possibly on several processes, preserving order" — so that parallel runs are
bit-for-bit identical to serial ones by construction: the same payloads are
built in the same order, and results are reassembled by position, never by
completion time.

``n_jobs`` convention (shared by :class:`repro.sim.runner.TrialRunner`,
:class:`repro.sim.sweep.ParameterSweep` and the experiment drivers):

* ``1`` (default) — run serially in the current process, no pool involved;
* ``k > 1`` — use up to ``k`` worker processes;
* any negative value — use one worker per available CPU.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.exceptions import ExperimentError

__all__ = ["resolve_n_jobs", "map_ordered"]

_PayloadT = TypeVar("_PayloadT")
_ResultT = TypeVar("_ResultT")


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial execution; negative values mean one worker
    per available CPU; ``0`` is rejected as ambiguous.
    """
    if n_jobs is None:
        return 1
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    if n_jobs == 0:
        raise ExperimentError("n_jobs must be positive or negative, not 0")
    return n_jobs


def map_ordered(
    worker: Callable[[_PayloadT], _ResultT],
    payloads: Sequence[_PayloadT],
    n_jobs: Optional[int] = 1,
) -> List[_ResultT]:
    """Apply ``worker`` to every payload, preserving payload order.

    With ``n_jobs`` resolving to 1 (or at most one payload) this is a plain
    serial loop with zero overhead.  Otherwise the payloads are fanned out
    over a :class:`concurrent.futures.ProcessPoolExecutor`; ``worker`` must be
    a module-level function and the payloads picklable.  The result list is
    ordered by payload position regardless of completion order, which is what
    makes parallel trial execution deterministic.
    """
    jobs = resolve_n_jobs(n_jobs)
    if jobs == 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]
    max_workers = min(jobs, len(payloads))
    # Chunk so each worker receives a few batches (amortises IPC) while still
    # keeping enough batches in flight to balance uneven item durations.
    chunksize = max(1, len(payloads) // (4 * max_workers))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(worker, payloads, chunksize=chunksize))
