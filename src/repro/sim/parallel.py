"""Process-pool fan-out for trial execution.

The paper-scale configurations (65,535 nodes, 10^6 requests, 10 trials, six
algorithms) multiply into hours of strictly serial CPU time.  Every (trial,
algorithm) work item is, however, completely independent once its seeds are
fixed: the workload sequence is generated up front and the placement and
algorithm seeds are pure functions of the trial index.  This module provides
the one primitive the runners need — "map this worker over these payloads,
possibly on several processes, preserving order" — so that parallel runs are
bit-for-bit identical to serial ones by construction: the same payloads are
built in the same order, and results are reassembled by position, never by
completion time.

``n_jobs`` convention (shared by :class:`repro.sim.runner.TrialRunner`,
:class:`repro.sim.sweep.ParameterSweep` and the experiment drivers):

* ``1`` (default) — run serially in the current process, no pool involved;
* ``k > 1`` — use up to ``k`` worker processes;
* any negative value — use one worker per available CPU.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.exceptions import ExperimentError
from repro.workloads.spec import registry_version

__all__ = [
    "check_n_jobs",
    "resolve_n_jobs",
    "map_ordered",
    "shutdown_persistent_pool",
]

_PayloadT = TypeVar("_PayloadT")
_ResultT = TypeVar("_ResultT")


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial execution; negative values mean one worker
    per available CPU; ``0`` is rejected as ambiguous.
    """
    if n_jobs is None:
        return 1
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    if n_jobs == 0:
        raise ExperimentError("n_jobs must be positive or negative, not 0")
    return n_jobs


def check_n_jobs(n_jobs: Optional[int]) -> Optional[int]:
    """Validate an ``n_jobs`` value without resolving it to a worker count.

    The declarative layer (:class:`repro.plans.RunConfig`) validates plans at
    construction time, possibly on a different machine than the one that will
    run them — so only the convention is checked (``0`` is ambiguous and
    rejected), never the CPU count.
    """
    if n_jobs is not None and n_jobs == 0:
        raise ExperimentError("n_jobs must be positive or negative, not 0")
    return n_jobs


# One process pool, reused across map_ordered calls (and therefore across
# sweep points and whole experiments).  Spinning a pool up costs fork+import
# per worker; at paper scale a sweep used to pay that once per point.  The
# pool is keyed by its worker count: asking for a different n_jobs replaces
# it, asking for the same reuses it.  Workers are spawned lazily by the
# executor, so an oversized pool serving a tiny payload list costs nothing.
# All access goes through _pool_lock; map_ordered holds it for the whole
# parallel section, so concurrent threaded callers serialise their fan-outs
# rather than shutting each other's executor down mid-map.
_pool: Optional[ProcessPoolExecutor] = None
_pool_workers: int = 0
_pool_registry_version: int = -1
_pool_lock = threading.Lock()


def _acquire_pool_locked(max_workers: int) -> ProcessPoolExecutor:
    """Return the shared executor (caller must hold ``_pool_lock``).

    The pool is also keyed on the workload-registry version: forked workers
    snapshot the registry at pool creation, so a kind registered after that
    would be unknown to them.  A version bump forces a rebuild, re-forking
    the current parent state.
    """
    global _pool, _pool_workers, _pool_registry_version
    if max_workers <= 0:
        raise ExperimentError(f"max_workers must be positive, got {max_workers}")
    version = registry_version()
    if _pool is not None and (
        _pool_workers != max_workers or _pool_registry_version != version
    ):
        _shutdown_pool_locked()
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=max_workers)
        _pool_workers = max_workers
        _pool_registry_version = version
    return _pool


def _shutdown_pool_locked() -> None:
    global _pool, _pool_workers, _pool_registry_version
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None
        _pool_workers = 0
        _pool_registry_version = -1


def shutdown_persistent_pool() -> None:
    """Shut the shared executor down (registered at interpreter exit)."""
    with _pool_lock:
        _shutdown_pool_locked()


atexit.register(shutdown_persistent_pool)


def map_ordered(
    worker: Callable[[_PayloadT], _ResultT],
    payloads: Sequence[_PayloadT],
    n_jobs: Optional[int] = 1,
) -> List[_ResultT]:
    """Apply ``worker`` to every payload, preserving payload order.

    With ``n_jobs`` resolving to 1 (or at most one payload) this is a plain
    serial loop with zero overhead.  Otherwise the payloads are fanned out
    over the persistent :class:`concurrent.futures.ProcessPoolExecutor`
    (created on first use, reused across calls); ``worker`` must be a
    module-level function and the payloads picklable.  The result list is
    ordered by payload position regardless of completion order, which is what
    makes parallel trial execution deterministic.
    """
    jobs = resolve_n_jobs(n_jobs)
    if jobs == 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]
    # Chunk so each worker receives a few batches (amortises IPC) while still
    # keeping enough batches in flight to balance uneven item durations.
    chunksize = max(1, len(payloads) // (4 * min(jobs, len(payloads))))
    with _pool_lock:
        pool = _acquire_pool_locked(jobs)
        try:
            return list(pool.map(worker, payloads, chunksize=chunksize))
        except BrokenProcessPool:
            # A worker died (OOM, signal); discard the broken pool so the
            # next call starts from a healthy one, then surface the failure.
            _shutdown_pool_locked()
            raise
