"""Process-pool fan-out for trial execution.

The paper-scale configurations (65,535 nodes, 10^6 requests, 10 trials, six
algorithms) multiply into hours of strictly serial CPU time.  Every (trial,
algorithm) work item is, however, completely independent once its seeds are
fixed: the workload sequence is generated up front and the placement and
algorithm seeds are pure functions of the trial index.  This module provides
the one primitive the runners need — "map this worker over these payloads,
possibly on several processes, preserving order" — so that parallel runs are
bit-for-bit identical to serial ones by construction: the same payloads are
built in the same order, and results are reassembled by position, never by
completion time.

``n_jobs`` convention (shared by :class:`repro.sim.runner.TrialRunner`,
:class:`repro.sim.sweep.ParameterSweep` and the experiment drivers):

* ``1`` (default) — run serially in the current process, no pool involved;
* ``k > 1`` — use up to ``k`` worker processes;
* any negative value — use one worker per available CPU.
"""

from __future__ import annotations

import atexit
import logging
import os
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, wait as _futures_wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.exceptions import ExperimentError
from repro.resilience.retry import RetryPolicy
from repro.telemetry.registry import default_registry
from repro.workloads.spec import registry_version

__all__ = [
    "check_n_jobs",
    "resolve_n_jobs",
    "map_ordered",
    "shutdown_persistent_pool",
]

#: Module-level alias so tests can monkeypatch the wait primitive (e.g. to
#: simulate a ``KeyboardInterrupt`` arriving mid-fan-out).
_wait = _futures_wait

#: Resilience events (retries, pool rebuilds, degradation) are logged here
#: with their payload indices and backoff delays, complementing the
#: structured counters in :class:`repro.resilience.ResilienceStats` that
#: ``last_run_stats()`` exposes.
logger = logging.getLogger("repro.resilience")

_PayloadT = TypeVar("_PayloadT")
_ResultT = TypeVar("_ResultT")


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial execution; negative values mean one worker
    per available CPU; ``0`` is rejected as ambiguous.
    """
    if n_jobs is None:
        return 1
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    if n_jobs == 0:
        raise ExperimentError("n_jobs must be positive or negative, not 0")
    return n_jobs


def check_n_jobs(n_jobs: Optional[int]) -> Optional[int]:
    """Validate an ``n_jobs`` value without resolving it to a worker count.

    The declarative layer (:class:`repro.plans.RunConfig`) validates plans at
    construction time, possibly on a different machine than the one that will
    run them — so only the convention is checked (``0`` is ambiguous and
    rejected), never the CPU count.
    """
    if n_jobs is not None and n_jobs == 0:
        raise ExperimentError("n_jobs must be positive or negative, not 0")
    return n_jobs


# One process pool, reused across map_ordered calls (and therefore across
# sweep points and whole experiments).  Spinning a pool up costs fork+import
# per worker; at paper scale a sweep used to pay that once per point.  The
# pool is keyed by its worker count: asking for a different n_jobs replaces
# it, asking for the same reuses it.  Workers are spawned lazily by the
# executor, so an oversized pool serving a tiny payload list costs nothing.
# All access goes through _pool_lock; map_ordered holds it for the whole
# parallel section, so concurrent threaded callers serialise their fan-outs
# rather than shutting each other's executor down mid-map.
_pool: Optional[ProcessPoolExecutor] = None
_pool_workers: int = 0
_pool_registry_version: int = -1
_pool_lock = threading.Lock()


def _acquire_pool_locked(max_workers: int) -> ProcessPoolExecutor:
    """Return the shared executor (caller must hold ``_pool_lock``).

    The pool is also keyed on the workload-registry version: forked workers
    snapshot the registry at pool creation, so a kind registered after that
    would be unknown to them.  A version bump forces a rebuild, re-forking
    the current parent state.
    """
    global _pool, _pool_workers, _pool_registry_version
    if max_workers <= 0:
        raise ExperimentError(f"max_workers must be positive, got {max_workers}")
    version = registry_version()
    if _pool is not None and (
        _pool_workers != max_workers or _pool_registry_version != version
    ):
        _shutdown_pool_locked()
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=max_workers)
        _pool_workers = max_workers
        _pool_registry_version = version
    return _pool


def _shutdown_pool_locked() -> None:
    global _pool, _pool_workers, _pool_registry_version
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None
        _pool_workers = 0
        _pool_registry_version = -1


def _terminate_pool_locked() -> None:
    """Tear the pool down without waiting — for broken, hung or interrupted pools.

    A graceful ``shutdown(wait=True)`` would block forever on a hung worker,
    so this path cancels queued futures, terminates the worker processes
    outright and resets the pool slot; the next :func:`_acquire_pool_locked`
    builds a fresh pool.
    """
    global _pool, _pool_workers, _pool_registry_version
    pool = _pool
    _pool = None
    _pool_workers = 0
    _pool_registry_version = -1
    if pool is None:
        return
    processes = list(getattr(pool, "_processes", None) or {})
    process_map = getattr(pool, "_processes", None) or {}
    workers = [process_map[pid] for pid in processes if pid in process_map]
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - shutdown of a broken pool
        pass
    for process in workers:
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already dead
            pass
    for process in workers:
        try:
            process.join(timeout=5.0)
        except Exception:  # pragma: no cover - already reaped
            pass


def shutdown_persistent_pool() -> None:
    """Shut the shared executor down (registered at interpreter exit)."""
    with _pool_lock:
        _shutdown_pool_locked()


atexit.register(shutdown_persistent_pool)


def _count(stats: Optional[object], name: str, amount: int = 1) -> None:
    """Bump a duck-typed counter (``ResilienceStats`` or anything like it)."""
    if stats is not None:
        setattr(stats, name, getattr(stats, name) + amount)


def _sleep_backoff(seconds: float) -> None:
    if seconds > 0:
        time.sleep(seconds)


def _run_one_with_retry(
    worker: Callable[[_PayloadT], _ResultT],
    payload: _PayloadT,
    policy: RetryPolicy,
    stats: Optional[object],
    token: int = 0,
) -> _ResultT:
    """Serial execution of one payload under the retry policy."""
    attempt = 0
    while True:
        try:
            return worker(payload)
        except Exception as error:
            attempt += 1
            if attempt > policy.max_retries:
                raise
            _count(stats, "retries")
            delay = policy.delay(attempt, token=token)
            logger.warning(
                "payload %d failed in-process (%r); retry %d/%d in %.3fs",
                token,
                error,
                attempt,
                policy.max_retries,
                delay,
            )
            _sleep_backoff(delay)


def _map_serial(
    worker: Callable[[_PayloadT], _ResultT],
    payloads: Sequence[_PayloadT],
    indices: Sequence[int],
    results: List[Optional[_ResultT]],
    finished: List[bool],
    policy: RetryPolicy,
    on_result: Optional[Callable[[int, _ResultT], None]],
    stats: Optional[object],
) -> None:
    """Run the given payload indices in order, in this process."""
    for index in indices:
        result = _run_one_with_retry(worker, payloads[index], policy, stats, index)
        results[index] = result
        finished[index] = True
        _count(stats, "executed")
        if on_result is not None:
            on_result(index, result)


def _drain_futures(
    pool: ProcessPoolExecutor,
    worker: Callable[[_PayloadT], _ResultT],
    payloads: Sequence[_PayloadT],
    futures: Dict[object, int],
    results: List[Optional[_ResultT]],
    finished: List[bool],
    attempts: List[int],
    policy: RetryPolicy,
    worker_timeout: Optional[float],
    on_result: Optional[Callable[[int, _ResultT], None]],
    stats: Optional[object],
) -> bool:
    """Collect futures as they complete; return True if the pool must go.

    Ordinary worker exceptions are retried in place (resubmitted to the same
    healthy pool, with backoff) until the payload's retry budget runs out —
    then the exception propagates.  A broken pool or a stall (no payload
    completing within ``worker_timeout``) returns ``True``: the caller
    rebuilds the pool and resubmits whatever is still unfinished.
    """
    pending = set(futures)
    while pending:
        done, pending = _wait(pending, timeout=worker_timeout)
        if not done:
            # No payload finished an entire timeout window: at least one
            # worker is hung (or every remaining payload legitimately takes
            # longer — set a generous timeout).  The pool must be killed;
            # ProcessPoolExecutor cannot abort an individual task.
            return True
        for future in done:
            index = futures.pop(future)
            try:
                result = future.result()
            except BrokenProcessPool:
                # A worker died; every sibling future is doomed too.  Keep
                # whatever already finished and let the caller rebuild.
                return True
            except Exception as error:
                attempts[index] += 1
                if attempts[index] > policy.max_retries:
                    for other in pending:
                        other.cancel()
                    raise
                _count(stats, "retries")
                delay = policy.delay(attempts[index], token=index)
                logger.warning(
                    "payload %d failed on the pool (%r); retry %d/%d in %.3fs",
                    index,
                    error,
                    attempts[index],
                    policy.max_retries,
                    delay,
                )
                _sleep_backoff(delay)
                try:
                    fresh = pool.submit(worker, payloads[index])
                except BrokenProcessPool:
                    return True
                futures[fresh] = index
                pending.add(fresh)
            else:
                results[index] = result
                finished[index] = True
                _count(stats, "executed")
                if on_result is not None:
                    on_result(index, result)
    return False


def _map_parallel_locked(
    worker: Callable[[_PayloadT], _ResultT],
    payloads: Sequence[_PayloadT],
    jobs: int,
    worker_timeout: Optional[float],
    policy: RetryPolicy,
    on_result: Optional[Callable[[int, _ResultT], None]],
    stats: Optional[object],
) -> List[_ResultT]:
    results: List[Optional[_ResultT]] = [None] * len(payloads)
    finished = [False] * len(payloads)
    attempts = [0] * len(payloads)
    rebuilds = 0
    while True:
        remaining = [index for index, ok in enumerate(finished) if not ok]
        if not remaining:
            return results  # type: ignore[return-value]
        pool = _acquire_pool_locked(jobs)
        try:
            futures = {
                pool.submit(worker, payloads[index]): index for index in remaining
            }
        except BrokenProcessPool:  # pragma: no cover - pool died between maps
            broken = True
        else:
            broken = _drain_futures(
                pool,
                worker,
                payloads,
                futures,
                results,
                finished,
                attempts,
                policy,
                worker_timeout,
                on_result,
                stats,
            )
        if not broken:
            continue  # loop re-checks `finished` and returns
        rebuilds += 1
        _count(stats, "pool_rebuilds")
        _terminate_pool_locked()
        logger.warning(
            "process pool broke or stalled; rebuild %d/%d (%d payloads "
            "unfinished)",
            rebuilds,
            policy.max_retries,
            sum(1 for ok in finished if not ok),
        )
        if rebuilds > policy.max_retries:
            # The pool keeps dying (poisoned payload? resource exhaustion?).
            # Results are pure functions of their payloads, so finishing the
            # campaign in-process is observationally identical — just slower
            # and unisolated.  Warn and degrade rather than fail.
            warnings.warn(
                f"process pool broke {rebuilds} times (retry budget "
                f"{policy.max_retries}); degrading to in-process serial "
                f"execution for the {sum(1 for ok in finished if not ok)} "
                "remaining payloads",
                RuntimeWarning,
                stacklevel=3,
            )
            logger.error(
                "degrading to in-process serial execution (%d payloads left)",
                sum(1 for ok in finished if not ok),
            )
            if stats is not None:
                stats.degraded = True
            _map_serial(
                worker,
                payloads,
                [index for index, ok in enumerate(finished) if not ok],
                results,
                finished,
                policy,
                on_result,
                stats,
            )
            return results  # type: ignore[return-value]
        _sleep_backoff(policy.delay(rebuilds))


def map_ordered(
    worker: Callable[[_PayloadT], _ResultT],
    payloads: Sequence[_PayloadT],
    n_jobs: Optional[int] = 1,
    *,
    worker_timeout: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    on_result: Optional[Callable[[int, _ResultT], None]] = None,
    stats: Optional[object] = None,
) -> List[_ResultT]:
    """Apply ``worker`` to every payload, preserving payload order.

    With ``n_jobs`` resolving to 1 (or at most one payload) this is a plain
    serial loop (plus the retry policy).  Otherwise every payload is
    submitted as its own future on the persistent
    :class:`concurrent.futures.ProcessPoolExecutor` (created on first use,
    reused across calls); ``worker`` must be a module-level function and the
    payloads picklable.  The result list is ordered by payload position
    regardless of completion order, which is what makes parallel trial
    execution deterministic.

    Fault isolation (the per-future submission is what pays for it):

    * an ordinary worker exception retries only *that* payload, on the same
      healthy pool, under ``retry`` (capped exponential backoff; default
      :class:`repro.resilience.RetryPolicy`) — its chunk-mates are
      untouched;
    * a dead worker (``BrokenProcessPool``) or a stall — no payload
      completing within ``worker_timeout`` seconds — tears the pool down
      (hung workers are terminated), rebuilds it, and resubmits only the
      unfinished payloads; completed results are never discarded;
    * after ``retry.max_retries`` pool rebuilds the campaign *degrades* to
      in-process serial execution with a :class:`RuntimeWarning` instead of
      failing — results are pure functions of their payloads, so the output
      is bit-identical either way;
    * ``KeyboardInterrupt`` cancels queued futures, terminates the pool and
      re-raises, so an interrupted campaign never leaks orphaned workers.

    ``on_result(index, result)`` fires as each payload completes (completion
    order, not payload order) — the checkpoint-store hook that makes
    campaigns crash-safe.  ``stats`` is a duck-typed counter object (see
    :class:`repro.resilience.ResilienceStats`).
    """
    policy = RetryPolicy() if retry is None else retry
    jobs = resolve_n_jobs(n_jobs)
    started = time.perf_counter()
    try:
        if jobs == 1 or len(payloads) <= 1:
            results: List[Optional[_ResultT]] = [None] * len(payloads)
            finished = [False] * len(payloads)
            _map_serial(
                worker,
                payloads,
                range(len(payloads)),
                results,
                finished,
                policy,
                on_result,
                stats,
            )
            return results  # type: ignore[return-value]
        with _pool_lock:
            try:
                return _map_parallel_locked(
                    worker, payloads, jobs, worker_timeout, policy, on_result, stats
                )
            except (KeyboardInterrupt, SystemExit):
                # Leave no orphaned workers behind: cancel queued futures,
                # terminate the pool and surface the interrupt to the caller.
                _terminate_pool_locked()
                raise
    finally:
        default_registry().histogram(
            "repro_fanout_seconds",
            "Wall time of one map_ordered fan-out (serial or pool).",
            labels=("mode",),
        ).observe(
            time.perf_counter() - started,
            mode="serial" if jobs == 1 or len(payloads) <= 1 else "pool",
        )
