"""Request-sequence generators used by the experiments.

The generators mirror the paper's methodology (Section 6.1):

* :class:`~repro.workloads.uniform.UniformWorkload` - locality-free baseline;
* :class:`~repro.workloads.temporal.TemporalWorkload` - repeat-probability ``p``
  temporal locality (Q2);
* :class:`~repro.workloads.zipf.ZipfWorkload` - Zipf spatial locality (Q3);
* :class:`~repro.workloads.composite.CombinedLocalityWorkload` - the Q4 grid;
* :class:`~repro.workloads.corpus.CorpusWorkload` - sliding-window text traces
  (Q5), with a deterministic synthetic corpus standing in for the Canterbury
  books;
* :class:`~repro.workloads.markov.MarkovWorkload` - clustered Markovian traffic
  used by the network substrate examples;
* :mod:`~repro.workloads.adversarial` - the Lemma 8 and Section 1.1 adaptive
  adversaries.
"""

from repro.workloads.adversarial import (
    MoveToFrontLowerBoundAdversary,
    RotorPushWorkingSetAdversary,
    round_robin_path_sequence,
    working_set_adversary_nodes,
)
from repro.workloads.base import SequenceWorkload, WorkloadGenerator
from repro.workloads.composite import CombinedLocalityWorkload, MixtureWorkload
from repro.workloads.corpus import (
    CorpusWorkload,
    next_complete_size,
    sliding_window_tokens,
    synthetic_corpus_workloads,
    tokens_to_requests,
)
from repro.workloads.markov import MarkovWorkload
from repro.workloads.spec import (
    DEFAULT_CHUNK_SIZE,
    WorkloadSpec,
    build_workload,
    register_workload,
    registered_kinds,
)
from repro.workloads.synthetic_text import (
    DEFAULT_BOOK_SPECS,
    SyntheticBook,
    generate_book,
    synthetic_corpus,
)
from repro.workloads.temporal import TemporalWorkload, apply_temporal_locality
from repro.workloads.trace_io import load_trace, load_trace_workload, save_trace
from repro.workloads.uniform import UniformWorkload
from repro.workloads.zipf import ZipfWorkload, zipf_probabilities

__all__ = [
    "CombinedLocalityWorkload",
    "CorpusWorkload",
    "DEFAULT_BOOK_SPECS",
    "DEFAULT_CHUNK_SIZE",
    "WorkloadSpec",
    "build_workload",
    "register_workload",
    "registered_kinds",
    "MarkovWorkload",
    "MixtureWorkload",
    "MoveToFrontLowerBoundAdversary",
    "RotorPushWorkingSetAdversary",
    "SequenceWorkload",
    "SyntheticBook",
    "TemporalWorkload",
    "UniformWorkload",
    "WorkloadGenerator",
    "ZipfWorkload",
    "apply_temporal_locality",
    "generate_book",
    "load_trace",
    "load_trace_workload",
    "next_complete_size",
    "round_robin_path_sequence",
    "save_trace",
    "sliding_window_tokens",
    "synthetic_corpus",
    "synthetic_corpus_workloads",
    "tokens_to_requests",
    "working_set_adversary_nodes",
    "zipf_probabilities",
]
