"""Request-sequence generators used by the experiments.

The generators mirror the paper's methodology (Section 6.1):

* :class:`~repro.workloads.uniform.UniformWorkload` - locality-free baseline;
* :class:`~repro.workloads.temporal.TemporalWorkload` - repeat-probability ``p``
  temporal locality (Q2);
* :class:`~repro.workloads.zipf.ZipfWorkload` - Zipf spatial locality (Q3);
* :class:`~repro.workloads.composite.CombinedLocalityWorkload` - the Q4 grid;
* :class:`~repro.workloads.corpus.CorpusWorkload` - sliding-window text traces
  (Q5), with a deterministic synthetic corpus standing in for the Canterbury
  books;
* :class:`~repro.workloads.markov.MarkovWorkload` - clustered Markovian traffic
  used by the network substrate examples;
* :mod:`~repro.workloads.adversarial` - the Lemma 8 and Section 1.1 adaptive
  adversaries, described declaratively by
  :class:`~repro.workloads.adversarial.AdversarySpec`.

Scenario-library kinds registered here: ``corpus`` (synthetic-book recipe or
file-backed), ``trace_file`` (replay of :mod:`~repro.workloads.trace_io`
dumps, metadata round-tripped) and ``round_robin_path`` (the Section 1.1
non-adaptive construction) — so every scenario the repo knows about ships as
spec data inside plan documents.
"""

from repro.workloads.adversarial import (
    AdversarySpec,
    MoveToFrontLowerBoundAdversary,
    RotorPushWorkingSetAdversary,
    RoundRobinPathWorkload,
    build_adversary,
    check_adversary_kind,
    register_adversary,
    registered_adversary_kinds,
    round_robin_path_sequence,
    working_set_adversary_nodes,
)
from repro.workloads.base import SequenceWorkload, WorkloadGenerator
from repro.workloads.composite import CombinedLocalityWorkload, MixtureWorkload
from repro.workloads.corpus import (
    CorpusWorkload,
    next_complete_size,
    sliding_window_tokens,
    synthetic_corpus_specs,
    synthetic_corpus_workloads,
    tokens_to_requests,
)
from repro.workloads.markov import MarkovWorkload
from repro.workloads.spec import (
    DEFAULT_CHUNK_SIZE,
    WorkloadSpec,
    build_workload,
    register_workload,
    registered_kinds,
)
from repro.workloads.synthetic_text import (
    DEFAULT_BOOK_SPECS,
    SyntheticBook,
    generate_book,
    synthetic_corpus,
)
from repro.workloads.temporal import TemporalWorkload, apply_temporal_locality
from repro.workloads.trace_io import (
    TraceFileWorkload,
    load_trace,
    load_trace_workload,
    save_trace,
    trace_digest,
)
from repro.workloads.uniform import UniformWorkload
from repro.workloads.zipf import ZipfWorkload, zipf_probabilities

__all__ = [
    "AdversarySpec",
    "CombinedLocalityWorkload",
    "CorpusWorkload",
    "DEFAULT_BOOK_SPECS",
    "DEFAULT_CHUNK_SIZE",
    "WorkloadSpec",
    "build_adversary",
    "build_workload",
    "check_adversary_kind",
    "register_adversary",
    "register_workload",
    "registered_adversary_kinds",
    "registered_kinds",
    "MarkovWorkload",
    "MixtureWorkload",
    "MoveToFrontLowerBoundAdversary",
    "RotorPushWorkingSetAdversary",
    "RoundRobinPathWorkload",
    "SequenceWorkload",
    "SyntheticBook",
    "TemporalWorkload",
    "TraceFileWorkload",
    "UniformWorkload",
    "WorkloadGenerator",
    "ZipfWorkload",
    "apply_temporal_locality",
    "generate_book",
    "load_trace",
    "load_trace_workload",
    "next_complete_size",
    "round_robin_path_sequence",
    "save_trace",
    "sliding_window_tokens",
    "synthetic_corpus",
    "synthetic_corpus_specs",
    "synthetic_corpus_workloads",
    "tokens_to_requests",
    "trace_digest",
    "working_set_adversary_nodes",
    "zipf_probabilities",
]
