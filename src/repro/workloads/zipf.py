"""Spatial-locality workloads drawn from a Zipf distribution.

Q3 of the paper controls spatial locality by sampling requests from a Zipf
(discrete power-law) distribution over the element universe: element ``k``
(1-based weight index) has probability proportional to ``k**(-a)``, where the
exponent ``a`` tunes the skew.  Larger ``a`` concentrates requests on a smaller
subset of elements and lowers the empirical entropy (the paper reports
entropies 11.07 ... 1.92 for ``a`` between 1.001 and 2.2 at 65,535 elements).

To decouple the skew from the element identifiers (the initial placement is
random anyway), the mapping from weight index to element identifier can be a
seeded random permutation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.exceptions import WorkloadError
from repro.types import ElementId
from repro.workloads.base import WorkloadGenerator, check_chunk_size
from repro.workloads.spec import DEFAULT_CHUNK_SIZE, WorkloadSpec, register_workload

__all__ = ["ZipfWorkload", "zipf_probabilities"]


def zipf_probabilities(n_elements: int, exponent: float) -> np.ndarray:
    """Return the Zipf probability vector ``p_k ∝ k**(-a)`` for ``k = 1..n``.

    Matches the probability mass function quoted in the paper's methodology:
    ``f(k, a) = 1 / (k**a * sum_i i**(-a))``.
    """
    if n_elements <= 0:
        raise WorkloadError(f"n_elements must be positive, got {n_elements}")
    if exponent <= 0:
        raise WorkloadError(f"Zipf exponent must be positive, got {exponent}")
    ranks = np.arange(1, n_elements + 1, dtype=np.float64)
    weights = ranks ** (-float(exponent))
    return weights / weights.sum()


class ZipfWorkload(WorkloadGenerator):
    """Independent requests drawn from a Zipf distribution with exponent ``a``.

    Parameters
    ----------
    n_elements:
        Size of the element universe.
    exponent:
        The skew parameter ``a > 0``; the paper uses values in
        ``{1.001, 1.3, 1.6, 1.9, 2.2}``.
    seed:
        Seed for sampling (and for the identifier permutation).
    permute_identifiers:
        When ``True`` (default) the Zipf weight ranks are mapped to element
        identifiers through a random permutation, so that popular elements are
        spread over the identifier space rather than being 0, 1, 2, ...
    """

    name = "zipf"

    def __init__(
        self,
        n_elements: int,
        exponent: float,
        seed: Optional[int] = None,
        permute_identifiers: bool = True,
    ) -> None:
        super().__init__(n_elements, seed)
        self.exponent = float(exponent)
        self.permute_identifiers = permute_identifiers
        self._probabilities = zipf_probabilities(n_elements, self.exponent)
        self._init_np_state()

    def _init_np_state(self) -> None:
        """Create the NumPy stream and identifier permutation from ``self.seed``."""
        self._np_rng = np.random.default_rng(self.seed)
        if self.permute_identifiers:
            self._identifier_of_rank = self._np_rng.permutation(self.n_elements)
        else:
            self._identifier_of_rank = np.arange(self.n_elements)

    def _reseed_derived(self) -> None:
        # The NumPy stream and the rank-to-identifier permutation are seed
        # state too; without this hook, reseed() would leave them stale.
        self._init_np_state()

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return ``n_requests`` independent Zipf-distributed element identifiers."""
        self._check_length(n_requests)
        if n_requests == 0:
            return []
        ranks = self._np_rng.choice(
            self.n_elements, size=n_requests, p=self._probabilities
        )
        return [int(identifier) for identifier in self._identifier_of_rank[ranks]]

    def iter_requests(
        self, n_requests: int, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Iterator[List[ElementId]]:
        """Stream natively: ``Generator.choice`` draws one uniform variate per
        request from the bit stream, so chunked draws concatenate to exactly
        one full-size draw."""
        self._check_length(n_requests)
        check_chunk_size(chunk_size)
        remaining = n_requests
        while remaining > 0:
            count = min(chunk_size, remaining)
            ranks = self._np_rng.choice(
                self.n_elements, size=count, p=self._probabilities
            )
            yield [int(identifier) for identifier in self._identifier_of_rank[ranks]]
            remaining -= count

    def to_spec(self) -> WorkloadSpec:
        return WorkloadSpec.create(
            "zipf",
            seed=self.seed,
            n_elements=self.n_elements,
            exponent=self.exponent,
            permute_identifiers=self.permute_identifiers,
        )

    def probability_of_rank(self, rank: int) -> float:
        """Return the sampling probability of the ``rank``-th most popular element."""
        if not 1 <= rank <= self.n_elements:
            raise WorkloadError(
                f"rank must lie in [1, {self.n_elements}], got {rank}"
            )
        return float(self._probabilities[rank - 1])

    def parameters(self):
        params = super().parameters()
        params["exponent"] = self.exponent
        params["permute_identifiers"] = self.permute_identifiers
        return params


@register_workload("zipf")
def _build_zipf(params: Dict[str, object], seed: Optional[int]) -> ZipfWorkload:
    return ZipfWorkload(
        int(params["n_elements"]),
        float(params["exponent"]),
        seed=seed,
        permute_identifiers=bool(params.get("permute_identifiers", True)),
    )
