"""Spatial-locality workloads drawn from a Zipf distribution.

Q3 of the paper controls spatial locality by sampling requests from a Zipf
(discrete power-law) distribution over the element universe: element ``k``
(1-based weight index) has probability proportional to ``k**(-a)``, where the
exponent ``a`` tunes the skew.  Larger ``a`` concentrates requests on a smaller
subset of elements and lowers the empirical entropy (the paper reports
entropies 11.07 ... 1.92 for ``a`` between 1.001 and 2.2 at 65,535 elements).

To decouple the skew from the element identifiers (the initial placement is
random anyway), the mapping from weight index to element identifier can be a
seeded random permutation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import WorkloadError
from repro.types import ElementId
from repro.workloads.base import WorkloadGenerator

__all__ = ["ZipfWorkload", "zipf_probabilities"]


def zipf_probabilities(n_elements: int, exponent: float) -> np.ndarray:
    """Return the Zipf probability vector ``p_k ∝ k**(-a)`` for ``k = 1..n``.

    Matches the probability mass function quoted in the paper's methodology:
    ``f(k, a) = 1 / (k**a * sum_i i**(-a))``.
    """
    if n_elements <= 0:
        raise WorkloadError(f"n_elements must be positive, got {n_elements}")
    if exponent <= 0:
        raise WorkloadError(f"Zipf exponent must be positive, got {exponent}")
    ranks = np.arange(1, n_elements + 1, dtype=np.float64)
    weights = ranks ** (-float(exponent))
    return weights / weights.sum()


class ZipfWorkload(WorkloadGenerator):
    """Independent requests drawn from a Zipf distribution with exponent ``a``.

    Parameters
    ----------
    n_elements:
        Size of the element universe.
    exponent:
        The skew parameter ``a > 0``; the paper uses values in
        ``{1.001, 1.3, 1.6, 1.9, 2.2}``.
    seed:
        Seed for sampling (and for the identifier permutation).
    permute_identifiers:
        When ``True`` (default) the Zipf weight ranks are mapped to element
        identifiers through a random permutation, so that popular elements are
        spread over the identifier space rather than being 0, 1, 2, ...
    """

    name = "zipf"

    def __init__(
        self,
        n_elements: int,
        exponent: float,
        seed: Optional[int] = None,
        permute_identifiers: bool = True,
    ) -> None:
        super().__init__(n_elements, seed)
        self.exponent = float(exponent)
        self.permute_identifiers = permute_identifiers
        self._probabilities = zipf_probabilities(n_elements, self.exponent)
        self._np_rng = np.random.default_rng(seed)
        if permute_identifiers:
            self._identifier_of_rank = self._np_rng.permutation(n_elements)
        else:
            self._identifier_of_rank = np.arange(n_elements)

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return ``n_requests`` independent Zipf-distributed element identifiers."""
        self._check_length(n_requests)
        if n_requests == 0:
            return []
        ranks = self._np_rng.choice(
            self.n_elements, size=n_requests, p=self._probabilities
        )
        return [int(identifier) for identifier in self._identifier_of_rank[ranks]]

    def probability_of_rank(self, rank: int) -> float:
        """Return the sampling probability of the ``rank``-th most popular element."""
        if not 1 <= rank <= self.n_elements:
            raise WorkloadError(
                f"rank must lie in [1, {self.n_elements}], got {rank}"
            )
        return float(self._probabilities[rank - 1])

    def parameters(self):
        params = super().parameters()
        params["exponent"] = self.exponent
        params["permute_identifiers"] = self.permute_identifiers
        return params
