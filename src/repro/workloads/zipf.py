"""Spatial-locality workloads drawn from a Zipf distribution.

Q3 of the paper controls spatial locality by sampling requests from a Zipf
(discrete power-law) distribution over the element universe: element ``k``
(1-based weight index) has probability proportional to ``k**(-a)``, where the
exponent ``a`` tunes the skew.  Larger ``a`` concentrates requests on a smaller
subset of elements and lowers the empirical entropy (the paper reports
entropies 11.07 ... 1.92 for ``a`` between 1.001 and 2.2 at 65,535 elements).

To decouple the skew from the element identifiers (the initial placement is
random anyway), the mapping from weight index to element identifier can be a
seeded random permutation.

Sampling is NumPy-vectorised when NumPy is importable (``Generator.choice``
over the probability vector, whole chunks at a time, handed to the array
serve backend without ever boxing a Python int); without NumPy a pure-Python
inverse-CDF sampler (one ``random()`` + ``bisect`` per request) takes over.
Both samplers are deterministic given the seed, but they consume different
RNGs — a NumPy environment and a NumPy-less environment draw *different*
(equally valid) Zipf sequences.  Within one environment every guarantee
holds: spec round-trips, chunked == materialised, reseed == fresh
construction, and list chunks == array chunks.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core import backend as _backend
from repro.exceptions import WorkloadError
from repro.types import ElementId
from repro.workloads.base import WorkloadGenerator, check_as_array, check_chunk_size
from repro.workloads.spec import DEFAULT_CHUNK_SIZE, WorkloadSpec, register_workload

__all__ = ["ZipfWorkload", "zipf_probabilities"]


def zipf_probabilities(n_elements: int, exponent: float) -> Sequence[float]:
    """Return the Zipf probability vector ``p_k ∝ k**(-a)`` for ``k = 1..n``.

    Matches the probability mass function quoted in the paper's methodology:
    ``f(k, a) = 1 / (k**a * sum_i i**(-a))``.  Returns a NumPy vector when
    NumPy is importable and a plain list of floats otherwise; both index and
    iterate identically.
    """
    if n_elements <= 0:
        raise WorkloadError(f"n_elements must be positive, got {n_elements}")
    if exponent <= 0:
        raise WorkloadError(f"Zipf exponent must be positive, got {exponent}")
    if _backend.HAS_NUMPY:
        np = _backend.np
        ranks = np.arange(1, n_elements + 1, dtype=np.float64)
        weights = ranks ** (-float(exponent))
        return weights / weights.sum()
    weights = [rank ** (-float(exponent)) for rank in range(1, n_elements + 1)]
    total = sum(weights)
    return [weight / total for weight in weights]


class ZipfWorkload(WorkloadGenerator):
    """Independent requests drawn from a Zipf distribution with exponent ``a``.

    Parameters
    ----------
    n_elements:
        Size of the element universe.
    exponent:
        The skew parameter ``a > 0``; the paper uses values in
        ``{1.001, 1.3, 1.6, 1.9, 2.2}``.
    seed:
        Seed for sampling (and for the identifier permutation).
    permute_identifiers:
        When ``True`` (default) the Zipf weight ranks are mapped to element
        identifiers through a random permutation, so that popular elements are
        spread over the identifier space rather than being 0, 1, 2, ...
    """

    name = "zipf"

    def __init__(
        self,
        n_elements: int,
        exponent: float,
        seed: Optional[int] = None,
        permute_identifiers: bool = True,
    ) -> None:
        super().__init__(n_elements, seed)
        self.exponent = float(exponent)
        self.permute_identifiers = permute_identifiers
        self._probabilities = zipf_probabilities(n_elements, self.exponent)
        self._init_sampler_state()

    def _init_sampler_state(self) -> None:
        """Create the sampling stream and identifier permutation from ``self.seed``.

        NumPy environments use a ``default_rng`` stream whose ``choice`` draws
        whole chunks at once; NumPy-less environments fall back to an
        inverse-CDF sampler over ``self._rng`` (cumulative probabilities +
        bisect), consuming one uniform variate per request.
        """
        if _backend.HAS_NUMPY:
            np = _backend.np
            self._np_rng = np.random.default_rng(self.seed)
            if self.permute_identifiers:
                self._identifier_of_rank = self._np_rng.permutation(self.n_elements)
            else:
                self._identifier_of_rank = np.arange(self.n_elements)
            self._cumulative = None
        else:
            self._np_rng = None
            identifiers = list(range(self.n_elements))
            if self.permute_identifiers:
                # A dedicated Random keeps the permutation separate from the
                # sampling stream, mirroring the NumPy split (permutation
                # first, then draws) under reseed().
                random.Random(self.seed).shuffle(identifiers)
            self._identifier_of_rank = identifiers
            self._cumulative = list(itertools.accumulate(self._probabilities))
            # Guard against float summation drift: the last bucket must cover
            # random() draws arbitrarily close to 1.0.
            self._cumulative[-1] = 1.0

    def _reseed_derived(self) -> None:
        # The sampling stream and the rank-to-identifier permutation are seed
        # state too; without this hook, reseed() would leave them stale.
        self._init_sampler_state()

    def _draw_ranks_python(self, count: int) -> List[int]:
        """Pure-Python sampler: inverse CDF via bisect, one draw per request."""
        cumulative = self._cumulative
        rng_random = self._rng.random
        # rank = first index whose cumulative mass exceeds the uniform draw
        return [bisect.bisect_right(cumulative, rng_random()) for _ in range(count)]

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return ``n_requests`` independent Zipf-distributed element identifiers."""
        self._check_length(n_requests)
        if n_requests == 0:
            return []
        if self._np_rng is not None:
            ranks = self._np_rng.choice(
                self.n_elements, size=n_requests, p=self._probabilities
            )
            return [int(identifier) for identifier in self._identifier_of_rank[ranks]]
        identifier_of_rank = self._identifier_of_rank
        return [identifier_of_rank[rank] for rank in self._draw_ranks_python(n_requests)]

    def iter_requests(
        self,
        n_requests: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        as_array: bool = False,
    ) -> Iterator[List[ElementId]]:
        """Stream natively: both samplers draw one variate per request from
        their stream, so chunked draws concatenate to exactly one full-size
        draw.  With ``as_array=True`` the NumPy draw is yielded as the ndarray
        it already is — identifiers never round-trip through Python ints."""
        self._check_length(n_requests)
        check_chunk_size(chunk_size)
        check_as_array(as_array)
        remaining = n_requests
        while remaining > 0:
            count = min(chunk_size, remaining)
            if self._np_rng is not None:
                ranks = self._np_rng.choice(
                    self.n_elements, size=count, p=self._probabilities
                )
                identifiers = self._identifier_of_rank[ranks]
                yield identifiers if as_array else [
                    int(identifier) for identifier in identifiers
                ]
            else:
                identifier_of_rank = self._identifier_of_rank
                yield [
                    identifier_of_rank[rank]
                    for rank in self._draw_ranks_python(count)
                ]
            remaining -= count

    def to_spec(self) -> WorkloadSpec:
        return WorkloadSpec.create(
            "zipf",
            seed=self.seed,
            n_elements=self.n_elements,
            exponent=self.exponent,
            permute_identifiers=self.permute_identifiers,
        )

    def probability_of_rank(self, rank: int) -> float:
        """Return the sampling probability of the ``rank``-th most popular element."""
        if not 1 <= rank <= self.n_elements:
            raise WorkloadError(
                f"rank must lie in [1, {self.n_elements}], got {rank}"
            )
        return float(self._probabilities[rank - 1])

    def parameters(self):
        params = super().parameters()
        params["exponent"] = self.exponent
        params["permute_identifiers"] = self.permute_identifiers
        return params


@register_workload("zipf")
def _build_zipf(params: Dict[str, object], seed: Optional[int]) -> ZipfWorkload:
    return ZipfWorkload(
        int(params["n_elements"]),
        float(params["exponent"]),
        seed=seed,
        permute_identifiers=bool(params.get("permute_identifiers", True)),
    )
