"""Adversarial request constructions from the paper's analytical sections.

Two adaptive adversaries are provided:

* :class:`RotorPushWorkingSetAdversary` implements the Lemma 8 construction
  showing that Rotor-Push lacks the working-set property: requests are confined
  to the elements hosted by the set ``S`` consisting of the root and the two
  leftmost nodes of every level, and each request targets the deepest node of
  ``S`` that currently lies on the global path.  The working-set size is at
  most ``|S| = 2x - 1`` while the access cost eventually reaches the full tree
  depth, i.e. it grows linearly in the working-set size.

* :class:`MoveToFrontLowerBoundAdversary` implements the Section 1.1 lower
  bound against the naive Move-To-Front generalisation: the elements of one
  root-to-leaf path are requested round-robin (always the one currently at the
  leaf), forcing cost ``Theta(log n)`` per request while an offline algorithm
  could pack those ``Theta(log n)`` elements into the top ``Theta(log log n)``
  levels.

Both adversaries are *adaptive*: they must observe the online algorithm's tree
to pick the next request, so each owns a private algorithm instance and
produces the realised request sequence together with the per-request costs.
They are described declaratively by :class:`AdversarySpec` — the adversarial
twin of :class:`~repro.workloads.spec.WorkloadSpec`: a registry-validated,
JSON round-trippable recipe that pool workers rebuild and drive worker-side
(see ``AdversarySource`` in :mod:`repro.sim.runner`), so lower-bound curves
run under ``repro.run()`` with fan-out and caching like every other scenario.

The non-adaptive equivalent of the Move-To-Front construction is exposed both
as :func:`round_robin_path_sequence` and as the registered ``round_robin_path``
workload kind (:class:`RoundRobinPathWorkload`) for use as a plain workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.algorithms.move_to_front import MoveToFrontTree
from repro.algorithms.rotor_push import RotorPush
from repro.core.cost import RequestCost
from repro.core.state import TreeNetwork
from repro.core.tree import CompleteBinaryTree
from repro.exceptions import WorkloadError
from repro.types import ElementId, NodeId
from repro.workloads.base import (
    WorkloadGenerator,
    check_as_array,
    check_chunk_size,
    chunk_to_array,
)
from repro.workloads.spec import (
    DEFAULT_CHUNK_SIZE,
    WorkloadSpec,
    freeze_params,
    register_workload,
    thaw_value,
)

__all__ = [
    "AdversarySpec",
    "RotorPushWorkingSetAdversary",
    "MoveToFrontLowerBoundAdversary",
    "RoundRobinPathWorkload",
    "build_adversary",
    "check_adversary_kind",
    "register_adversary",
    "registered_adversary_kinds",
    "working_set_adversary_nodes",
    "round_robin_path_sequence",
]


def working_set_adversary_nodes(tree: CompleteBinaryTree) -> Set[NodeId]:
    """Return the node set ``S`` of Lemma 8: the root plus the two leftmost nodes per level."""
    nodes: Set[NodeId] = {tree.root}
    for level in range(1, tree.depth + 1):
        first = tree.first_node_at_level(level)
        nodes.add(first)
        nodes.add(first + 1)
    return nodes


def round_robin_path_sequence(depth: int, n_requests: int) -> List[ElementId]:
    """Return the Section 1.1 round-robin sequence over the leftmost root-to-leaf path.

    Assuming the identity placement, the elements on the leftmost path are the
    nodes ``2**l - 1`` for levels ``l = 0 .. depth``; under the Move-To-Front
    tree dynamics "always request the element at the leaf" is equivalent to the
    fixed cyclic order leaf-element, next-deeper-element, ..., root-element.
    """
    if depth < 0:
        raise WorkloadError(f"depth must be non-negative, got {depth}")
    if n_requests < 0:
        raise WorkloadError(f"n_requests must be non-negative, got {n_requests}")
    path_elements = [(1 << level) - 1 for level in range(depth, -1, -1)]
    return [path_elements[i % len(path_elements)] for i in range(n_requests)]


class RoundRobinPathWorkload(WorkloadGenerator):
    """The Section 1.1 round-robin path sequence as a registered workload.

    Deterministic and seedless: request ``i`` is the ``(i mod (depth+1))``-th
    element of the cyclic order leaf-element, next-deeper-element, ...,
    root-element (identity placement).  Unlike the adaptive adversaries this
    construction is a plain request stream, so it can be pointed at *any*
    algorithm through the ordinary spec/plan machinery — e.g. to compare how
    Rotor-Push and Move-To-Front fare on the same lower-bound input.
    """

    name = "round-robin-path"

    def __init__(self, depth: int) -> None:
        if depth < 0:
            raise WorkloadError(f"depth must be non-negative, got {depth}")
        tree = CompleteBinaryTree.from_depth(depth)
        super().__init__(tree.n_nodes, seed=None)
        self.depth = depth
        self._path_elements = [
            (1 << level) - 1 for level in range(depth, -1, -1)
        ]

    def generate(self, n_requests: int) -> List[ElementId]:
        self._check_length(n_requests)
        path = self._path_elements
        return [path[i % len(path)] for i in range(n_requests)]

    def iter_requests(
        self,
        n_requests: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        as_array: bool = False,
    ) -> Iterator[List[ElementId]]:
        """Stream natively: the cyclic position carries across chunks."""
        self._check_length(n_requests)
        check_chunk_size(chunk_size)
        check_as_array(as_array)
        path = self._path_elements
        for start in range(0, n_requests, chunk_size):
            stop = min(start + chunk_size, n_requests)
            chunk = [path[i % len(path)] for i in range(start, stop)]
            yield chunk_to_array(chunk) if as_array else chunk

    def to_spec(self) -> WorkloadSpec:
        return WorkloadSpec.create(
            "round_robin_path", depth=self.depth, n_elements=self.n_elements
        )

    def parameters(self):
        params = super().parameters()
        params["depth"] = self.depth
        params["path_length"] = len(self._path_elements)
        return params


@register_workload("round_robin_path")
def _build_round_robin_path(
    params: Dict[str, object], seed: Optional[int]
) -> RoundRobinPathWorkload:
    del seed  # deterministic construction; trial seeding cannot apply
    workload = RoundRobinPathWorkload(int(params["depth"]))
    declared = params.get("n_elements")
    if declared is not None and int(declared) != workload.n_elements:
        raise WorkloadError(
            f"round_robin_path depth {workload.depth} implies a universe of "
            f"{workload.n_elements} elements but the spec declares {declared}"
        )
    return workload


class RotorPushWorkingSetAdversary(WorkloadGenerator):
    """Adaptive adversary realising the Lemma 8 working-set-property violation.

    The adversary simulates its own Rotor-Push instance starting from the
    identity placement with all rotor pointers to the left (the initial state
    used in the lemma) and repeatedly requests ``el(v)`` where ``v`` is the
    deepest node that lies both in ``S`` and on the current global path.

    Parameters
    ----------
    depth:
        Tree depth ``x - 1`` (the lemma's tree has ``x`` levels).
    """

    name = "rotor-ws-adversary"

    def __init__(self, depth: int) -> None:
        tree = CompleteBinaryTree.from_depth(depth)
        super().__init__(tree.n_nodes, seed=None)
        network = TreeNetwork(tree, with_rotor=True)
        self._algorithm = RotorPush(network)
        self._target_nodes = working_set_adversary_nodes(tree)

    @property
    def algorithm(self) -> RotorPush:
        """The private Rotor-Push instance driven by the adversary."""
        return self._algorithm

    def _next_target(self) -> NodeId:
        """Return the deepest global-path node belonging to ``S``."""
        rotor = self._algorithm.network.rotor
        deepest = self._algorithm.network.tree.root
        for node in rotor.global_path():
            if node in self._target_nodes:
                deepest = node
        return deepest

    def generate_with_costs(
        self, n_requests: int
    ) -> Tuple[List[ElementId], List[RequestCost]]:
        """Produce ``n_requests`` adaptive requests and the costs Rotor-Push paid."""
        self._check_length(n_requests)
        sequence: List[ElementId] = []
        costs: List[RequestCost] = []
        for _ in range(n_requests):
            target = self._next_target()
            element = self._algorithm.network.element_at(target)
            sequence.append(element)
            costs.append(self._algorithm.serve(element))
        return sequence, costs

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return only the realised request sequence (costs are discarded)."""
        sequence, _ = self.generate_with_costs(n_requests)
        return sequence

    def parameters(self):
        params = super().parameters()
        params["depth"] = self._algorithm.network.tree.depth
        params["target_set_size"] = len(self._target_nodes)
        return params


class MoveToFrontLowerBoundAdversary(WorkloadGenerator):
    """Adaptive adversary realising the Section 1.1 lower bound against MTF-on-a-tree.

    Always requests the element currently stored at the leaf of the (initially
    leftmost) root-to-leaf path of its private Move-To-Front instance.
    """

    name = "mtf-lower-bound-adversary"

    def __init__(self, depth: int) -> None:
        tree = CompleteBinaryTree.from_depth(depth)
        super().__init__(tree.n_nodes, seed=None)
        network = TreeNetwork(tree)
        self._algorithm = MoveToFrontTree(network)
        self._leaf = tree.first_node_at_level(tree.depth)

    @property
    def algorithm(self) -> MoveToFrontTree:
        """The private Move-To-Front instance driven by the adversary."""
        return self._algorithm

    def generate_with_costs(
        self, n_requests: int
    ) -> Tuple[List[ElementId], List[RequestCost]]:
        """Produce ``n_requests`` adaptive requests and the costs MTF paid."""
        self._check_length(n_requests)
        sequence: List[ElementId] = []
        costs: List[RequestCost] = []
        for _ in range(n_requests):
            element = self._algorithm.network.element_at(self._leaf)
            sequence.append(element)
            costs.append(self._algorithm.serve(element))
        return sequence, costs

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return only the realised request sequence (costs are discarded)."""
        sequence, _ = self.generate_with_costs(n_requests)
        return sequence

    def parameters(self):
        params = super().parameters()
        params["depth"] = self._algorithm.network.tree.depth
        return params


# --------------------------------------------------------------------------
# AdversarySpec: declarative descriptions of the adaptive adversaries.
# --------------------------------------------------------------------------

#: One builder per registered adversary kind: ``params -> adversary``.
_ADVERSARY_REGISTRY: Dict[str, Callable[[Dict[str, object]], WorkloadGenerator]] = {}


def register_adversary(kind: str) -> Callable:
    """Class decorator registering a builder for an adversary kind."""

    def decorator(builder: Callable) -> Callable:
        _ADVERSARY_REGISTRY[kind] = builder
        return builder

    return decorator


def registered_adversary_kinds() -> List[str]:
    """Return the registered adversary kinds, sorted."""
    return sorted(_ADVERSARY_REGISTRY)


def check_adversary_kind(kind: str) -> str:
    """Validate an adversary kind eagerly, listing the alternatives on error."""
    if kind not in _ADVERSARY_REGISTRY:
        known = ", ".join(sorted(_ADVERSARY_REGISTRY)) or "(none registered)"
        raise WorkloadError(f"unknown adversary kind {kind!r}; registered: {known}")
    return kind


@dataclass(frozen=True)
class AdversarySpec:
    """Immutable, registry-validated description of an adaptive adversary.

    The adversarial twin of :class:`~repro.workloads.spec.WorkloadSpec`.  An
    adaptive adversary cannot be a workload spec — it must *observe* the
    algorithm's tree, so the request sequence only exists once the private
    algorithm instance runs.  The spec therefore names the construction and
    its parameters; pool workers :meth:`build` the adversary and drive it via
    ``generate_with_costs`` (see ``AdversarySource`` in
    :mod:`repro.sim.runner`).  Every field is result-determining, so the spec
    participates verbatim in payload cache keys.
    """

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        check_adversary_kind(self.kind)

    @classmethod
    def create(cls, kind: str, **params: object) -> "AdversarySpec":
        """Build a spec from keyword parameters (validated eagerly)."""
        return cls(kind=kind, params=freeze_params(params))

    def param_dict(self) -> Dict[str, object]:
        """Return the parameters as a plain dictionary."""
        return dict(self.params)

    def get(self, name: str, default: object = None) -> object:
        """Return one parameter (or ``default``)."""
        return self.param_dict().get(name, default)

    def build(self) -> WorkloadGenerator:
        """Construct the described adversary (fresh private algorithm state)."""
        return _ADVERSARY_REGISTRY[self.kind](self.param_dict())

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-serialisable representation."""
        return {
            "kind": self.kind,
            "params": {name: thaw_value(value) for name, value in self.params},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AdversarySpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls.create(str(data["kind"]), **dict(data.get("params", {})))


def build_adversary(spec: AdversarySpec) -> WorkloadGenerator:
    """Construct the adversary described by ``spec`` (module-level alias)."""
    return spec.build()


@register_adversary("rotor-working-set")
def _build_rotor_working_set(params: Dict[str, object]) -> RotorPushWorkingSetAdversary:
    return RotorPushWorkingSetAdversary(int(params["depth"]))


@register_adversary("mtf-lower-bound")
def _build_mtf_lower_bound(params: Dict[str, object]) -> MoveToFrontLowerBoundAdversary:
    return MoveToFrontLowerBoundAdversary(int(params["depth"]))
