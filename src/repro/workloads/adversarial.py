"""Adversarial request constructions from the paper's analytical sections.

Two adaptive adversaries are provided:

* :class:`RotorPushWorkingSetAdversary` implements the Lemma 8 construction
  showing that Rotor-Push lacks the working-set property: requests are confined
  to the elements hosted by the set ``S`` consisting of the root and the two
  leftmost nodes of every level, and each request targets the deepest node of
  ``S`` that currently lies on the global path.  The working-set size is at
  most ``|S| = 2x - 1`` while the access cost eventually reaches the full tree
  depth, i.e. it grows linearly in the working-set size.

* :class:`MoveToFrontLowerBoundAdversary` implements the Section 1.1 lower
  bound against the naive Move-To-Front generalisation: the elements of one
  root-to-leaf path are requested round-robin (always the one currently at the
  leaf), forcing cost ``Theta(log n)`` per request while an offline algorithm
  could pack those ``Theta(log n)`` elements into the top ``Theta(log log n)``
  levels.

Both adversaries are *adaptive*: they must observe the online algorithm's tree
to pick the next request, so each owns a private algorithm instance and
produces the realised request sequence together with the per-request costs.
The non-adaptive equivalent of the Move-To-Front construction is also exposed
as :func:`round_robin_path_sequence` for use as a plain workload.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.algorithms.move_to_front import MoveToFrontTree
from repro.algorithms.rotor_push import RotorPush
from repro.core.cost import RequestCost
from repro.core.state import TreeNetwork
from repro.core.tree import CompleteBinaryTree
from repro.exceptions import WorkloadError
from repro.types import ElementId, NodeId
from repro.workloads.base import WorkloadGenerator

__all__ = [
    "RotorPushWorkingSetAdversary",
    "MoveToFrontLowerBoundAdversary",
    "working_set_adversary_nodes",
    "round_robin_path_sequence",
]


def working_set_adversary_nodes(tree: CompleteBinaryTree) -> Set[NodeId]:
    """Return the node set ``S`` of Lemma 8: the root plus the two leftmost nodes per level."""
    nodes: Set[NodeId] = {tree.root}
    for level in range(1, tree.depth + 1):
        first = tree.first_node_at_level(level)
        nodes.add(first)
        nodes.add(first + 1)
    return nodes


def round_robin_path_sequence(depth: int, n_requests: int) -> List[ElementId]:
    """Return the Section 1.1 round-robin sequence over the leftmost root-to-leaf path.

    Assuming the identity placement, the elements on the leftmost path are the
    nodes ``2**l - 1`` for levels ``l = 0 .. depth``; under the Move-To-Front
    tree dynamics "always request the element at the leaf" is equivalent to the
    fixed cyclic order leaf-element, next-deeper-element, ..., root-element.
    """
    if depth < 0:
        raise WorkloadError(f"depth must be non-negative, got {depth}")
    if n_requests < 0:
        raise WorkloadError(f"n_requests must be non-negative, got {n_requests}")
    path_elements = [(1 << level) - 1 for level in range(depth, -1, -1)]
    return [path_elements[i % len(path_elements)] for i in range(n_requests)]


class RotorPushWorkingSetAdversary(WorkloadGenerator):
    """Adaptive adversary realising the Lemma 8 working-set-property violation.

    The adversary simulates its own Rotor-Push instance starting from the
    identity placement with all rotor pointers to the left (the initial state
    used in the lemma) and repeatedly requests ``el(v)`` where ``v`` is the
    deepest node that lies both in ``S`` and on the current global path.

    Parameters
    ----------
    depth:
        Tree depth ``x - 1`` (the lemma's tree has ``x`` levels).
    """

    name = "rotor-ws-adversary"

    def __init__(self, depth: int) -> None:
        tree = CompleteBinaryTree.from_depth(depth)
        super().__init__(tree.n_nodes, seed=None)
        network = TreeNetwork(tree, with_rotor=True)
        self._algorithm = RotorPush(network)
        self._target_nodes = working_set_adversary_nodes(tree)

    @property
    def algorithm(self) -> RotorPush:
        """The private Rotor-Push instance driven by the adversary."""
        return self._algorithm

    def _next_target(self) -> NodeId:
        """Return the deepest global-path node belonging to ``S``."""
        rotor = self._algorithm.network.rotor
        deepest = self._algorithm.network.tree.root
        for node in rotor.global_path():
            if node in self._target_nodes:
                deepest = node
        return deepest

    def generate_with_costs(
        self, n_requests: int
    ) -> Tuple[List[ElementId], List[RequestCost]]:
        """Produce ``n_requests`` adaptive requests and the costs Rotor-Push paid."""
        self._check_length(n_requests)
        sequence: List[ElementId] = []
        costs: List[RequestCost] = []
        for _ in range(n_requests):
            target = self._next_target()
            element = self._algorithm.network.element_at(target)
            sequence.append(element)
            costs.append(self._algorithm.serve(element))
        return sequence, costs

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return only the realised request sequence (costs are discarded)."""
        sequence, _ = self.generate_with_costs(n_requests)
        return sequence

    def parameters(self):
        params = super().parameters()
        params["depth"] = self._algorithm.network.tree.depth
        params["target_set_size"] = len(self._target_nodes)
        return params


class MoveToFrontLowerBoundAdversary(WorkloadGenerator):
    """Adaptive adversary realising the Section 1.1 lower bound against MTF-on-a-tree.

    Always requests the element currently stored at the leaf of the (initially
    leftmost) root-to-leaf path of its private Move-To-Front instance.
    """

    name = "mtf-lower-bound-adversary"

    def __init__(self, depth: int) -> None:
        tree = CompleteBinaryTree.from_depth(depth)
        super().__init__(tree.n_nodes, seed=None)
        network = TreeNetwork(tree)
        self._algorithm = MoveToFrontTree(network)
        self._leaf = tree.first_node_at_level(tree.depth)

    @property
    def algorithm(self) -> MoveToFrontTree:
        """The private Move-To-Front instance driven by the adversary."""
        return self._algorithm

    def generate_with_costs(
        self, n_requests: int
    ) -> Tuple[List[ElementId], List[RequestCost]]:
        """Produce ``n_requests`` adaptive requests and the costs MTF paid."""
        self._check_length(n_requests)
        sequence: List[ElementId] = []
        costs: List[RequestCost] = []
        for _ in range(n_requests):
            element = self._algorithm.network.element_at(self._leaf)
            sequence.append(element)
            costs.append(self._algorithm.serve(element))
        return sequence, costs

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return only the realised request sequence (costs are discarded)."""
        sequence, _ = self.generate_with_costs(n_requests)
        return sequence

    def parameters(self):
        params = super().parameters()
        params["depth"] = self._algorithm.network.tree.depth
        return params
