"""Uniformly random request sequences.

The locality-free baseline workload: every request is drawn independently and
uniformly from the element universe.  The paper uses it directly for the
Rotor-Push vs Random-Push histogram (Figure 5b) and as the starting point of
the temporal-locality post-processing (Q2).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.types import ElementId
from repro.workloads.base import (
    WorkloadGenerator,
    check_as_array,
    check_chunk_size,
    chunk_to_array,
)
from repro.workloads.spec import DEFAULT_CHUNK_SIZE, WorkloadSpec, register_workload

__all__ = ["UniformWorkload"]


class UniformWorkload(WorkloadGenerator):
    """Independent uniform requests over the whole element universe."""

    name = "uniform"

    def __init__(self, n_elements: int, seed: Optional[int] = None) -> None:
        super().__init__(n_elements, seed)

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return ``n_requests`` i.i.d. uniform element identifiers."""
        self._check_length(n_requests)
        n = self.n_elements
        rng = self._rng
        return [rng.randrange(n) for _ in range(n_requests)]

    def iter_requests(
        self,
        n_requests: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        as_array: bool = False,
    ) -> Iterator[List[ElementId]]:
        """Stream natively: draws are sequential, so chunking is exact."""
        self._check_length(n_requests)
        check_chunk_size(chunk_size)
        check_as_array(as_array)
        n = self.n_elements
        rng = self._rng
        remaining = n_requests
        while remaining > 0:
            count = min(chunk_size, remaining)
            chunk = [rng.randrange(n) for _ in range(count)]
            yield chunk_to_array(chunk) if as_array else chunk
            remaining -= count

    def to_spec(self) -> WorkloadSpec:
        return WorkloadSpec.create("uniform", seed=self.seed, n_elements=self.n_elements)


@register_workload("uniform")
def _build_uniform(params: Dict[str, object], seed: Optional[int]) -> UniformWorkload:
    return UniformWorkload(int(params["n_elements"]), seed=seed)
