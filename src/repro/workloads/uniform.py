"""Uniformly random request sequences.

The locality-free baseline workload: every request is drawn independently and
uniformly from the element universe.  The paper uses it directly for the
Rotor-Push vs Random-Push histogram (Figure 5b) and as the starting point of
the temporal-locality post-processing (Q2).
"""

from __future__ import annotations

from typing import List, Optional

from repro.types import ElementId
from repro.workloads.base import WorkloadGenerator

__all__ = ["UniformWorkload"]


class UniformWorkload(WorkloadGenerator):
    """Independent uniform requests over the whole element universe."""

    name = "uniform"

    def __init__(self, n_elements: int, seed: Optional[int] = None) -> None:
        super().__init__(n_elements, seed)

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return ``n_requests`` i.i.d. uniform element identifiers."""
        self._check_length(n_requests)
        n = self.n_elements
        rng = self._rng
        return [rng.randrange(n) for _ in range(n_requests)]
