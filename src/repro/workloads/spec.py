"""Immutable workload specifications and the kind registry.

A :class:`WorkloadSpec` is a frozen, picklable, hashable description of a
workload generator: a ``kind`` naming a registered workload class, a tuple of
``(name, value)`` parameter pairs and a ``seed``.  Specs are the unit that
crosses process boundaries: experiment runners ship *specs* to pool workers,
which call :func:`build_workload` and stream requests locally, instead of
pickling whole materialised request sequences (which dominates fan-out cost at
paper scale — 10^6 requests per trial).

The spec protocol replaces ad-hoc mutation of generator objects:

* construction is the only way RNG state comes into existence — a spec plus
  :func:`build_workload` always yields a generator in its pristine seeded
  state, so there is no reseeding protocol to get subtly wrong;
* :meth:`repro.workloads.base.WorkloadGenerator.to_spec` is the inverse:
  every registered generator can describe itself as the spec that rebuilds it.

Workload modules register a builder for their kind at import time via
:func:`register_workload`; :func:`build_workload` lazily imports
:mod:`repro.workloads` on a registry miss so worker processes need no import
ceremony.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import WorkloadError

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "WorkloadSpec",
    "check_kind",
    "check_universe",
    "freeze_params",
    "register_workload",
    "build_workload",
    "registered_kinds",
    "thaw_value",
]

#: Default number of requests generated per streaming chunk.  Large enough to
#: amortise per-chunk overhead (NumPy draws, loop setup), small enough that a
#: worker never holds more than a sliver of a 10^6-request sequence.
DEFAULT_CHUNK_SIZE = 65_536


def _freeze(value: object) -> object:
    """Recursively convert ``value`` into an immutable, hashable equivalent.

    The canonical freezing convention of the whole spec/plan layer:
    :class:`WorkloadSpec`, :class:`repro.plans.RunConfig` and the plan
    objects all freeze through here (via :func:`freeze_params`), so equality
    and hashing stay bit-compatible across layers.
    (:class:`repro.algorithms.registry.AlgorithmSpec` keeps a verbatim local
    copy because the algorithms package must not import workloads —
    ``workloads.adversarial`` imports algorithm modules.)
    """
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    return value


def freeze_params(params: Dict[str, object]) -> Tuple[Tuple[str, object], ...]:
    """Freeze a parameter mapping into the canonical sorted pair tuple."""
    return tuple(sorted((str(name), _freeze(value)) for name, value in params.items()))


def thaw_value(value: object) -> object:
    """Inverse of :func:`_freeze` for serialisation: tuples become lists.

    Nested :class:`WorkloadSpec` values recurse through their own
    :meth:`WorkloadSpec.to_dict`.
    """
    if isinstance(value, WorkloadSpec):
        return value.to_dict()
    if isinstance(value, tuple):
        return [thaw_value(item) for item in value]
    return value


@dataclass(frozen=True)
class WorkloadSpec:
    """Immutable description of a workload: ``{kind, params, seed}``.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so that
    two specs describing the same workload compare (and hash) equal.  Values
    may be scalars, tuples or nested :class:`WorkloadSpec` objects (e.g. the
    components of a mixture).
    """

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()
    seed: Optional[int] = None

    @classmethod
    def create(cls, kind: str, seed: Optional[int] = None, **params: object) -> "WorkloadSpec":
        """Build a spec from keyword parameters, freezing mutable values."""
        return cls(kind=kind, params=freeze_params(params), seed=seed)

    def param_dict(self) -> Dict[str, object]:
        """Return the parameters as a plain dictionary."""
        return dict(self.params)

    def get(self, name: str, default: object = None) -> object:
        """Return one parameter value (or ``default``)."""
        return self.param_dict().get(name, default)

    def build(self):
        """Construct the described generator (shorthand for :func:`build_workload`)."""
        return build_workload(self)

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly representation (nested specs recurse)."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "params": {name: thaw_value(value) for name, value in self.params},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadSpec":
        """Rebuild a spec from :meth:`to_dict` output (or equivalent JSON).

        The inverse of :meth:`to_dict`: JSON lists refreeze to tuples and
        parameter values shaped like spec documents (mappings with ``kind``
        and ``params`` keys, e.g. mixture components or a temporal base)
        revive as nested :class:`WorkloadSpec` objects, so a spec survives a
        JSON round-trip *equal* to the original.
        """
        if not isinstance(data, dict) or not isinstance(data.get("kind"), str):
            raise WorkloadError(f"not a workload-spec document: {data!r}")
        params = data.get("params") or {}
        if not isinstance(params, dict):
            raise WorkloadError(f"workload spec params must be an object, got {params!r}")

        def revive(value: object) -> object:
            if isinstance(value, dict) and "kind" in value and "params" in value:
                return cls.from_dict(value)
            if isinstance(value, list):
                return [revive(item) for item in value]
            return value

        return cls.create(
            data["kind"],
            seed=data.get("seed"),
            **{name: revive(value) for name, value in params.items()},
        )

    def with_seed(self, seed: Optional[int]) -> "WorkloadSpec":
        """Return a copy of this spec carrying ``seed`` (params unchanged).

        The one-liner the plan layer leans on: a plan stores a seedless
        workload *template* and stamps the per-trial seed onto it here.
        """
        return WorkloadSpec(kind=self.kind, params=self.params, seed=seed)


#: A builder turns ``(params, seed)`` back into a generator instance.
WorkloadBuilder = Callable[[Dict[str, object], Optional[int]], object]

_REGISTRY: Dict[str, WorkloadBuilder] = {}

#: Bumped on every registration.  Long-lived worker pools fork a snapshot of
#: this module's state; :mod:`repro.sim.parallel` keys its persistent pool on
#: this counter so kinds registered after the pool was created still reach
#: the workers (the pool is rebuilt, re-forking current state).
_REGISTRY_VERSION = 0

_CORE_LOADED = False


def register_workload(kind: str) -> Callable[[WorkloadBuilder], WorkloadBuilder]:
    """Class-module decorator registering a builder for ``kind``."""

    def decorate(builder: WorkloadBuilder) -> WorkloadBuilder:
        global _REGISTRY_VERSION
        _REGISTRY[kind] = builder
        _REGISTRY_VERSION += 1
        return builder

    return decorate


def registry_version() -> int:
    """Return the registration counter (changes whenever a kind is added)."""
    return _REGISTRY_VERSION


def registered_kinds() -> List[str]:
    """Return the sorted list of registered workload kinds."""
    _ensure_registry()
    return sorted(_REGISTRY)


def _ensure_registry() -> None:
    """Import the workload package once so the core kinds are registered.

    Guarded by its own flag (not ``if not _REGISTRY``) so a custom kind
    registered before first use does not mask the core kinds.
    """
    global _CORE_LOADED
    if not _CORE_LOADED:
        _CORE_LOADED = True
        import repro.workloads  # noqa: F401  (imports register the builders)


def check_kind(kind: str) -> str:
    """Validate that ``kind`` is registered, without building anything.

    Raises :class:`~repro.exceptions.WorkloadError` naming the bad key and
    listing every registered kind — the eager-validation hook used by the
    plan layer so an unresolvable plan fails at construction, not mid-run.
    """
    _ensure_registry()
    if kind not in _REGISTRY:
        raise WorkloadError(
            f"unknown workload kind {kind!r}; registered kinds: {registered_kinds()}"
        )
    return kind


def check_universe(spec: WorkloadSpec, expected: int, owner: str) -> WorkloadSpec:
    """Validate a spec's universe against ``expected`` nodes.

    The shared eager check of every layer that binds workload specs to a tree
    of a known size (trial plans, traffic specs): the spec's ``n_elements``
    parameter — when present — must equal the tree size.  ``owner`` names the
    validating document in the error message.  Callers check the kind
    separately via :func:`check_kind` (the two raise differently-typed errors
    in the plan layer).
    """
    universe = spec.get("n_elements")
    if universe is not None and universe != expected:
        raise WorkloadError(
            f"{owner}: workload universe {universe} does not match "
            f"the {expected}-node tree"
        )
    return spec


def build_workload(spec: WorkloadSpec):
    """Construct a pristine generator from ``spec``.

    The returned generator is exactly what the spec's original constructor
    call produced: same parameters, same seed, untouched RNG streams.
    """
    check_kind(spec.kind)
    return _REGISTRY[spec.kind](spec.param_dict(), spec.seed)
