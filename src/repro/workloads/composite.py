"""Combined temporal + spatial locality workloads (Q4).

Q4 of the paper studies grids of locality parameters: sequences are first drawn
from a Zipf distribution with exponent ``a`` (spatial locality) and then
post-processed with the repeat-probability rule using probability ``p``
(temporal locality).  :class:`CombinedLocalityWorkload` reproduces exactly that
pipeline; :class:`MixtureWorkload` is a more general utility that interleaves
arbitrary generators with given weights (useful for custom scenarios and for
stress-testing the algorithms).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.exceptions import WorkloadError
from repro.types import ElementId
from repro.workloads.base import WorkloadGenerator, check_as_array, check_chunk_size
from repro.workloads.spec import (
    DEFAULT_CHUNK_SIZE,
    WorkloadSpec,
    build_workload,
    register_workload,
)
from repro.workloads.temporal import _repeat_postprocess_chunks, apply_temporal_locality
from repro.workloads.zipf import ZipfWorkload

__all__ = ["CombinedLocalityWorkload", "MixtureWorkload"]


class CombinedLocalityWorkload(WorkloadGenerator):
    """Zipf-distributed requests post-processed with temporal repetition.

    Parameters
    ----------
    n_elements:
        Size of the element universe.
    zipf_exponent:
        Spatial-locality parameter ``a`` (paper grid: 1.001 ... 2.2).
    repeat_probability:
        Temporal-locality parameter ``p`` (paper grid: 0 ... 0.9).
    seed:
        Seed for both stages.
    """

    name = "combined-locality"

    def __init__(
        self,
        n_elements: int,
        zipf_exponent: float,
        repeat_probability: float,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(n_elements, seed)
        if not 0.0 <= repeat_probability <= 1.0:
            raise WorkloadError(
                f"repeat probability must lie in [0, 1], got {repeat_probability}"
            )
        self.zipf_exponent = float(zipf_exponent)
        self.repeat_probability = repeat_probability
        self._zipf = ZipfWorkload(
            n_elements, zipf_exponent, seed=self._rng.randrange(2**63)
        )

    def _reseed_derived(self) -> None:
        # Re-derive the inner Zipf seed from the fresh base RNG, exactly as
        # the constructor does, and push it all the way down (NumPy stream
        # and identifier permutation included).
        self._zipf._reseed(self._rng.randrange(2**63))

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return a sequence with the requested combination of localities."""
        self._check_length(n_requests)
        base = self._zipf.generate(n_requests)
        return apply_temporal_locality(base, self.repeat_probability, self._rng)

    def iter_requests(
        self,
        n_requests: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        as_array: bool = False,
    ) -> Iterator[List[ElementId]]:
        """Stream natively: Zipf chunks post-processed with the repeat rule,
        carrying the previous request across chunk boundaries.  With
        ``as_array=True`` the Zipf draws stay NumPy arrays end-to-end and the
        repeat rule is applied as a vectorised forward fill."""
        self._check_length(n_requests)
        check_chunk_size(chunk_size)
        check_as_array(as_array)
        yield from _repeat_postprocess_chunks(
            self._zipf.iter_requests(n_requests, chunk_size, as_array=as_array),
            self.repeat_probability,
            self._rng,
            as_array=as_array,
        )

    def to_spec(self) -> WorkloadSpec:
        return WorkloadSpec.create(
            "combined-locality",
            seed=self.seed,
            n_elements=self.n_elements,
            zipf_exponent=self.zipf_exponent,
            repeat_probability=self.repeat_probability,
        )

    def parameters(self):
        params = super().parameters()
        params["zipf_exponent"] = self.zipf_exponent
        params["repeat_probability"] = self.repeat_probability
        return params


@register_workload("combined-locality")
def _build_combined(params: Dict[str, object], seed: Optional[int]) -> CombinedLocalityWorkload:
    return CombinedLocalityWorkload(
        int(params["n_elements"]),
        float(params["zipf_exponent"]),
        float(params["repeat_probability"]),
        seed=seed,
    )


class MixtureWorkload(WorkloadGenerator):
    """Interleave several generators, picking one per request with fixed weights.

    Parameters
    ----------
    n_elements:
        Size of the element universe (all component generators must agree).
    components:
        The component workload generators.
    weights:
        Optional positive selection weights (default: uniform over components).
    seed:
        Seed for the per-request component selection.
    """

    name = "mixture"

    def __init__(
        self,
        n_elements: int,
        components: Sequence[WorkloadGenerator],
        weights: Optional[Sequence[float]] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(n_elements, seed)
        if not components:
            raise WorkloadError("mixture requires at least one component workload")
        for component in components:
            if component.n_elements != n_elements:
                raise WorkloadError(
                    "all mixture components must share the same universe size"
                )
        if weights is None:
            weights = [1.0] * len(components)
        if len(weights) != len(components) or any(w <= 0 for w in weights):
            raise WorkloadError("weights must be positive and match the components")
        self._components = list(components)
        self._weights = [float(w) for w in weights]

    def _reseed_derived(self) -> None:
        # Component generators are seed state of the mixture: restore each to
        # its own pristine seeded state.
        for component in self._components:
            component._reseed(component.seed)

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return a sequence where each request comes from a weighted random component.

        The choice vector is drawn first and each component generates exactly
        the number of requests the choices assign to it, so component RNG
        streams advance by the consumed amount only (no k-times overdraw at
        paper scale) and stay consistent with the interleaved output.
        """
        self._check_length(n_requests)
        choices = self._rng.choices(
            range(len(self._components)), weights=self._weights, k=n_requests
        )
        counts = [0] * len(self._components)
        for pick in choices:
            counts[pick] += 1
        streams = [
            component.generate(count)
            for component, count in zip(self._components, counts)
        ]
        cursors = [0] * len(streams)
        sequence: List[ElementId] = []
        for pick in choices:
            sequence.append(streams[pick][cursors[pick]])
            cursors[pick] += 1
        return sequence

    def to_spec(self) -> Optional[WorkloadSpec]:
        component_specs = []
        for component in self._components:
            spec = component.to_spec()
            if spec is None:
                return None
            component_specs.append(spec)
        return WorkloadSpec.create(
            "mixture",
            seed=self.seed,
            n_elements=self.n_elements,
            components=tuple(component_specs),
            weights=tuple(self._weights),
        )

    def parameters(self):
        params = super().parameters()
        params["components"] = [c.parameters() for c in self._components]
        params["weights"] = list(self._weights)
        return params


@register_workload("mixture")
def _build_mixture(params: Dict[str, object], seed: Optional[int]) -> MixtureWorkload:
    components = [build_workload(spec) for spec in params["components"]]
    return MixtureWorkload(
        int(params["n_elements"]),
        components,
        weights=list(params["weights"]),
        seed=seed,
    )
