"""Temporal-locality workloads (repeat-with-probability ``p``).

Following the paper's Q2 methodology (which in turn follows Avin et al.'s
traffic-complexity work), the degree of temporal locality of a sequence is
controlled by the probability ``p`` of repeating the previous request:

1. draw a base sequence of uniform requests, then
2. for every position ``i >= 2``, with probability ``p`` set
   ``sigma_i = sigma_{i-1}`` and otherwise leave ``sigma_i`` unchanged.

Larger ``p`` yields longer runs of identical requests and lower empirical
entropy; the paper reports entropies from 15.95 (``p = 0``) down to 15.16
(``p = 0.9``) for 65,535 elements.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.core import backend as _backend
from repro.exceptions import WorkloadError
from repro.types import ElementId
from repro.workloads.base import WorkloadGenerator, check_as_array, check_chunk_size
from repro.workloads.spec import (
    DEFAULT_CHUNK_SIZE,
    WorkloadSpec,
    build_workload,
    register_workload,
)
from repro.workloads.uniform import UniformWorkload

__all__ = ["TemporalWorkload", "apply_temporal_locality"]


def apply_temporal_locality(
    sequence: Sequence[ElementId],
    repeat_probability: float,
    rng,
) -> List[ElementId]:
    """Post-process ``sequence`` with the repeat rule of the paper's Q2.

    For every position ``i >= 1`` (0-based), with probability
    ``repeat_probability`` the request is replaced by the (already
    post-processed) previous request; otherwise it is kept.  The first request
    is never modified.
    """
    if not 0.0 <= repeat_probability <= 1.0:
        raise WorkloadError(
            f"repeat probability must lie in [0, 1], got {repeat_probability}"
        )
    result = list(sequence)
    for index in range(1, len(result)):
        if rng.random() < repeat_probability:
            result[index] = result[index - 1]
    return result


class TemporalWorkload(WorkloadGenerator):
    """Uniform requests post-processed to repeat the previous request with probability ``p``.

    Parameters
    ----------
    n_elements:
        Size of the element universe.
    repeat_probability:
        The temporal-locality parameter ``p`` in ``[0, 1]``.
    seed:
        Seed controlling both the base uniform draw and the repeat decisions.
    base:
        Optional alternative base workload to post-process (defaults to
        :class:`repro.workloads.uniform.UniformWorkload`); used by the combined
        temporal+spatial workload of Q4.
    """

    name = "temporal"

    def __init__(
        self,
        n_elements: int,
        repeat_probability: float,
        seed: Optional[int] = None,
        base: Optional[WorkloadGenerator] = None,
    ) -> None:
        super().__init__(n_elements, seed)
        if not 0.0 <= repeat_probability <= 1.0:
            raise WorkloadError(
                f"repeat probability must lie in [0, 1], got {repeat_probability}"
            )
        self.repeat_probability = repeat_probability
        if base is not None and base.n_elements != n_elements:
            raise WorkloadError(
                "base workload universe size does not match the temporal workload"
            )
        self._base = base

    def _reseed_derived(self) -> None:
        # The nested base generator carries its own RNG state; restore it to
        # its pristine seeded state so the composite equals a fresh instance.
        if self._base is not None:
            self._base._reseed(self._base.seed)

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return a sequence with temporal locality ``p`` over the base workload."""
        self._check_length(n_requests)
        if self._base is not None:
            base_sequence = self._base.generate(n_requests)
        else:
            base_sequence = UniformWorkload(
                self.n_elements, seed=self._rng.randrange(2**63)
            ).generate(n_requests)
        return apply_temporal_locality(
            base_sequence, self.repeat_probability, self._rng
        )

    def iter_requests(
        self,
        n_requests: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        as_array: bool = False,
    ) -> Iterator[List[ElementId]]:
        """Stream natively: the repeat decisions consume ``self._rng`` once per
        position after the first, so carrying the previous request across chunk
        boundaries reproduces :meth:`generate` exactly.  The base stream and
        the repeat decisions live on different RNG objects, so interleaving
        them chunk-wise does not change either stream."""
        self._check_length(n_requests)
        check_chunk_size(chunk_size)
        check_as_array(as_array)
        if n_requests == 0:
            return
        if self._base is not None:
            base_chunks = self._base.iter_requests(
                n_requests, chunk_size, as_array=as_array
            )
        else:
            base_chunks = UniformWorkload(
                self.n_elements, seed=self._rng.randrange(2**63)
            ).iter_requests(n_requests, chunk_size, as_array=as_array)
        yield from _repeat_postprocess_chunks(
            base_chunks, self.repeat_probability, self._rng, as_array=as_array
        )

    def to_spec(self) -> Optional[WorkloadSpec]:
        base_spec = None
        if self._base is not None:
            base_spec = self._base.to_spec()
            if base_spec is None:
                return None
        params: Dict[str, object] = {
            "n_elements": self.n_elements,
            "repeat_probability": self.repeat_probability,
        }
        if base_spec is not None:
            params["base"] = base_spec
        return WorkloadSpec.create("temporal", seed=self.seed, **params)

    def parameters(self):
        params = super().parameters()
        params["repeat_probability"] = self.repeat_probability
        if self._base is not None:
            params["base"] = self._base.parameters()
        return params


def _repeat_postprocess_chunks(
    chunks: Iterator[List[ElementId]],
    repeat_probability: float,
    rng,
    as_array: bool = False,
) -> Iterator[List[ElementId]]:
    """Chunk-streaming twin of :func:`apply_temporal_locality`.

    Consumes one ``rng.random()`` per position except the very first of the
    whole stream, in stream order — the same draws in the same order as the
    materialised helper.  With ``as_array=True`` the incoming chunks are
    NumPy arrays and the repeat rule is applied as a vectorised forward fill
    (same draws, same values, ndarray out).
    """
    if as_array:
        yield from _repeat_postprocess_chunks_array(chunks, repeat_probability, rng)
        return
    previous: Optional[ElementId] = None
    for chunk in chunks:
        result = list(chunk)
        for index in range(len(result)):
            if previous is not None and rng.random() < repeat_probability:
                result[index] = previous
            previous = result[index]
        yield result


def _repeat_postprocess_chunks_array(
    chunks: Iterator["object"],
    repeat_probability: float,
    rng,
) -> Iterator["object"]:
    """NumPy twin of :func:`_repeat_postprocess_chunks`.

    The repeat decisions are still drawn one ``rng.random()`` per position
    (identical stream to the scalar rule), but applying them is vectorised: a
    repeat run copies the last kept value, which is exactly a forward fill of
    the kept indices via a running maximum.
    """
    np = _backend.np
    previous: Optional[int] = None
    rng_random = rng.random
    for chunk in chunks:
        length = len(chunk)
        if length == 0:
            continue
        # The very first position of the stream consumes no draw.
        skip = 1 if previous is None else 0
        repeat = np.empty(length, dtype=np.bool_)
        repeat[:skip] = False
        repeat[skip:] = (
            np.fromiter(
                (rng_random() for _ in range(length - skip)),
                dtype=np.float64,
                count=length - skip,
            )
            < repeat_probability
        )
        kept = np.where(~repeat, np.arange(length), -1)
        np.maximum.accumulate(kept, out=kept)
        result = chunk[np.maximum(kept, 0)]
        if previous is not None:
            result = np.where(kept >= 0, result, previous)
        previous = int(result[-1])
        yield result


@register_workload("temporal")
def _build_temporal(params: Dict[str, object], seed: Optional[int]) -> TemporalWorkload:
    base_spec = params.get("base")
    base = build_workload(base_spec) if base_spec is not None else None
    return TemporalWorkload(
        int(params["n_elements"]),
        float(params["repeat_probability"]),
        seed=seed,
        base=base,
    )
