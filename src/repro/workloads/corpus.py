"""Corpus-derived request workloads (the paper's Q5 pipeline).

The paper extracts request sequences from books by sliding a window of three
letters over the text, one character at a time: the first request is the triple
of characters 1-3, the second the triple of characters 2-4, and so on.  The
element universe is the set of distinct triples appearing in the text.

This module implements that exact pipeline.  Because the tree substrate needs a
complete binary tree, the universe is padded up to the next ``2**k - 1`` size
with elements that are never requested (this only adds unused leaves and does
not change any algorithm's cost on the requested elements); the padding is
reported in the workload parameters.

Texts can come from the deterministic synthetic corpus
(:mod:`repro.workloads.synthetic_text`) or from real files on disk via
:meth:`CorpusWorkload.from_file`, so the original Canterbury-corpus experiment
can be reproduced verbatim when the data is available.

The pipeline is registered in the spec registry as the ``corpus`` kind — a
*recipe* kind: the spec carries the book-generation parameters (or a file
path), and the builder re-runs the sliding-window pipeline worker-side.
Plans therefore ship a few integers per corpus trial instead of the whole
trace.  A built :class:`CorpusWorkload` still *ships* as its materialised
``fixed-sequence`` spec (``to_spec``), because an already-built corpus trace
is data, not a recipe.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.exceptions import WorkloadError
from repro.types import ElementId
from repro.workloads.base import SequenceWorkload
from repro.workloads.spec import WorkloadSpec, register_workload
from repro.workloads.synthetic_text import (
    DEFAULT_BOOK_SPECS,
    SyntheticBook,
    generate_book,
    synthetic_corpus,
)

__all__ = [
    "sliding_window_tokens",
    "tokens_to_requests",
    "next_complete_size",
    "CorpusWorkload",
    "synthetic_corpus_specs",
    "synthetic_corpus_workloads",
]


def sliding_window_tokens(text: str, window: int = 3) -> List[str]:
    """Return all length-``window`` substrings of ``text``, sliding by one character."""
    if window <= 0:
        raise WorkloadError(f"window must be positive, got {window}")
    if len(text) < window:
        return []
    return [text[i : i + window] for i in range(len(text) - window + 1)]


def tokens_to_requests(tokens: List[str]) -> Tuple[List[ElementId], Dict[str, ElementId]]:
    """Map string tokens to dense element identifiers (first occurrence order).

    Returns the request sequence and the token-to-identifier vocabulary.
    """
    vocabulary: Dict[str, ElementId] = {}
    requests: List[ElementId] = []
    for token in tokens:
        identifier = vocabulary.get(token)
        if identifier is None:
            identifier = len(vocabulary)
            vocabulary[token] = identifier
        requests.append(identifier)
    return requests, vocabulary


def next_complete_size(n_elements: int) -> int:
    """Return the smallest complete-binary-tree size ``2**k - 1`` that is ``>= n_elements``."""
    if n_elements <= 0:
        raise WorkloadError(f"n_elements must be positive, got {n_elements}")
    size = 1
    while size < n_elements:
        size = 2 * size + 1
    return size


class CorpusWorkload(SequenceWorkload):
    """Request workload derived from a text by the sliding-window-of-three pipeline.

    Attributes
    ----------
    title:
        Name of the underlying text (book title or file name).
    vocabulary:
        Mapping from letter-triple to element identifier.
    n_distinct:
        Number of distinct triples (before padding to a complete tree size).
    """

    name = "corpus"

    def __init__(self, title: str, text: str, window: int = 3) -> None:
        tokens = sliding_window_tokens(text, window=window)
        if not tokens:
            raise WorkloadError(
                f"text of corpus workload {title!r} is shorter than the window ({window})"
            )
        requests, vocabulary = tokens_to_requests(tokens)
        universe = next_complete_size(len(vocabulary))
        super().__init__(universe, requests)
        self.title = title
        self.window = window
        self.vocabulary = vocabulary
        self.n_distinct = len(vocabulary)

    @classmethod
    def from_book(cls, book: SyntheticBook, window: int = 3) -> "CorpusWorkload":
        """Build a workload from a synthetic (or otherwise constructed) book."""
        return cls(book.title, book.text, window=window)

    @classmethod
    def from_file(cls, path: str, window: int = 3, encoding: str = "utf-8") -> "CorpusWorkload":
        """Build a workload from a text file (e.g. a real Canterbury-corpus book)."""
        file_path = Path(path)
        text = file_path.read_text(encoding=encoding, errors="ignore")
        return cls(file_path.name, text, window=window)

    def parameters(self):
        params = super().parameters()
        params.update(
            {
                "title": self.title,
                "window": self.window,
                "n_distinct_tokens": self.n_distinct,
                "padded_universe": self.n_elements,
            }
        )
        return params


def synthetic_corpus_workloads(
    n_books: int = 5,
    scale: float = 1.0,
    window: int = 3,
) -> List[CorpusWorkload]:
    """Return corpus workloads for the deterministic synthetic five-book corpus.

    This is the drop-in substitute for the paper's five Canterbury books; see
    :mod:`repro.workloads.synthetic_text` for how the books are generated and
    DESIGN.md for why the substitution preserves the experiment's behaviour.
    """
    return [
        CorpusWorkload.from_book(book, window=window)
        for book in synthetic_corpus(n_books=n_books, scale=scale)
    ]


#: Parameters of :func:`repro.workloads.synthetic_text.generate_book` that a
#: ``corpus`` spec may carry (besides ``book_seed``), with their coercions.
_BOOK_PARAM_TYPES = {
    "n_words": int,
    "vocabulary_size": int,
    "zipf_exponent": float,
    "reuse_probability": float,
    "reuse_window": int,
    "title": str,
}


@register_workload("corpus")
def _build_corpus(params: Dict[str, object], seed: Optional[int]) -> CorpusWorkload:
    """Rebuild a corpus workload from its recipe (synthetic book or file).

    ``seed`` (the spec's trial-stamped seed slot) is ignored: a corpus trace
    is deterministic data named by its recipe, like every other sequence
    workload.  The synthetic book's own seed travels as the ``book_seed``
    parameter instead.
    """
    del seed
    window = int(params.get("window", 3))
    if "path" in params:
        return CorpusWorkload.from_file(
            str(params["path"]),
            window=window,
            encoding=str(params.get("encoding", "utf-8")),
        )
    if "book_seed" not in params:
        raise WorkloadError(
            "a 'corpus' spec needs either a 'path' (file-backed) or a "
            "'book_seed' plus book parameters (synthetic)"
        )
    book_kwargs = {
        name: coerce(params[name])
        for name, coerce in _BOOK_PARAM_TYPES.items()
        if name in params
    }
    book = generate_book(seed=int(params["book_seed"]), **book_kwargs)
    return CorpusWorkload.from_book(book, window=window)


def synthetic_corpus_specs(
    n_books: int = 5,
    scale: float = 1.0,
    window: int = 3,
) -> List[WorkloadSpec]:
    """Return ``corpus`` recipe specs for the synthetic corpus.

    Building each returned spec reproduces, bit for bit, the corresponding
    workload of :func:`synthetic_corpus_workloads` with the same arguments —
    but as a few integers of recipe instead of a materialised trace, so plans
    can ship the corpus across process boundaries and cache it by content.
    """
    if scale <= 0:
        raise WorkloadError(f"scale must be positive, got {scale}")
    if n_books > len(DEFAULT_BOOK_SPECS):
        raise WorkloadError(
            f"requested {n_books} books but only "
            f"{len(DEFAULT_BOOK_SPECS)} specifications exist"
        )
    specs: List[WorkloadSpec] = []
    for index, book_spec in enumerate(DEFAULT_BOOK_SPECS[:n_books], start=1):
        parameters = dict(book_spec)
        parameters["n_words"] = max(50, int(int(parameters["n_words"]) * scale))
        parameters.setdefault("title", f"book{index}")
        book_seed = int(parameters.pop("seed"))
        specs.append(
            WorkloadSpec.create(
                "corpus", book_seed=book_seed, window=window, **parameters
            )
        )
    return specs
