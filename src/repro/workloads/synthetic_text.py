"""Synthetic natural-language-like corpus (substitute for the Canterbury corpus).

The paper's Q5 evaluates the algorithms on request sequences derived from the
five largest books of the Canterbury corpus.  That corpus cannot be downloaded
in this offline environment, so this module synthesises deterministic "books"
whose statistics mimic natural English text closely enough for the experiment:

* the vocabulary is built from syllables, so the letter-trigram universe has a
  size comparable to real text (a few thousand distinct triples);
* word frequencies follow a Zipf law (as natural language does), providing the
  non-temporal locality visible in the paper's complexity map;
* sentences reuse recently used words with moderate probability, providing the
  temporal locality component;
* each book is generated from a fixed seed, so the corpus is identical across
  runs and machines.

The downstream pipeline (sliding window of three letters, sliding by one
character; see :mod:`repro.workloads.corpus`) is exactly the one described in
the paper, and accepts real text files as well, so plugging in the actual
corpus reproduces the original experiment unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.exceptions import WorkloadError

__all__ = ["SyntheticBook", "generate_book", "synthetic_corpus", "DEFAULT_BOOK_SPECS"]

#: Syllable inventory used to assemble words; chosen to give realistic
#: letter-trigram diversity without requiring any external data.
_SYLLABLES = [
    "ba", "be", "bi", "bo", "bu", "ca", "ce", "ci", "co", "cu",
    "da", "de", "di", "do", "du", "fa", "fe", "fi", "fo", "fu",
    "ga", "ge", "gi", "go", "gu", "ha", "he", "hi", "ho", "hu",
    "la", "le", "li", "lo", "lu", "ma", "me", "mi", "mo", "mu",
    "na", "ne", "ni", "no", "nu", "pa", "pe", "pi", "po", "pu",
    "ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
    "ta", "te", "ti", "to", "tu", "va", "ve", "vi", "vo", "vu",
    "war", "ter", "ing", "ion", "ent", "and", "the", "er", "ed", "es",
    "an", "in", "on", "at", "or", "is", "it", "al", "ar", "st",
    "th", "nd", "ou", "ea", "ng", "as", "le", "of", "to", "sh",
]

#: A small set of very frequent function words, mirroring English.
_FUNCTION_WORDS = [
    "the", "of", "and", "a", "to", "in", "is", "was", "he", "for",
    "it", "with", "as", "his", "on", "be", "at", "by", "had",
]


@dataclass(frozen=True)
class SyntheticBook:
    """A generated book: its title, text and basic statistics."""

    title: str
    text: str
    n_words: int
    vocabulary_size: int

    def __len__(self) -> int:
        return len(self.text)


def _build_vocabulary(rng: random.Random, vocabulary_size: int) -> List[str]:
    """Assemble ``vocabulary_size`` distinct words from syllables."""
    words: List[str] = list(_FUNCTION_WORDS)
    seen = set(words)
    while len(words) < vocabulary_size:
        n_syllables = rng.choice((1, 2, 2, 3, 3, 4))
        word = "".join(rng.choice(_SYLLABLES) for _ in range(n_syllables))
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words[:vocabulary_size]


def _zipf_weights(count: int, exponent: float) -> List[float]:
    return [1.0 / ((rank + 1) ** exponent) for rank in range(count)]


def generate_book(
    seed: int,
    n_words: int = 20_000,
    vocabulary_size: int = 1_200,
    zipf_exponent: float = 1.1,
    reuse_probability: float = 0.35,
    reuse_window: int = 40,
    title: Optional[str] = None,
) -> SyntheticBook:
    """Generate one deterministic synthetic book.

    Parameters
    ----------
    seed:
        Seed controlling the vocabulary and the text; equal seeds give equal books.
    n_words:
        Length of the book in words.
    vocabulary_size:
        Number of distinct words available.
    zipf_exponent:
        Skew of the word-frequency distribution (natural text is close to 1).
    reuse_probability:
        Probability that the next word is drawn from the recently used window
        instead of the global distribution (temporal locality of the text).
    reuse_window:
        Number of recent words eligible for reuse.
    title:
        Optional display title; defaults to ``synthetic-book-<seed>``.
    """
    if n_words <= 0:
        raise WorkloadError(f"n_words must be positive, got {n_words}")
    if vocabulary_size < len(_FUNCTION_WORDS):
        raise WorkloadError(
            f"vocabulary_size must be at least {len(_FUNCTION_WORDS)}, got {vocabulary_size}"
        )
    if not 0.0 <= reuse_probability <= 1.0:
        raise WorkloadError("reuse_probability must lie in [0, 1]")
    rng = random.Random(seed)
    vocabulary = _build_vocabulary(rng, vocabulary_size)
    weights = _zipf_weights(vocabulary_size, zipf_exponent)

    words: List[str] = []
    recent: List[str] = []
    sentence_remaining = rng.randint(5, 15)
    for _ in range(n_words):
        if recent and rng.random() < reuse_probability:
            word = rng.choice(recent[-reuse_window:])
        else:
            word = rng.choices(vocabulary, weights=weights, k=1)[0]
        words.append(word)
        recent.append(word)
        if len(recent) > reuse_window:
            recent.pop(0)
        sentence_remaining -= 1
        if sentence_remaining == 0:
            words[-1] = words[-1] + "."
            sentence_remaining = rng.randint(5, 15)

    text = " ".join(words)
    return SyntheticBook(
        title=title or f"synthetic-book-{seed}",
        text=text,
        n_words=n_words,
        vocabulary_size=vocabulary_size,
    )


#: Default per-book parameters for the five-book synthetic corpus; lengths vary
#: the way the five Canterbury books do (relative to each other).
DEFAULT_BOOK_SPECS: List[Dict[str, object]] = [
    {"seed": 101, "n_words": 36_000, "vocabulary_size": 1_500, "reuse_probability": 0.30},
    {"seed": 202, "n_words": 12_000, "vocabulary_size": 1_100, "reuse_probability": 0.35},
    {"seed": 303, "n_words": 8_000, "vocabulary_size": 900, "reuse_probability": 0.40},
    {"seed": 404, "n_words": 10_000, "vocabulary_size": 1_000, "reuse_probability": 0.35},
    {"seed": 505, "n_words": 24_000, "vocabulary_size": 1_300, "reuse_probability": 0.32},
]


def synthetic_corpus(
    n_books: int = 5,
    scale: float = 1.0,
    specs: Optional[List[Dict[str, object]]] = None,
) -> List[SyntheticBook]:
    """Return the deterministic synthetic corpus of ``n_books`` books.

    Parameters
    ----------
    n_books:
        Number of books (at most the number of available specs).
    scale:
        Multiplier applied to each book's word count; experiments use values
        below 1 for fast runs and 1 or more for paper-scale runs.
    specs:
        Optional explicit per-book parameter dictionaries overriding
        :data:`DEFAULT_BOOK_SPECS`.
    """
    if scale <= 0:
        raise WorkloadError(f"scale must be positive, got {scale}")
    chosen = list(specs if specs is not None else DEFAULT_BOOK_SPECS)
    if n_books > len(chosen):
        raise WorkloadError(
            f"requested {n_books} books but only {len(chosen)} specifications exist"
        )
    books: List[SyntheticBook] = []
    for index, spec in enumerate(chosen[:n_books], start=1):
        parameters = dict(spec)
        parameters["n_words"] = max(50, int(int(parameters["n_words"]) * scale))
        parameters.setdefault("title", f"book{index}")
        books.append(generate_book(**parameters))
    return books
