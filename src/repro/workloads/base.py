"""Workload generator base classes.

A *workload* is a recipe for producing request sequences over a universe of
``n_elements`` elements.  Generators are deterministic given their seed, so
every experiment can be reproduced exactly; they expose the parameters that the
paper varies (repeat probability ``p`` for temporal locality, Zipf exponent
``a`` for spatial locality, tree size for Q1) through their constructors.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Optional

from repro.exceptions import WorkloadError
from repro.types import ElementId

__all__ = ["WorkloadGenerator", "SequenceWorkload"]


class WorkloadGenerator(abc.ABC):
    """Base class for all request-sequence generators.

    Parameters
    ----------
    n_elements:
        Size of the element universe; generated identifiers lie in
        ``[0, n_elements)``.
    seed:
        Seed of the generator's private :class:`random.Random` instance.
    """

    #: Short name used in experiment metadata and benchmark labels.
    name: str = "abstract"

    def __init__(self, n_elements: int, seed: Optional[int] = None) -> None:
        if n_elements <= 0:
            raise WorkloadError(f"n_elements must be positive, got {n_elements}")
        self.n_elements = n_elements
        self.seed = seed
        self._rng = random.Random(seed)

    @abc.abstractmethod
    def generate(self, n_requests: int) -> List[ElementId]:
        """Return a request sequence of length ``n_requests``."""

    def _check_length(self, n_requests: int) -> int:
        if n_requests < 0:
            raise WorkloadError(f"n_requests must be non-negative, got {n_requests}")
        return n_requests

    def parameters(self) -> Dict[str, object]:
        """Return the generator's parameters (for experiment metadata)."""
        return {"workload": self.name, "n_elements": self.n_elements, "seed": self.seed}

    def reseed(self, seed: Optional[int]) -> None:
        """Re-seed the generator (used by multi-trial experiment runners)."""
        self.seed = seed
        self._rng = random.Random(seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        params = ", ".join(f"{k}={v!r}" for k, v in self.parameters().items())
        return f"{type(self).__name__}({params})"


class SequenceWorkload(WorkloadGenerator):
    """A workload that simply replays a fixed, externally supplied sequence.

    Useful for corpus-derived traces and for unit tests that need full control
    over the requests.
    """

    name = "fixed-sequence"

    def __init__(self, n_elements: int, sequence: List[ElementId]) -> None:
        super().__init__(n_elements, seed=None)
        for element in sequence:
            if not 0 <= element < n_elements:
                raise WorkloadError(
                    f"sequence element {element} outside universe of size {n_elements}"
                )
        self._sequence = list(sequence)

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return the first ``n_requests`` entries (or the whole trace if shorter)."""
        self._check_length(n_requests)
        if n_requests >= len(self._sequence):
            return list(self._sequence)
        return self._sequence[:n_requests]

    def full_sequence(self) -> List[ElementId]:
        """Return the complete stored trace."""
        return list(self._sequence)

    def parameters(self) -> Dict[str, object]:
        params = super().parameters()
        params["trace_length"] = len(self._sequence)
        return params
