"""Workload generator base classes.

A *workload* is a recipe for producing request sequences over a universe of
``n_elements`` elements.  Generators are deterministic given their seed, so
every experiment can be reproduced exactly; they expose the parameters that the
paper varies (repeat probability ``p`` for temporal locality, Zipf exponent
``a`` for spatial locality, tree size for Q1) through their constructors.

Two protocols matter for the experiment pipeline:

* **Specs** — :meth:`WorkloadGenerator.to_spec` describes a generator as an
  immutable :class:`repro.workloads.spec.WorkloadSpec` that
  :func:`repro.workloads.spec.build_workload` turns back into a pristine
  generator.  Specs (not generator objects, not materialised sequences) are
  what the runners ship to pool workers.
* **Streaming** — :meth:`WorkloadGenerator.iter_requests` yields the exact
  stream that :meth:`generate` would return, in chunks, so paper-scale
  sequences (10^6 requests) never need to be resident at once.  Subclasses
  with sequentially drawn randomness override it natively; the base fallback
  materialises once and slices, which is always correct.
"""

from __future__ import annotations

import abc
import random
import warnings
from typing import Dict, Iterator, List, Optional

from repro.core import backend as _backend
from repro.exceptions import WorkloadError
from repro.types import ElementId
from repro.workloads.spec import DEFAULT_CHUNK_SIZE, WorkloadSpec, register_workload

__all__ = [
    "WorkloadGenerator",
    "SequenceWorkload",
    "check_chunk_size",
    "check_as_array",
    "chunk_to_array",
]


def check_chunk_size(chunk_size: int) -> int:
    """Validate a streaming chunk size (shared by all ``iter_requests``)."""
    if chunk_size <= 0:
        raise WorkloadError(f"chunk_size must be positive, got {chunk_size}")
    return chunk_size


def check_as_array(as_array: bool) -> bool:
    """Validate an ``as_array`` request (shared by all ``iter_requests``).

    NumPy-native chunk transport needs NumPy; callers gate on
    :data:`repro.core.backend.HAS_NUMPY` (the array-backend runners do), so
    hitting this error means a caller asked for arrays unconditionally.
    """
    if as_array and not _backend.HAS_NUMPY:
        raise WorkloadError(
            "iter_requests(as_array=True) requires NumPy; "
            "stream plain list chunks instead"
        )
    return as_array


def chunk_to_array(chunk: List[ElementId]):
    """Convert one list chunk to the ndarray the array backend consumes.

    Generators whose randomness is drawn request-by-request (uniform, markov,
    ...) produce the same Python ints either way; this wraps them once per
    chunk instead of once per request.  Generators that already draw NumPy
    vectors (zipf) skip this and yield their arrays directly.
    """
    return _backend.np.asarray(chunk, dtype=_backend.np.intp)


class WorkloadGenerator(abc.ABC):
    """Base class for all request-sequence generators.

    Parameters
    ----------
    n_elements:
        Size of the element universe; generated identifiers lie in
        ``[0, n_elements)``.
    seed:
        Seed of the generator's private :class:`random.Random` instance.
    """

    #: Short name used in experiment metadata and benchmark labels.
    name: str = "abstract"

    #: Whether runners should prefer shipping this workload's spec to pool
    #: workers.  True for generators whose spec is a small recipe; False for
    #: trace-backed workloads whose spec embeds the full trace — shipping the
    #: (truncated) materialised sequence is strictly smaller for those.
    ships_as_spec: bool = True

    def __init__(self, n_elements: int, seed: Optional[int] = None) -> None:
        if n_elements <= 0:
            raise WorkloadError(f"n_elements must be positive, got {n_elements}")
        self.n_elements = n_elements
        self.seed = seed
        self._rng = random.Random(seed)

    @abc.abstractmethod
    def generate(self, n_requests: int) -> List[ElementId]:
        """Return a request sequence of length ``n_requests``."""

    def _check_length(self, n_requests: int) -> int:
        if n_requests < 0:
            raise WorkloadError(f"n_requests must be non-negative, got {n_requests}")
        return n_requests

    def parameters(self) -> Dict[str, object]:
        """Return the generator's parameters (for experiment metadata)."""
        return {"workload": self.name, "n_elements": self.n_elements, "seed": self.seed}

    def iter_requests(
        self,
        n_requests: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        as_array: bool = False,
    ) -> Iterator[List[ElementId]]:
        """Yield the stream of :meth:`generate` in chunks of ``chunk_size``.

        The concatenation of the yielded chunks is exactly
        ``generate(n_requests)`` on a generator in the same RNG state.  This
        base implementation materialises once and slices — always correct;
        subclasses whose randomness is drawn sequentially per request override
        it to generate chunk by chunk without ever holding the full sequence.

        ``as_array=True`` (requires NumPy) yields integer ndarrays instead of
        lists — the transport format of the array serve backend.  The values
        are identical either way; only the container changes.
        """
        self._check_length(n_requests)
        check_chunk_size(chunk_size)
        check_as_array(as_array)
        sequence = self.generate(n_requests)
        for start in range(0, len(sequence), chunk_size):
            chunk = sequence[start : start + chunk_size]
            yield chunk_to_array(chunk) if as_array else chunk

    def to_spec(self) -> Optional[WorkloadSpec]:
        """Return the spec that rebuilds this generator, or ``None``.

        ``None`` means the generator cannot be described declaratively (e.g.
        adaptive adversaries); callers then fall back to materialising the
        sequence.  The returned spec reconstructs the generator *as freshly
        constructed* — it does not capture consumed RNG state, so callers must
        take the spec before generating.
        """
        return None

    def reseed(self, seed: Optional[int]) -> None:
        """Restore the generator to the pristine state of seed ``seed``.

        .. deprecated::
            Prefer rebuilding from a spec instead of mutating a generator:
            ``build_workload(generator.to_spec().with_seed(seed))``
            (:func:`repro.workloads.spec.build_workload`) — the experiment
            runners and the plan layer work exclusively that way.  ``reseed``
            remains as a thin, correct wrapper (emitting a
            :class:`DeprecationWarning`): it resets the base RNG **and** all
            derived RNG state (NumPy streams, identifier permutations, nested
            component generators) via the :meth:`_reseed_derived` hook, so
            ``g.reseed(s); g.generate(n)`` equals a freshly constructed
            generator with seed ``s``.
        """
        warnings.warn(
            f"{type(self).__name__}.reseed() is deprecated; rebuild the "
            "generator from its spec instead: "
            "build_workload(workload.to_spec().with_seed(seed)) "
            "(see repro.workloads.spec)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._reseed(seed)

    def _reseed(self, seed: Optional[int]) -> None:
        """Warning-free reseed core (for internal nested-generator use)."""
        self.seed = seed
        self._rng = random.Random(seed)
        self._reseed_derived()

    def _reseed_derived(self) -> None:
        """Reset RNG state derived from the seed beyond the base ``_rng``.

        Called by :meth:`_reseed` after the base RNG has been replaced.
        Subclasses owning NumPy generators, seeded permutations, lazily built
        caches or nested component generators must override this and restore
        each to its freshly constructed state, consuming ``self._rng`` in
        exactly the order the constructor does.  Nested generators must be
        restored through their ``_reseed`` (not the deprecated public
        ``reseed``) so one user-facing call warns at most once.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        params = ", ".join(f"{k}={v!r}" for k, v in self.parameters().items())
        return f"{type(self).__name__}({params})"


class SequenceWorkload(WorkloadGenerator):
    """A workload that simply replays a fixed, externally supplied sequence.

    Useful for corpus-derived traces and for unit tests that need full control
    over the requests.
    """

    name = "fixed-sequence"

    # The spec *is* the trace; runners ship the truncated sequence instead.
    ships_as_spec = False

    def __init__(self, n_elements: int, sequence: List[ElementId]) -> None:
        super().__init__(n_elements, seed=None)
        for element in sequence:
            if not 0 <= element < n_elements:
                raise WorkloadError(
                    f"sequence element {element} outside universe of size {n_elements}"
                )
        self._sequence = list(sequence)

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return the first ``n_requests`` entries (or the whole trace if shorter)."""
        self._check_length(n_requests)
        if n_requests >= len(self._sequence):
            return list(self._sequence)
        return self._sequence[:n_requests]

    def iter_requests(
        self,
        n_requests: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        as_array: bool = False,
    ) -> Iterator[List[ElementId]]:
        """Yield trace slices directly, never copying the whole trace."""
        self._check_length(n_requests)
        check_chunk_size(chunk_size)
        check_as_array(as_array)
        limit = min(n_requests, len(self._sequence))
        for start in range(0, limit, chunk_size):
            chunk = self._sequence[start : min(start + chunk_size, limit)]
            yield chunk_to_array(chunk) if as_array else chunk

    def to_spec(self) -> WorkloadSpec:
        """Describe the trace as a ``fixed-sequence`` spec (the trace is the data)."""
        return WorkloadSpec.create(
            "fixed-sequence",
            n_elements=self.n_elements,
            sequence=tuple(self._sequence),
        )

    def full_sequence(self) -> List[ElementId]:
        """Return the complete stored trace."""
        return list(self._sequence)

    def parameters(self) -> Dict[str, object]:
        params = super().parameters()
        params["trace_length"] = len(self._sequence)
        return params


@register_workload("fixed-sequence")
def _build_fixed_sequence(params: Dict[str, object], seed: Optional[int]) -> SequenceWorkload:
    return SequenceWorkload(int(params["n_elements"]), list(params["sequence"]))
