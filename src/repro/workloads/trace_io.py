"""Saving and loading request traces.

Reproducibility plumbing: experiments can persist the exact request sequences
they used (together with the generator parameters) and reload them later, so a
result can be re-examined without regenerating the workload.  Two formats are
supported:

* a compact text format (one element identifier per line, ``#``-prefixed
  header lines carrying JSON metadata), and
* JSON (metadata plus the full sequence), convenient for small traces and for
  interchange with other tools.

Saved traces participate in the spec registry through the ``trace_file``
kind: :class:`TraceFileWorkload` replays a dump with its header metadata
attached, and its spec (path + content digest) makes trace replays shippable
inside plan documents with content-correct cache keys.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import WorkloadError
from repro.types import ElementId
from repro.workloads.base import SequenceWorkload
from repro.workloads.spec import WorkloadSpec, register_workload

__all__ = [
    "TraceFileWorkload",
    "save_trace",
    "load_trace",
    "load_trace_workload",
    "trace_digest",
]


def save_trace(
    path: str,
    sequence: Sequence[ElementId],
    n_elements: int,
    metadata: Optional[Dict[str, object]] = None,
    fmt: str = "text",
) -> Path:
    """Write a request trace to ``path`` and return the path.

    Parameters
    ----------
    path:
        Output file path (parent directories are created).
    sequence:
        The request sequence.
    n_elements:
        Size of the element universe the trace was generated for.
    metadata:
        Optional JSON-serialisable metadata (generator parameters, seeds, ...).
    fmt:
        ``"text"`` (default) or ``"json"``.
    """
    if n_elements <= 0:
        raise WorkloadError(f"n_elements must be positive, got {n_elements}")
    for element in sequence:
        if not 0 <= int(element) < n_elements:
            raise WorkloadError(
                f"trace element {element} outside universe of size {n_elements}"
            )
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    header = {"n_elements": n_elements, "length": len(sequence), "metadata": metadata or {}}

    if fmt == "text":
        lines = [f"# {json.dumps(header)}"]
        lines.extend(str(int(element)) for element in sequence)
        file_path.write_text("\n".join(lines) + "\n")
    elif fmt == "json":
        payload = dict(header, sequence=[int(element) for element in sequence])
        file_path.write_text(json.dumps(payload))
    else:
        raise WorkloadError(f"unknown trace format {fmt!r}; use 'text' or 'json'")
    return file_path


def load_trace(path: str) -> Tuple[List[ElementId], int, Dict[str, object]]:
    """Read a trace written by :func:`save_trace`.

    Returns ``(sequence, n_elements, metadata)``.  The format is detected from
    the file content (JSON object vs header-line text).
    """
    file_path = Path(path)
    text = file_path.read_text()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        payload = json.loads(stripped)
        sequence = [int(element) for element in payload.get("sequence", [])]
        n_elements = int(payload["n_elements"])
        metadata = dict(payload.get("metadata", {}))
    else:
        lines = text.splitlines()
        if not lines or not lines[0].startswith("#"):
            raise WorkloadError(f"{path} does not look like a saved trace (missing header)")
        header = json.loads(lines[0][1:].strip())
        n_elements = int(header["n_elements"])
        metadata = dict(header.get("metadata", {}))
        sequence = [int(line) for line in lines[1:] if line.strip()]
    for element in sequence:
        if not 0 <= element < n_elements:
            raise WorkloadError(
                f"trace element {element} outside declared universe of size {n_elements}"
            )
    return sequence, n_elements, metadata


def trace_digest(sequence: Sequence[ElementId], n_elements: int) -> str:
    """Return the content digest identifying a trace (sequence + universe).

    The digest is what makes ``trace_file`` specs content-addressed: two
    plan documents naming the same path hit the same cache entries only if
    the file still holds the same trace.
    """
    canonical = json.dumps(
        {"n_elements": int(n_elements), "sequence": [int(e) for e in sequence]},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class TraceFileWorkload(SequenceWorkload):
    """Replay of a trace dump, with the header metadata round-tripped.

    A :class:`~repro.workloads.base.SequenceWorkload` over the saved
    sequence, plus the dump's header metadata (generator parameters,
    padding, ...) surfaced as :attr:`metadata` and folded into
    :meth:`parameters`.  Ships as a ``trace_file`` spec carrying the path
    and the trace's content digest; the builder re-reads the file and
    refuses to proceed if the content changed under the digest.
    """

    name = "trace-file"

    def __init__(self, path: str, expected_sha256: Optional[str] = None) -> None:
        sequence, n_elements, metadata = load_trace(path)
        digest = trace_digest(sequence, n_elements)
        if expected_sha256 is not None and digest != expected_sha256:
            raise WorkloadError(
                f"trace file {path} changed since its spec was taken: "
                f"content digest {digest[:12]}... does not match the "
                f"recorded {expected_sha256[:12]}..."
            )
        super().__init__(n_elements, sequence)
        self.path = str(path)
        self.metadata = metadata
        self._digest = digest

    @property
    def sha256(self) -> str:
        """Content digest of the loaded trace (sequence + universe size)."""
        return self._digest

    def to_spec(self) -> WorkloadSpec:
        return WorkloadSpec.create(
            "trace_file",
            path=self.path,
            sha256=self._digest,
            n_elements=self.n_elements,
        )

    def parameters(self) -> Dict[str, object]:
        parameters = super().parameters()
        parameters["path"] = self.path
        parameters["sha256"] = self._digest
        parameters["metadata"] = dict(self.metadata)
        return parameters


@register_workload("trace_file")
def _build_trace_file(params: Dict[str, object], seed: Optional[int]) -> TraceFileWorkload:
    del seed  # a saved trace is pure data; trial seeding cannot apply
    sha256 = params.get("sha256")
    workload = TraceFileWorkload(
        str(params["path"]),
        expected_sha256=str(sha256) if sha256 is not None else None,
    )
    declared = params.get("n_elements")
    if declared is not None and int(declared) != workload.n_elements:
        raise WorkloadError(
            f"trace file {params['path']} holds a universe of "
            f"{workload.n_elements} elements but the spec declares {declared}"
        )
    return workload


def load_trace_workload(path: str) -> TraceFileWorkload:
    """Load a saved trace as a replayable workload, metadata included."""
    return TraceFileWorkload(path)
