"""Saving and loading request traces.

Reproducibility plumbing: experiments can persist the exact request sequences
they used (together with the generator parameters) and reload them later, so a
result can be re-examined without regenerating the workload.  Two formats are
supported:

* a compact text format (one element identifier per line, ``#``-prefixed
  header lines carrying JSON metadata), and
* JSON (metadata plus the full sequence), convenient for small traces and for
  interchange with other tools.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import WorkloadError
from repro.types import ElementId
from repro.workloads.base import SequenceWorkload

__all__ = ["save_trace", "load_trace", "load_trace_workload"]


def save_trace(
    path: str,
    sequence: Sequence[ElementId],
    n_elements: int,
    metadata: Optional[Dict[str, object]] = None,
    fmt: str = "text",
) -> Path:
    """Write a request trace to ``path`` and return the path.

    Parameters
    ----------
    path:
        Output file path (parent directories are created).
    sequence:
        The request sequence.
    n_elements:
        Size of the element universe the trace was generated for.
    metadata:
        Optional JSON-serialisable metadata (generator parameters, seeds, ...).
    fmt:
        ``"text"`` (default) or ``"json"``.
    """
    if n_elements <= 0:
        raise WorkloadError(f"n_elements must be positive, got {n_elements}")
    for element in sequence:
        if not 0 <= int(element) < n_elements:
            raise WorkloadError(
                f"trace element {element} outside universe of size {n_elements}"
            )
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    header = {"n_elements": n_elements, "length": len(sequence), "metadata": metadata or {}}

    if fmt == "text":
        lines = [f"# {json.dumps(header)}"]
        lines.extend(str(int(element)) for element in sequence)
        file_path.write_text("\n".join(lines) + "\n")
    elif fmt == "json":
        payload = dict(header, sequence=[int(element) for element in sequence])
        file_path.write_text(json.dumps(payload))
    else:
        raise WorkloadError(f"unknown trace format {fmt!r}; use 'text' or 'json'")
    return file_path


def load_trace(path: str) -> Tuple[List[ElementId], int, Dict[str, object]]:
    """Read a trace written by :func:`save_trace`.

    Returns ``(sequence, n_elements, metadata)``.  The format is detected from
    the file content (JSON object vs header-line text).
    """
    file_path = Path(path)
    text = file_path.read_text()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        payload = json.loads(stripped)
        sequence = [int(element) for element in payload.get("sequence", [])]
        n_elements = int(payload["n_elements"])
        metadata = dict(payload.get("metadata", {}))
    else:
        lines = text.splitlines()
        if not lines or not lines[0].startswith("#"):
            raise WorkloadError(f"{path} does not look like a saved trace (missing header)")
        header = json.loads(lines[0][1:].strip())
        n_elements = int(header["n_elements"])
        metadata = dict(header.get("metadata", {}))
        sequence = [int(line) for line in lines[1:] if line.strip()]
    for element in sequence:
        if not 0 <= element < n_elements:
            raise WorkloadError(
                f"trace element {element} outside declared universe of size {n_elements}"
            )
    return sequence, n_elements, metadata


def load_trace_workload(path: str) -> SequenceWorkload:
    """Load a saved trace as a replayable :class:`SequenceWorkload`."""
    sequence, n_elements, _ = load_trace(path)
    return SequenceWorkload(n_elements, sequence)
