"""Capped exponential-backoff retry policy for the trial fan-out.

One :class:`RetryPolicy` object describes both kinds of recovery round the
executor performs:

* **per-payload retries** — a worker raised an ordinary exception; the
  payload is resubmitted (to the pool or re-run serially) up to
  ``max_retries`` times, sleeping ``delay(attempt)`` between attempts;
* **pool rebuilds** — the pool broke (a worker died) or stalled past the
  worker timeout; the pool is rebuilt and every unfinished payload
  resubmitted, for at most ``max_retries`` rounds, after which the executor
  degrades to in-process serial execution instead of failing the campaign.

Because every payload is a pure function of its content (seeds derive from
the trial index alone), re-execution is bit-identical by construction — the
policy only trades wall-clock for robustness, never results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExperimentError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry failed trial payloads.

    Attributes
    ----------
    max_retries:
        Retry budget — per payload for ordinary worker exceptions, and per
        fan-out pass for pool rebuilds (crash / hang rounds).  ``0`` disables
        retrying entirely: the first failure propagates.
    backoff_base:
        Sleep before the first retry, in seconds; retry ``k`` sleeps
        ``backoff_base * 2**(k-1)``.  ``0`` disables sleeping (used by the
        test suite to keep fault matrices fast).
    backoff_max:
        Upper bound of any single backoff sleep.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ExperimentError(
                f"max_retries must be a non-negative integer, got {self.max_retries!r}"
            )
        if self.backoff_base < 0:
            raise ExperimentError(
                f"backoff_base must be non-negative, got {self.backoff_base!r}"
            )
        if self.backoff_max < 0:
            raise ExperimentError(
                f"backoff_max must be non-negative, got {self.backoff_max!r}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based): capped exponential."""
        if attempt <= 0:
            raise ExperimentError(f"retry attempts are 1-based, got {attempt}")
        return min(self.backoff_max, self.backoff_base * (2.0 ** (attempt - 1)))

    @classmethod
    def for_config(cls, config: object) -> "RetryPolicy":
        """Build the policy a run-shape config asks for.

        Duck-typed on ``max_retries`` (any object with the
        :class:`repro.plans.RunConfig` field works) so the low-level executor
        never imports the plan layer.
        """
        max_retries = getattr(config, "max_retries", None)
        if max_retries is None:
            return cls()
        return cls(max_retries=int(max_retries))
