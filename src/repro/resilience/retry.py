"""Capped exponential-backoff retry policy for the trial fan-out.

One :class:`RetryPolicy` object describes both kinds of recovery round the
executor performs:

* **per-payload retries** — a worker raised an ordinary exception; the
  payload is resubmitted (to the pool, the remote fleet, or re-run
  serially) up to ``max_retries`` times, sleeping ``delay(attempt, token)``
  between attempts;
* **pool rebuilds** — the pool broke (a worker died) or stalled past the
  worker timeout; the pool is rebuilt and every unfinished payload
  resubmitted, for at most ``max_retries`` rounds, after which the executor
  degrades to in-process serial execution instead of failing the campaign.

The schedule is *jittered*: each delay is stretched by a deterministic,
seeded factor derived from ``(seed, attempt, token)``, where ``token`` is
the payload index (or rebuild round).  Without jitter, every payload that
failed in the same pool-death round would sleep exactly the same capped
exponential and resubmit simultaneously — a retry stampede that can re-kill
a struggling pool or fleet.  With it, retries spread out while staying pure
functions of the policy content: the same policy, attempt and token always
produce the same delay, so timing-sensitive tests and re-runs are exactly
reproducible.

Because every payload is a pure function of its content (seeds derive from
the trial index alone), re-execution is bit-identical by construction — the
policy only trades wall-clock for robustness, never results.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict

from repro.exceptions import ExperimentError

__all__ = ["RetryPolicy"]

#: Default stretch fraction of the seeded jitter (delay grows by up to 25%).
DEFAULT_JITTER = 0.25


def _jitter_unit(seed: int, attempt: int, token: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from ``(seed, attempt, token)``.

    Hash-based rather than ``random.Random`` so the draw is a documented
    pure function of its inputs, stable across Python versions and
    processes — the retry-determinism tests pin exact delay values.
    """
    digest = hashlib.sha256(
        f"repro-retry-jitter:{seed}:{attempt}:{token}".encode("ascii")
    ).digest()
    return struct.unpack(">Q", digest[:8])[0] / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry failed trial payloads.

    Attributes
    ----------
    max_retries:
        Retry budget — per payload for ordinary worker exceptions, and per
        fan-out pass for pool rebuilds (crash / hang rounds).  ``0`` disables
        retrying entirely: the first failure propagates.
    backoff_base:
        Sleep before the first retry, in seconds; retry ``k`` sleeps
        ``backoff_base * 2**(k-1)`` (before jitter).  ``0`` disables sleeping
        (used by the test suite to keep fault matrices fast).
    backoff_max:
        Upper bound of any single backoff sleep, jitter included.
    jitter:
        Stretch fraction of the seeded jitter: the base delay is multiplied
        by ``1 + jitter * u`` with ``u`` a deterministic uniform draw from
        ``(seed, attempt, token)``.  ``0`` restores the bare capped
        exponential.
    seed:
        Namespace of the jitter draws — two seeded policies de-correlate
        their retry schedules even for identical payload tokens.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    jitter: float = DEFAULT_JITTER
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ExperimentError(
                f"max_retries must be a non-negative integer, got {self.max_retries!r}"
            )
        if self.backoff_base < 0:
            raise ExperimentError(
                f"backoff_base must be non-negative, got {self.backoff_base!r}"
            )
        if self.backoff_max < 0:
            raise ExperimentError(
                f"backoff_max must be non-negative, got {self.backoff_max!r}"
            )
        if not 0 <= self.jitter <= 1:
            raise ExperimentError(
                f"jitter must be a fraction in [0, 1], got {self.jitter!r}"
            )
        if not isinstance(self.seed, int):
            raise ExperimentError(f"seed must be an integer, got {self.seed!r}")

    def delay(self, attempt: int, token: int = 0) -> float:
        """Backoff before retry ``attempt`` (1-based): jittered capped exponential.

        ``token`` identifies *what* is retrying — the payload index, or the
        pool-rebuild round — so simultaneous failures spread their retries
        instead of stampeding back in lockstep.  The same ``(policy,
        attempt, token)`` always yields the same delay.
        """
        if attempt <= 0:
            raise ExperimentError(f"retry attempts are 1-based, got {attempt}")
        base = self.backoff_base * (2.0 ** (attempt - 1))
        if self.jitter:
            base *= 1.0 + self.jitter * _jitter_unit(self.seed, attempt, token)
        return min(self.backoff_max, base)

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly representation."""
        return {
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_max": self.backoff_max,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RetryPolicy":
        """Rebuild a policy from :meth:`to_dict` output (or equivalent JSON)."""
        if not isinstance(data, dict):
            raise ExperimentError(f"not a retry-policy document: {data!r}")
        known = {"max_retries", "backoff_base", "backoff_max", "jitter", "seed"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ExperimentError(f"unknown retry-policy keys: {unknown}")
        return cls(**data)

    @classmethod
    def for_config(cls, config: object) -> "RetryPolicy":
        """Build the policy a run-shape config asks for.

        Duck-typed on ``max_retries`` (any object with the
        :class:`repro.plans.RunConfig` field works) so the low-level executor
        never imports the plan layer.
        """
        max_retries = getattr(config, "max_retries", None)
        if max_retries is None:
            return cls()
        return cls(max_retries=int(max_retries))
