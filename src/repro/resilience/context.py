"""Per-run execution context: the store, the resume flag, the counters.

:func:`repro.plans.execute.run` activates one :class:`ExecutionContext` for
the duration of a plan run; :func:`repro.sim.runner.execute_payloads`
consults the active context to decide whether to check the checkpoint store
before running a payload (``resume``) and where to persist each result as it
completes.  The context also carries :class:`ResilienceStats`, the counters
the resume/retry tests assert against ("re-running with ``resume=True``
executed only the missing trials").

The context travels through a :class:`contextvars.ContextVar`, not function
signatures, so the low-level runner/sweep machinery keeps its existing call
shapes and legacy (non-plan) callers simply see no context — and therefore
no caching — exactly as before.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.resilience.store import ResultStore
from repro.telemetry.registry import MetricsRegistry, default_registry

__all__ = [
    "ExecutionContext",
    "ResilienceStats",
    "activate_context",
    "current_context",
]


#: field name → (help text, is_flag).  Flags export as counters too: the
#: counter records how many runs degraded; the per-run view is "did this
#: run's slice of the counter move".
_STATS_FIELDS: Dict[str, tuple] = {
    "executed": (
        "Payloads actually run to completion (a retried payload counts once).",
        False,
    ),
    "cache_hits": (
        "Payloads skipped because a verified checkpoint entry existed.",
        False,
    ),
    "stored": ("Results persisted to the checkpoint store.", False),
    "retries": (
        "Per-payload resubmissions after an ordinary worker exception.",
        False,
    ),
    "pool_rebuilds": (
        "Pool teardown/rebuild rounds (worker death or stall past timeout).",
        False,
    ),
    "degraded": (
        "Runs that fell back to in-process serial execution.",
        True,
    ),
    "corrupt_entries": (
        "Checkpoint entries that failed verification and were re-run.",
        False,
    ),
    "remote_executed": (
        "Payloads completed by remote worker daemons.",
        False,
    ),
    "lease_expiries": (
        "Distributed leases that expired without a heartbeat and were requeued.",
        False,
    ),
    "workers_lost": (
        "Remote workers dropped from the fleet.",
        False,
    ),
    "duplicate_results": (
        "Remote completions dropped idempotently (already delivered).",
        False,
    ),
    "degraded_remote": (
        "Runs where the distributed executor lost its fleet and ran locally.",
        True,
    ),
}


class ResilienceStats:
    """Execution counters of one plan run (or one raw fan-out pass).

    Since the telemetry layer landed, this is a **thin per-run view over the
    metrics registry**: every field is backed by a process-wide counter
    (``repro_run_<field>_total``), and an instance captures each counter's
    value at construction as its baseline — reading ``stats.executed``
    returns the counter's movement since this instance was created, so the
    long-standing per-run semantics (and every existing test) are unchanged
    while the same increments feed the scrapeable registry.

    Attribute assignment keeps working (the executor layers bump fields via
    ``setattr``): a raise becomes a counter increment; a lower assignment
    (e.g. resetting to zero) only moves this instance's baseline, because
    registry counters are monotonic.  Boolean fields (``degraded``,
    ``degraded_remote``) read as "has this run's slice of the counter
    moved".

    Field meanings:

    executed:
        Payloads actually run to completion (a retried payload counts once,
        on success).
    cache_hits:
        Payloads skipped because a verified checkpoint entry existed.
    stored:
        Results persisted to the checkpoint store.
    retries:
        Per-payload resubmissions after an ordinary worker exception.
    pool_rebuilds:
        Pool teardown/rebuild rounds (worker death or stall past the worker
        timeout).
    degraded:
        Whether the executor fell back to in-process serial execution after
        exhausting its pool-rebuild budget.
    corrupt_entries:
        Checkpoint entries that failed verification and were re-run.
    remote_executed:
        Payloads completed by remote worker daemons (a subset of
        ``executed``; see :mod:`repro.dist`).
    lease_expiries:
        Distributed leases that expired without a heartbeat (worker crash,
        hang or partition) and were requeued for another worker.
    workers_lost:
        Remote workers dropped from the fleet (unreachable at connect,
        connection lost, or lease expired).
    duplicate_results:
        Remote completions dropped idempotently because another worker (or a
        requeued lease) already delivered the payload's result.
    degraded_remote:
        Whether the distributed executor lost its whole fleet and fell back
        to local execution for the unfinished payloads.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        registry = registry if registry is not None else default_registry()
        counters = {}
        baselines = {}
        for name, (help_text, _flag) in _STATS_FIELDS.items():
            counter = registry.counter(f"repro_run_{name}_total", help_text)
            counters[name] = counter
            baselines[name] = counter.total()
        object.__setattr__(self, "_counters", counters)
        object.__setattr__(self, "_baselines", baselines)

    def _view(self, name: str) -> int:
        raw = self._counters[name].total() - self._baselines[name]
        return int(raw) if raw > 0 else 0

    def __getattr__(self, name: str):
        try:
            _help, is_flag = _STATS_FIELDS[name]
        except KeyError:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            ) from None
        view = self._view(name)
        return view > 0 if is_flag else view

    def __setattr__(self, name: str, value) -> None:
        if name not in _STATS_FIELDS:
            object.__setattr__(self, name, value)
            return
        target = int(value)
        delta = target - self._view(name)
        if delta > 0:
            self._counters[name].inc(delta)
        elif delta < 0:
            # counters are monotonic: absorb the decrease into the baseline
            self._baselines[name] = self._counters[name].total() - target
        # delta == 0 (e.g. re-setting a flag already True) is a no-op

    def as_dict(self) -> Dict[str, object]:
        """Return the counters as a plain dictionary (logging/bench output)."""
        return {name: getattr(self, name) for name in _STATS_FIELDS}

    def __repr__(self) -> str:
        body = ", ".join(f"{name}={getattr(self, name)!r}" for name in _STATS_FIELDS)
        return f"ResilienceStats({body})"


@dataclass
class ExecutionContext:
    """What one plan run carries down into the payload executor.

    ``store`` is the run-level override (the ``cache=`` argument of
    :func:`repro.run`); when absent, each stage's ``config.cache_dir``
    resolves its own store through :meth:`store_for`, memoised per path so a
    multi-stage experiment shares one :class:`ResultStore` per directory.
    """

    store: Optional[ResultStore] = None
    resume: bool = False
    stats: ResilienceStats = field(default_factory=ResilienceStats)
    _stores: Dict[str, ResultStore] = field(default_factory=dict)

    def store_for(self, cache_dir: Optional[str]) -> Optional[ResultStore]:
        """Resolve the store for one stage: run-level override, else config."""
        if self.store is not None:
            return self.store
        if not cache_dir:
            return None
        key = str(cache_dir)
        store = self._stores.get(key)
        if store is None:
            store = self._stores[key] = ResultStore(key)
        return store


_active: contextvars.ContextVar[Optional[ExecutionContext]] = contextvars.ContextVar(
    "repro_resilience_context", default=None
)


def current_context() -> Optional[ExecutionContext]:
    """Return the active execution context, if a plan run is in progress."""
    return _active.get()


@contextmanager
def activate_context(context: ExecutionContext):
    """Make ``context`` the active one for the duration of the block."""
    token = _active.set(context)
    try:
        yield context
    finally:
        _active.reset(token)
