"""Per-run execution context: the store, the resume flag, the counters.

:func:`repro.plans.execute.run` activates one :class:`ExecutionContext` for
the duration of a plan run; :func:`repro.sim.runner.execute_payloads`
consults the active context to decide whether to check the checkpoint store
before running a payload (``resume``) and where to persist each result as it
completes.  The context also carries :class:`ResilienceStats`, the counters
the resume/retry tests assert against ("re-running with ``resume=True``
executed only the missing trials").

The context travels through a :class:`contextvars.ContextVar`, not function
signatures, so the low-level runner/sweep machinery keeps its existing call
shapes and legacy (non-plan) callers simply see no context — and therefore
no caching — exactly as before.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.resilience.store import ResultStore

__all__ = [
    "ExecutionContext",
    "ResilienceStats",
    "activate_context",
    "current_context",
]


@dataclass
class ResilienceStats:
    """Execution counters of one plan run (or one raw fan-out pass).

    Attributes
    ----------
    executed:
        Payloads actually run to completion (a retried payload counts once,
        on success).
    cache_hits:
        Payloads skipped because a verified checkpoint entry existed.
    stored:
        Results persisted to the checkpoint store.
    retries:
        Per-payload resubmissions after an ordinary worker exception.
    pool_rebuilds:
        Pool teardown/rebuild rounds (worker death or stall past the worker
        timeout).
    degraded:
        Whether the executor fell back to in-process serial execution after
        exhausting its pool-rebuild budget.
    corrupt_entries:
        Checkpoint entries that failed verification and were re-run.
    remote_executed:
        Payloads completed by remote worker daemons (a subset of
        ``executed``; see :mod:`repro.dist`).
    lease_expiries:
        Distributed leases that expired without a heartbeat (worker crash,
        hang or partition) and were requeued for another worker.
    workers_lost:
        Remote workers dropped from the fleet (unreachable at connect,
        connection lost, or lease expired).
    duplicate_results:
        Remote completions dropped idempotently because another worker (or a
        requeued lease) already delivered the payload's result.
    degraded_remote:
        Whether the distributed executor lost its whole fleet and fell back
        to local execution for the unfinished payloads.
    """

    executed: int = 0
    cache_hits: int = 0
    stored: int = 0
    retries: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False
    corrupt_entries: int = 0
    remote_executed: int = 0
    lease_expiries: int = 0
    workers_lost: int = 0
    duplicate_results: int = 0
    degraded_remote: bool = False

    def as_dict(self) -> Dict[str, object]:
        """Return the counters as a plain dictionary (logging/bench output)."""
        return {
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "stored": self.stored,
            "retries": self.retries,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded": self.degraded,
            "corrupt_entries": self.corrupt_entries,
            "remote_executed": self.remote_executed,
            "lease_expiries": self.lease_expiries,
            "workers_lost": self.workers_lost,
            "duplicate_results": self.duplicate_results,
            "degraded_remote": self.degraded_remote,
        }


@dataclass
class ExecutionContext:
    """What one plan run carries down into the payload executor.

    ``store`` is the run-level override (the ``cache=`` argument of
    :func:`repro.run`); when absent, each stage's ``config.cache_dir``
    resolves its own store through :meth:`store_for`, memoised per path so a
    multi-stage experiment shares one :class:`ResultStore` per directory.
    """

    store: Optional[ResultStore] = None
    resume: bool = False
    stats: ResilienceStats = field(default_factory=ResilienceStats)
    _stores: Dict[str, ResultStore] = field(default_factory=dict)

    def store_for(self, cache_dir: Optional[str]) -> Optional[ResultStore]:
        """Resolve the store for one stage: run-level override, else config."""
        if self.store is not None:
            return self.store
        if not cache_dir:
            return None
        key = str(cache_dir)
        store = self._stores.get(key)
        if store is None:
            store = self._stores[key] = ResultStore(key)
        return store


_active: contextvars.ContextVar[Optional[ExecutionContext]] = contextvars.ContextVar(
    "repro_resilience_context", default=None
)


def current_context() -> Optional[ExecutionContext]:
    """Return the active execution context, if a plan run is in progress."""
    return _active.get()


@contextmanager
def activate_context(context: ExecutionContext):
    """Make ``context`` the active one for the duration of the block."""
    token = _active.set(context)
    try:
        yield context
    finally:
        _active.reset(token)
