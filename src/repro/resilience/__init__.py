"""Resilient execution: retries, fault isolation, checkpointed campaigns.

The determinism invariants the plan layer guarantees (per-trial seeds are
pure functions of the trial index; plans are immutable, hashable and JSON
round-trippable) mean every trial result is a pure function of its payload
content.  This package exploits that property in three coupled layers:

* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, the capped
  exponential-backoff schedule shared by the fan-out's per-payload retries
  and its pool-rebuild rounds;
* :mod:`repro.resilience.store` — :class:`ResultStore`, a content-addressed
  crash-safe checkpoint store (atomic write-then-rename, length + checksum
  verification on read) keyed by :func:`payload_key` — the hash of
  everything that determines a trial result bit for bit — plus
  :func:`plan_hash` for whole-plan provenance;
* :mod:`repro.resilience.faults` — :class:`FaultSpec`, the seeded,
  registry-validated fault-injection description (worker crash, hang,
  transient exception, plus daemon-level kill/hang/partition modes for the
  distributed fleet) that lets the test suite and the CI smoke pin
  "recovery output == fault-free output, byte identical";
* :mod:`repro.resilience.context` — :class:`ExecutionContext` /
  :class:`ResilienceStats`, the per-run carrier of the store, the resume
  flag and the execution counters the resume tests assert against.

Because re-running a payload always reproduces the same bits, retrying,
resuming and degrading to serial execution are all *observationally free*:
the resilience layer can recover from any failure mode without changing a
single result byte.
"""

from __future__ import annotations

from repro.resilience.context import (
    ExecutionContext,
    ResilienceStats,
    activate_context,
    current_context,
)
from repro.resilience.faults import (
    FAULT_MODES,
    WORKER_FAULT_MODES,
    FaultSpec,
    fault_spec_from_env,
    maybe_inject,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.store import ResultStore, payload_key, plan_hash

__all__ = [
    "ExecutionContext",
    "FAULT_MODES",
    "FaultSpec",
    "ResilienceStats",
    "ResultStore",
    "RetryPolicy",
    "WORKER_FAULT_MODES",
    "activate_context",
    "current_context",
    "fault_spec_from_env",
    "maybe_inject",
    "payload_key",
    "plan_hash",
]
