"""Deterministic fault injection for the resilient execution layer.

A :class:`FaultSpec` is a frozen, registry-validated, JSON round-trippable
description of how trial execution should misbehave — the same shape as
every other spec in the repo (:class:`~repro.workloads.spec.WorkloadSpec`,
:class:`~repro.algorithms.registry.AlgorithmSpec`): a ``mode`` naming a
registered fault kind, the trial indices it arms, and a trigger budget.
It rides to workers inside a test-only :class:`~repro.sim.runner.
TrialPayload` field; :func:`maybe_inject` fires it at the top of the worker
body, *before* any request is served, so a recovered run re-executes the
whole payload from its pristine seeded state and is byte-identical to a
fault-free run by construction.

Registered modes:

* ``"crash"`` — the worker process dies (``os._exit``), breaking the pool;
  fires only inside pool workers (in the parent process there is no worker
  to kill, so serial runs are unaffected — which is exactly what makes
  "degrade to serial" a safe recovery of last resort).
* ``"hang"`` — the worker sleeps past any reasonable ``worker_timeout``;
  pool-worker only, for the same reason.
* ``"exception"`` — raises :class:`~repro.exceptions.FaultInjectionError`;
  fires everywhere (this is the transient-failure mode the serial retry
  path is tested with).
* ``"worker_crash"`` / ``"worker_hang"`` / ``"worker_partition"`` — the
  distributed-executor modes: kill, silence or disconnect a whole worker
  *daemon* (see :mod:`repro.dist.worker`).  They fire only inside a
  distributed worker; pool, serial and degraded execution of the same
  payloads runs clean, which is what lets the lease-recovery tests pin
  "node loss output == fault-free output, byte identical".

Trigger budgets must survive worker death: a crashed worker cannot remember
that it already fired.  Counting therefore goes through *arm files* — one
``O_EXCL``-created marker per trigger under ``arm_dir`` — so "fail twice,
then succeed on the third attempt" is exact across processes, retries and
pool rebuilds.

The ``REPRO_FAULT_SPEC`` environment variable (a JSON object or a path to
one) injects a fault into any payload build without touching code — the CI
fault smoke uses it to kill a worker under ``repro run smoke --jobs 4`` and
assert the output still matches the fault-free golden run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.exceptions import ExperimentError, FaultInjectionError

__all__ = [
    "FAULT_MODES",
    "WORKER_FAULT_MODES",
    "FaultSpec",
    "check_fault_mode",
    "fault_spec_from_env",
    "maybe_inject",
]

#: Environment variable consulted by the payload builders: a JSON fault-spec
#: document (or a path to a file holding one) injected into every payload.
FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"

#: Registered fault modes and what firing each one means.
FAULT_MODES: Dict[str, str] = {
    "crash": "kill the worker process (os._exit), breaking the pool",
    "hang": "sleep past the worker timeout (pool workers only)",
    "exception": "raise FaultInjectionError (a retryable transient failure)",
    "worker_crash": "kill a whole distributed worker daemon (os._exit)",
    "worker_hang": "stop a distributed worker's heartbeat past the lease timeout",
    "worker_partition": "drop a distributed worker's connection (simulated netsplit)",
}

#: Modes that target a whole distributed worker daemon rather than one trial
#: body.  They fire inside :mod:`repro.dist.worker` (on the connection
#: thread, before execution starts) and are no-ops everywhere else, so local
#: pool and serial re-execution of the same payloads runs clean — which is
#: exactly what makes the degradation ladder a safe recovery.
WORKER_FAULT_MODES = frozenset({"worker_crash", "worker_hang", "worker_partition"})


def check_fault_mode(mode: str) -> str:
    """Validate a fault mode against the registry, listing known modes."""
    if mode not in FAULT_MODES:
        raise ExperimentError(
            f"unknown fault mode {mode!r}; registered modes: {sorted(FAULT_MODES)}"
        )
    return mode


def _in_worker_process() -> bool:
    """True inside a process-pool worker (the parent process has no parent)."""
    return multiprocessing.parent_process() is not None


@dataclass(frozen=True)
class FaultSpec:
    """Immutable description of an injected execution fault.

    Attributes
    ----------
    mode:
        A registered fault mode (see :data:`FAULT_MODES`).
    trials:
        Trial indices the fault arms; payloads of other trials run clean.
    arm_dir:
        Directory for the cross-process trigger counters (arm files).  Must
        exist; each ``(seed, trial, algorithm)`` combination counts its
        triggers independently there.
    max_triggers:
        How many times the fault fires per (trial, algorithm) before the
        payload is allowed to succeed — e.g. ``1`` kills one worker, then
        the retried payload completes.
    hang_seconds:
        Sleep duration of the ``"hang"`` mode.
    seed:
        Namespace of the trigger counters (two seeded specs count
        independently in the same ``arm_dir``); carried in the JSON document
        like every other spec seed.
    """

    mode: str
    trials: Tuple[int, ...] = ()
    arm_dir: Optional[str] = None
    max_triggers: int = 1
    hang_seconds: float = 3600.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_fault_mode(self.mode)
        object.__setattr__(
            self, "trials", tuple(int(trial) for trial in self.trials)
        )
        if self.arm_dir is None:
            raise ExperimentError(
                "FaultSpec needs an arm_dir: trigger budgets are counted in "
                "files so they survive the worker deaths they cause"
            )
        if not isinstance(self.max_triggers, int) or self.max_triggers < 0:
            raise ExperimentError(
                f"max_triggers must be a non-negative integer, got "
                f"{self.max_triggers!r}"
            )
        if self.hang_seconds < 0:
            raise ExperimentError(
                f"hang_seconds must be non-negative, got {self.hang_seconds!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly representation."""
        return {
            "mode": self.mode,
            "trials": list(self.trials),
            "arm_dir": self.arm_dir,
            "max_triggers": self.max_triggers,
            "hang_seconds": self.hang_seconds,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_dict` output (or equivalent JSON)."""
        if not isinstance(data, dict):
            raise ExperimentError(f"not a fault-spec document: {data!r}")
        known = {"mode", "trials", "arm_dir", "max_triggers", "hang_seconds", "seed"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ExperimentError(f"unknown fault-spec keys: {unknown}")
        if "mode" not in data:
            raise ExperimentError("fault-spec document is missing 'mode'")
        return cls(**data)

    def triggers_fired(self, trial: int, algorithm: str) -> int:
        """Count how many times this fault has fired for one payload."""
        return len(list(Path(self.arm_dir).glob(self._arm_stem(trial, algorithm) + ".*")))

    def _arm_stem(self, trial: int, algorithm: str) -> str:
        return f"fault-{self.seed}-t{trial}-{algorithm}"

    def _claim_trigger(self, trial: int, algorithm: str) -> bool:
        """Atomically claim the next trigger; False once the budget is spent.

        Arm files are created ``O_CREAT | O_EXCL`` so a claim is exact even
        if two processes raced for it (they cannot for one payload — retries
        of a payload are sequential — but exactness is cheap).
        """
        stem = self._arm_stem(trial, algorithm)
        root = Path(self.arm_dir)
        while True:
            fired = len(list(root.glob(stem + ".*")))
            if fired >= self.max_triggers:
                return False
            try:
                fd = os.open(root / f"{stem}.{fired}", os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue  # raced; re-count
            os.close(fd)
            return True


def maybe_inject(
    fault: Optional[FaultSpec], trial: int, algorithm: str
) -> None:
    """Fire ``fault`` for this payload if it is armed and has budget left.

    Called at the top of the trial-worker body.  Process-killing modes
    (``"crash"``, ``"hang"``) fire only inside pool workers: in the parent
    process there is no worker process to kill, so serial execution — and
    the executor's degrade-to-serial recovery — runs them clean.
    """
    if fault is None or trial not in fault.trials:
        return
    if fault.mode in WORKER_FAULT_MODES:
        # daemon-level modes are the distributed worker's to fire (see
        # repro.dist.worker); in a pool worker, a serial run or a degraded
        # re-run there is no daemon, so the payload executes clean
        return
    if fault.mode in ("crash", "hang") and not _in_worker_process():
        return
    if not fault._claim_trigger(trial, algorithm):
        return
    if fault.mode == "crash":
        os._exit(17)
    if fault.mode == "hang":
        time.sleep(fault.hang_seconds)
        return
    raise FaultInjectionError(
        f"injected transient fault (trial {trial}, algorithm {algorithm!r})"
    )


def fault_spec_from_env() -> Optional[FaultSpec]:
    """Build the fault spec the environment asks for, if any.

    ``REPRO_FAULT_SPEC`` may hold a JSON object or a path to a JSON file.
    Consulted by the payload builders, so the spec travels *inside* the
    payloads — pool workers need no environment of their own.
    """
    raw = os.environ.get(FAULT_SPEC_ENV)
    if not raw:
        return None
    text = raw
    if not raw.lstrip().startswith("{"):
        path = Path(raw)
        if not path.is_file():
            raise ExperimentError(
                f"{FAULT_SPEC_ENV} is neither a JSON object nor a file: {raw!r}"
            )
        text = path.read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ExperimentError(
            f"{FAULT_SPEC_ENV} does not hold valid JSON: {error}"
        ) from None
    return FaultSpec.from_dict(data)
