"""Content-addressed, crash-safe result store for trial checkpoints.

Every trial result in this repo is a pure function of its payload content:
seeds are derived from the trial index alone, specs rebuild generators in
their pristine state, and backends/chunk sizes are bit-identical throughput
knobs.  :func:`payload_key` hashes exactly the payload fields that determine
the result — and deliberately *not* the throughput knobs — so a cache entry
written under ``--jobs 4 --backend array`` is a valid hit for a serial
scalar re-run, and an incrementally-extended campaign (more trials, more
sweep points) re-uses every unchanged payload's entry even though the plan
hash changed.

:class:`ResultStore` persists one file per entry under a root directory
(default ``.repro-cache/``):

* **atomic** — entries are written to a temp file in the same directory and
  ``os.replace``-d into place, so a crash mid-write can never leave a
  half-entry under the final name;
* **self-verifying** — each file carries a header with the body's byte
  length and SHA-256; :meth:`ResultStore.get` treats any mismatch (truncated
  write, bit rot, stray file) as a *miss*, logs a warning, and lets the
  executor simply re-run the trial — corruption is never fatal;
* **append-only in spirit** — entries are immutable once written; re-putting
  the same key atomically replaces the file with identical bytes.

:func:`plan_hash` complements the per-payload keys with a whole-plan content
hash (throughput knobs normalised away) for provenance and campaign-level
identity.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.algorithms.base import RunResult
from repro.core.cost import RequestRecordColumns
from repro.exceptions import ExperimentError

if False:  # pragma: no cover - import-time hint only (cycle: runner imports us)
    from repro.sim.runner import TrialPayload

__all__ = [
    "ResultStore",
    "DEFAULT_CACHE_DIR",
    "payload_key",
    "plan_hash",
]

logger = logging.getLogger("repro.resilience")

#: Default checkpoint-store location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Magic + format version of entry files; bumping the version invalidates
#: every existing entry (readers treat unknown headers as corrupt → miss).
_MAGIC = "repro-result"
_FORMAT = 1


def _canonical_json(data: object) -> str:
    """Serialise to the one canonical byte form hashes are computed over."""
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), default=repr
    )


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _source_fingerprint(source: object) -> Dict[str, object]:
    """The result-determining content of a payload's workload half.

    ``chunk_size`` and ``shared`` are transport/batching knobs (streaming is
    pinned chunk-invariant), so they are deliberately absent.
    """
    from repro.sim.runner import (  # lazy: runner imports resilience
        AdversarySource,
        SequenceSource,
        SpecSource,
        TrafficSource,
    )

    if isinstance(source, SpecSource):
        return {
            "type": "spec",
            "spec": source.spec.to_dict(),
            "n_requests": source.n_requests,
        }
    if isinstance(source, SequenceSource):
        return {
            "type": "sequence",
            "sha256": _sha256(_canonical_json(list(source.sequence))),
            "n_requests": len(source.sequence),
        }
    if isinstance(source, TrafficSource):
        return {
            "type": "traffic",
            "traffic": source.traffic.to_dict(),
            "requests_per_source": source.requests_per_source,
        }
    if isinstance(source, AdversarySource):
        return {
            "type": "adversary",
            "adversary": source.adversary.to_dict(),
            "n_requests": source.n_requests,
        }
    raise ExperimentError(f"unknown workload source type: {source!r}")


def payload_key(payload: TrialPayload) -> str:
    """Content hash of everything that determines a payload's result.

    Included: the algorithm spec, the workload source content, tree size,
    seeds, trial index, record mode and metadata.  Excluded: ``backend``,
    ``chunk_size`` and the test-only fault field — all pinned bit-identical
    (or result-free), so results cached under one configuration are hits
    under every other.
    """
    fingerprint = {
        "algorithm": payload.algorithm.to_dict(),
        "source": _source_fingerprint(payload.source),
        "n_nodes": payload.n_nodes,
        "placement_seed": payload.placement_seed,
        "algorithm_seed": payload.algorithm_seed,
        "keep_records": payload.keep_records,
        "trial": payload.trial,
        "metadata": payload.metadata,
    }
    return _sha256(_canonical_json(fingerprint))


def plan_hash(plan: object) -> str:
    """Content hash of a plan with the throughput knobs normalised away.

    Two plans that differ only in ``n_jobs``/``chunk_size``/``backend``/
    ``cache_dir``/``worker_timeout``/``max_retries``/``executor`` produce
    identical results, so they hash identically; anything that changes a
    result byte (seeds, sizes, specs, stages) changes the hash.
    """
    from repro.plans.io import plan_to_dict  # lazy: plans imports resilience

    def normalise(node: object) -> object:
        if isinstance(node, dict):
            scrubbed = {
                key: normalise(value)
                for key, value in node.items()
                if key
                not in (
                    "n_jobs",
                    "chunk_size",
                    "backend",
                    "cache_dir",
                    "worker_timeout",
                    "max_retries",
                    "executor",
                )
            }
            return scrubbed
        if isinstance(node, list):
            return [normalise(item) for item in node]
        return node

    return _sha256(_canonical_json(normalise(plan_to_dict(plan))))


def _records_to_columns(records: object) -> Dict[str, List[int]]:
    """Decompose per-request records into the three integer columns."""
    if isinstance(records, RequestRecordColumns):
        return {
            "elements": list(records._elements),
            "levels": list(records._levels),
            "swaps": list(records._swaps),
        }
    elements: List[int] = []
    levels: List[int] = []
    swaps: List[int] = []
    for record in records:
        elements.append(record.element)
        levels.append(record.level_at_access)
        swaps.append(record.adjustment_cost)
    return {"elements": elements, "levels": levels, "swaps": swaps}


def result_to_dict(result: RunResult) -> Dict[str, object]:
    """JSON-friendly form of a :class:`~repro.algorithms.base.RunResult`."""
    document: Dict[str, object] = {
        "algorithm": result.algorithm,
        "n_nodes": result.n_nodes,
        "n_requests": result.n_requests,
        "total_access_cost": result.total_access_cost,
        "total_adjustment_cost": result.total_adjustment_cost,
        "metadata": result.metadata,
    }
    if len(result.per_request):
        document["per_request"] = _records_to_columns(result.per_request)
    return document


def result_from_dict(data: Dict[str, object]) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output."""
    per_request = RequestRecordColumns()
    columns = data.get("per_request")
    if columns:
        per_request.extend_fields(
            columns["elements"], columns["levels"], columns["swaps"]
        )
    return RunResult(
        algorithm=data["algorithm"],
        n_nodes=int(data["n_nodes"]),
        n_requests=int(data["n_requests"]),
        total_access_cost=int(data["total_access_cost"]),
        total_adjustment_cost=int(data["total_adjustment_cost"]),
        per_request=per_request if len(per_request) else [],
        metadata=dict(data.get("metadata") or {}),
    )


class ResultStore:
    """Content-addressed checkpoint store: one verified file per trial result.

    Layout: ``<root>/<key[:2]>/<key>.json`` — a two-hex-character fan-out so
    paper-scale campaigns (10^5+ entries) never put every file in one
    directory.  Keys are :func:`payload_key` hashes; the store itself is
    key-agnostic.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------- locations

    def path_for(self, key: str) -> Path:
        """Entry path of ``key`` (existing or not)."""
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> List[str]:
        """Return the keys of all stored entries (verified or not), sorted."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    # ----------------------------------------------------------------- reads

    def get(self, key: str) -> Optional[RunResult]:
        """Return the verified result stored under ``key``, else ``None``.

        Corrupted, truncated or otherwise unreadable entries are logged and
        reported as missing — the campaign re-runs the trial instead of
        crashing — and the bad file is left in place for post-mortems (the
        next :meth:`put` atomically replaces it).
        """
        path = self.path_for(key)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as error:
            logger.warning("cache entry %s unreadable (%s); treating as missing", path, error)
            return None
        try:
            header, _, body = raw.partition("\n")
            magic, version, length, checksum = header.split(" ")
            if magic != _MAGIC or int(version) != _FORMAT:
                raise ValueError(f"bad header {header!r}")
            if len(body.encode("utf-8")) != int(length):
                raise ValueError("length mismatch (truncated entry)")
            if _sha256(body) != checksum:
                raise ValueError("checksum mismatch (corrupted entry)")
            return result_from_dict(json.loads(body))
        except (ValueError, KeyError, TypeError) as error:
            logger.warning(
                "cache entry %s corrupt (%s); treating as missing", path, error
            )
            return None

    # ----------------------------------------------------------- maintenance

    def stats(self) -> Dict[str, int]:
        """Entry count and byte footprint of the store (``repro cache stats``).

        ``orphans`` counts leftover temp files from interrupted writes —
        harmless (they are never read) but reclaimable via :meth:`prune`.
        """
        entries = 0
        size = 0
        orphans = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.json"):
                entries += 1
                try:
                    size += path.stat().st_size
                except OSError:  # pragma: no cover - raced with a writer
                    pass
            orphans = sum(1 for _ in self.root.glob("*/.*.tmp"))
        return {"entries": entries, "bytes": size, "orphans": orphans}

    def verify(self) -> Dict[str, List[str]]:
        """Re-verify every entry; return ``{"ok": [...], "corrupt": [...]}``.

        The eager twin of the lazy read-side healing: :meth:`get` already
        treats corrupt entries as misses one key at a time, but a campaign
        about to resume on a fleet wants to know *up front* how much of its
        checkpoint is trustworthy.  Corrupt entries are reported (and logged
        by the read path), never deleted — that is :meth:`prune`'s job.
        """
        ok: List[str] = []
        corrupt: List[str] = []
        for key in self.keys():
            (ok if self.get(key) is not None else corrupt).append(key)
        return {"ok": ok, "corrupt": corrupt}

    def prune(self) -> Dict[str, int]:
        """Drop corrupt entries and orphaned temp files; return removal counts.

        Only files that can never satisfy a read are touched: entries whose
        header, length or checksum fails verification, and ``mkstemp``
        leftovers from writes that died before their atomic rename.  Healthy
        entries are never candidates, so a prune mid-campaign is safe.
        """
        removed = {"corrupt": 0, "orphans": 0}
        for key in self.keys():
            if self.get(key) is None:
                try:
                    self.path_for(key).unlink()
                    removed["corrupt"] += 1
                except OSError:  # pragma: no cover - raced with a writer
                    pass
        if self.root.is_dir():
            for path in self.root.glob("*/.*.tmp"):
                try:
                    path.unlink()
                    removed["orphans"] += 1
                except OSError:  # pragma: no cover - raced with a writer
                    pass
        return removed

    # ---------------------------------------------------------------- writes

    def put(self, key: str, result: RunResult) -> Path:
        """Store ``result`` under ``key`` atomically (write-then-rename)."""
        body = _canonical_json(result_to_dict(result))
        payload = (
            f"{_MAGIC} {_FORMAT} {len(body.encode('utf-8'))} {_sha256(body)}\n{body}"
        )
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path
