"""Shared type aliases and protocols used across the :mod:`repro` library.

The library models the self-adjusting single-source tree network problem of
Avin et al. (ICDCS 2022).  Throughout the code base:

* a *node* is a position in the fixed complete binary tree, identified by its
  heap index (``0`` is the root, node ``i`` has children ``2 i + 1`` and
  ``2 i + 2``);
* an *element* is one of the ``n`` items stored in the tree, identified by an
  integer in ``[0, n)``;
* a *request sequence* is a sequence of element identifiers issued by the
  single source attached to the root.
"""

from __future__ import annotations

from typing import Iterable, List, Protocol, Sequence, Tuple, runtime_checkable

#: A node of the complete binary tree, identified by its heap index.
NodeId = int

#: An element stored in the tree, identified by an integer in ``[0, n)``.
ElementId = int

#: The level (depth) of a node or element; the root has level 0.
Level = int

#: A request sequence: the elements accessed by the source, in order.
RequestSequence = Sequence[ElementId]

#: A root-to-node path, as a list of node indices starting at the root.
NodePath = List[NodeId]

#: A (access_cost, adjustment_cost) pair for a single served request.
CostPair = Tuple[int, int]


@runtime_checkable
class SupportsServe(Protocol):
    """Protocol implemented by every online tree-network algorithm.

    An algorithm owns a :class:`repro.core.state.TreeNetwork` and serves
    requests one at a time, returning the cost incurred for each.
    """

    def serve(self, element: ElementId) -> "object":
        """Serve a single request and return its cost record."""

    def run(self, sequence: Iterable[ElementId]) -> "object":
        """Serve a whole sequence and return an aggregate result."""


@runtime_checkable
class SupportsGenerate(Protocol):
    """Protocol implemented by workload generators.

    A generator produces a request sequence over a universe of ``n_elements``
    elements; generation must be reproducible given the ``seed``.
    """

    def generate(self, n_requests: int) -> List[ElementId]:
        """Return a list of ``n_requests`` element identifiers."""
