"""repro - Deterministic Self-Adjusting Tree Networks Using Rotor Walks.

A from-scratch Python reproduction of the ICDCS 2022 paper by Avin, Bienkowski,
Salem, Sama, Schmid and Schmidt.  The library provides:

* the complete-binary-tree substrate with the paper's cost model
  (:mod:`repro.core`);
* all single-source self-adjusting tree algorithms - Rotor-Push, Random-Push,
  Move-Half, Max-Push (Strict-MRU), the static baselines and the naive
  Move-To-Front generalisation (:mod:`repro.algorithms`);
* the analytical machinery: working sets, flip-ranks, the potential/credit
  functions of the competitive proofs, entropy and trace-complexity estimators
  (:mod:`repro.analysis`);
* workload generators with controlled temporal / spatial locality, adversarial
  constructions and a corpus pipeline (:mod:`repro.workloads`);
* a simulation engine with multi-trial runners and parameter sweeps
  (:mod:`repro.sim`);
* a reconfigurable-datacenter substrate composing per-source trees into a
  bounded-degree multi-source network (:mod:`repro.network`);
* experiment harnesses reproducing every figure and table of the paper's
  evaluation (:mod:`repro.experiments`) and a command line (``repro``).

Quickstart::

    from repro import make_algorithm, CombinedLocalityWorkload

    workload = CombinedLocalityWorkload(n_elements=255, zipf_exponent=1.6,
                                        repeat_probability=0.5, seed=1)
    algorithm = make_algorithm("rotor-push", n_nodes=255, placement_seed=1)
    result = algorithm.run(workload.generate(10_000))
    print(result.average_total_cost)
"""

from repro.algorithms import (
    ALGORITHMS,
    PAPER_ALGORITHMS,
    SELF_ADJUSTING_ALGORITHMS,
    MaxPush,
    MoveHalf,
    MoveToFrontTree,
    OnlineTreeAlgorithm,
    RandomPush,
    RotorPush,
    RunResult,
    StaticOblivious,
    StaticOpt,
    available_algorithms,
    make_algorithm,
)
from repro.analysis import (
    PotentialTracker,
    empirical_competitive_ratio,
    empirical_entropy,
    ranks_of_sequence,
    trace_complexity,
    working_set_bound,
)
from repro.core import (
    CompleteBinaryTree,
    CostLedger,
    RequestCost,
    RotorState,
    TreeNetwork,
)
from repro.network import MultiSourceNetwork, SingleSourceTreeNetwork, TrafficTrace
from repro.sim import ResultTable, TrialRunner, compare_algorithms, simulate
from repro.workloads import (
    CombinedLocalityWorkload,
    CorpusWorkload,
    MarkovWorkload,
    TemporalWorkload,
    UniformWorkload,
    ZipfWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "CombinedLocalityWorkload",
    "CompleteBinaryTree",
    "CorpusWorkload",
    "CostLedger",
    "MarkovWorkload",
    "MaxPush",
    "MoveHalf",
    "MoveToFrontTree",
    "MultiSourceNetwork",
    "OnlineTreeAlgorithm",
    "PAPER_ALGORITHMS",
    "PotentialTracker",
    "RandomPush",
    "RequestCost",
    "ResultTable",
    "RotorPush",
    "RotorState",
    "RunResult",
    "SELF_ADJUSTING_ALGORITHMS",
    "SingleSourceTreeNetwork",
    "StaticOblivious",
    "StaticOpt",
    "TemporalWorkload",
    "TrafficTrace",
    "TreeNetwork",
    "TrialRunner",
    "UniformWorkload",
    "ZipfWorkload",
    "__version__",
    "available_algorithms",
    "compare_algorithms",
    "empirical_competitive_ratio",
    "empirical_entropy",
    "make_algorithm",
    "ranks_of_sequence",
    "simulate",
    "trace_complexity",
    "working_set_bound",
]
