"""repro - Deterministic Self-Adjusting Tree Networks Using Rotor Walks.

A from-scratch Python reproduction of the ICDCS 2022 paper by Avin, Bienkowski,
Salem, Sama, Schmid and Schmidt.  The library provides:

* the complete-binary-tree substrate with the paper's cost model
  (:mod:`repro.core`);
* all single-source self-adjusting tree algorithms - Rotor-Push, Random-Push,
  Move-Half, Max-Push (Strict-MRU), the static baselines and the naive
  Move-To-Front generalisation (:mod:`repro.algorithms`);
* the analytical machinery: working sets, flip-ranks, the potential/credit
  functions of the competitive proofs, entropy and trace-complexity estimators
  (:mod:`repro.analysis`);
* workload generators with controlled temporal / spatial locality, adversarial
  constructions and a corpus pipeline (:mod:`repro.workloads`);
* a simulation engine with multi-trial runners and parameter sweeps
  (:mod:`repro.sim`);
* a reconfigurable-datacenter substrate composing per-source trees into a
  bounded-degree multi-source network (:mod:`repro.network`);
* experiment harnesses reproducing every figure and table of the paper's
  evaluation (:mod:`repro.experiments`) and a command line (``repro``);
* a declarative plan layer (:mod:`repro.plans`): immutable, JSON
  round-trippable descriptions of whole experiments, executed through the
  single entrypoint :func:`repro.run`.

Quickstart::

    from repro import make_algorithm, CombinedLocalityWorkload

    workload = CombinedLocalityWorkload(n_elements=255, zipf_exponent=1.6,
                                        repeat_probability=0.5, seed=1)
    algorithm = make_algorithm("rotor-push", n_nodes=255, placement_seed=1)
    result = algorithm.run(workload.generate(10_000))
    print(result.average_total_cost)

Declarative quickstart::

    import repro
    from repro import RunConfig, TrialPlan, WorkloadSpec

    plan = TrialPlan(
        n_nodes=255,
        workload=WorkloadSpec.create("zipf", n_elements=255, exponent=1.6),
        algorithms=("rotor-push", "static-oblivious"),
        config=RunConfig(n_requests=10_000, n_trials=3),
    )
    table = repro.run(plan)          # == repro.run(repro.plans.loads(json))
    print(table.format_text())
"""

from repro.algorithms import (
    ALGORITHMS,
    PAPER_ALGORITHMS,
    SELF_ADJUSTING_ALGORITHMS,
    AlgorithmSpec,
    MaxPush,
    MoveHalf,
    MoveToFrontTree,
    OnlineTreeAlgorithm,
    RandomPush,
    RotorPush,
    RunResult,
    StaticOblivious,
    StaticOpt,
    available_algorithms,
    make_algorithm,
)
from repro.analysis import (
    PotentialTracker,
    empirical_competitive_ratio,
    empirical_entropy,
    ranks_of_sequence,
    trace_complexity,
    working_set_bound,
)
from repro.core import (
    CompleteBinaryTree,
    CostLedger,
    RequestCost,
    RotorState,
    TreeNetwork,
)
from repro.network import (
    MultiSourceNetwork,
    SingleSourceTreeNetwork,
    TrafficSpec,
    TrafficTrace,
)
from repro.sim import ResultTable, TrialRunner, compare_algorithms, simulate
from repro.workloads import (
    CombinedLocalityWorkload,
    CorpusWorkload,
    MarkovWorkload,
    TemporalWorkload,
    UniformWorkload,
    WorkloadSpec,
    ZipfWorkload,
)
from repro import plans
from repro.plans import (
    ExperimentPlan,
    NetworkPlan,
    RunConfig,
    SweepPlan,
    TrafficSweepPlan,
    TrialPlan,
    run,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "CombinedLocalityWorkload",
    "CompleteBinaryTree",
    "CorpusWorkload",
    "CostLedger",
    "ExperimentPlan",
    "MarkovWorkload",
    "MaxPush",
    "MoveHalf",
    "MoveToFrontTree",
    "MultiSourceNetwork",
    "NetworkPlan",
    "OnlineTreeAlgorithm",
    "PAPER_ALGORITHMS",
    "PotentialTracker",
    "RandomPush",
    "RequestCost",
    "ResultTable",
    "RotorPush",
    "RotorState",
    "RunConfig",
    "RunResult",
    "SELF_ADJUSTING_ALGORITHMS",
    "SingleSourceTreeNetwork",
    "StaticOblivious",
    "StaticOpt",
    "SweepPlan",
    "TemporalWorkload",
    "TrafficSpec",
    "TrafficSweepPlan",
    "TrafficTrace",
    "TreeNetwork",
    "TrialPlan",
    "TrialRunner",
    "UniformWorkload",
    "WorkloadSpec",
    "ZipfWorkload",
    "__version__",
    "available_algorithms",
    "compare_algorithms",
    "empirical_competitive_ratio",
    "empirical_entropy",
    "make_algorithm",
    "plans",
    "ranks_of_sequence",
    "run",
    "simulate",
    "trace_complexity",
    "working_set_bound",
]
