"""Plan (de)serialisation: JSON documents ↔ plan objects, golden plans.

The document format mirrors the plan dataclasses one to one; every document
carries a ``"plan"`` discriminator (``"trial"``, ``"sweep"``, ``"network"``,
``"traffic_sweep"`` or ``"experiment"``).  Loading validates the schema *and* the referenced
registry names — :func:`loads` on a document naming an unknown algorithm or
workload kind raises the same eager, name-listing errors as constructing the
plan in Python, so a bad plan file never gets as far as building payloads.

The q1–q5 plan builders' outputs are shipped as *golden plans* under
``src/repro/experiments/plans/``; :func:`load_golden_plan` resolves them by
stem name (``"q1"`` … ``"q5"``, ``"smoke"``) for the CLI and the CI smoke
job.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.algorithms.registry import AlgorithmSpec
from repro.exceptions import PlanError
from repro.network.traffic import TrafficSpec
from repro.plans.model import (
    ExperimentPlan,
    NetworkPlan,
    Plan,
    RunConfig,
    SweepPlan,
    TrafficSweepPlan,
    TrialPlan,
)
from repro.workloads.spec import WorkloadSpec, thaw_value

__all__ = [
    "GOLDEN_PLAN_DIR",
    "plan_to_dict",
    "plan_from_dict",
    "dumps",
    "loads",
    "dump",
    "load",
    "golden_plan_names",
    "load_golden_plan",
    "validate_golden_plans",
]

#: Directory holding the shipped golden experiment plans (q1 … q5, smoke).
GOLDEN_PLAN_DIR = Path(__file__).resolve().parent.parent / "experiments" / "plans"


def _params_to_json(params) -> Dict[str, object]:
    # the spec layer's canonical thaw: frozen tuples -> JSON lists
    return {name: thaw_value(value) for name, value in params}


def plan_to_dict(plan: Plan) -> Dict[str, object]:
    """Return the JSON-friendly document describing ``plan``."""
    if isinstance(plan, TrialPlan):
        return {
            "plan": "trial",
            "name": plan.name,
            "n_nodes": plan.n_nodes,
            "workload": plan.workload.to_dict(),
            "algorithms": [spec.to_dict() for spec in plan.algorithms],
            "config": plan.config.to_dict(),
        }
    if isinstance(plan, SweepPlan):
        return {
            "plan": "sweep",
            "name": plan.name,
            "n_nodes": plan.n_nodes,
            "workload": plan.workload.to_dict(),
            "algorithms": [spec.to_dict() for spec in plan.algorithms],
            "points": [_params_to_json(point) for point in plan.points],
            "bind": {key: param for key, param in plan.bind},
            "config": plan.config.to_dict(),
        }
    if isinstance(plan, NetworkPlan):
        return {
            "plan": "network",
            "name": plan.name,
            "n_sources": plan.n_sources,
            "traffic": plan.traffic.to_dict(),
            "algorithm": plan.algorithm.to_dict(),
            "config": plan.config.to_dict(),
        }
    if isinstance(plan, TrafficSweepPlan):
        return {
            "plan": "traffic_sweep",
            "name": plan.name,
            "traffic": plan.traffic.to_dict(),
            "algorithms": [spec.to_dict() for spec in plan.algorithms],
            "points": [_params_to_json(point) for point in plan.points],
            "bind": {key: target for key, target in plan.bind},
            "config": plan.config.to_dict(),
        }
    if isinstance(plan, ExperimentPlan):
        return {
            "plan": "experiment",
            "name": plan.name,
            "assembler": plan.assembler,
            "params": _params_to_json(plan.params),
            "config": None if plan.config is None else plan.config.to_dict(),
            "stages": [
                {"key": key, "plan": plan_to_dict(sub)} for key, sub in plan.stages
            ],
        }
    raise PlanError(f"not a plan object: {plan!r}")


def _require(data: Dict[str, object], key: str, context: str) -> object:
    if key not in data:
        raise PlanError(f"{context}: missing required key {key!r}")
    return data[key]


def plan_from_dict(data: Dict[str, object]) -> Plan:
    """Rebuild a plan from :func:`plan_to_dict` output (or equivalent JSON)."""
    if not isinstance(data, dict):
        raise PlanError(f"not a plan document: {data!r}")
    kind = data.get("plan")
    context = f"plan document {data.get('name', '<unnamed>')!r}"
    if kind == "trial":
        return TrialPlan(
            name=str(data.get("name", "trial")),
            n_nodes=int(_require(data, "n_nodes", context)),
            workload=WorkloadSpec.from_dict(_require(data, "workload", context)),
            algorithms=tuple(
                AlgorithmSpec.from_dict(item)
                for item in _require(data, "algorithms", context)
            ),
            config=RunConfig.from_dict(data.get("config") or {}),
        )
    if kind == "sweep":
        points = _require(data, "points", context)
        if not isinstance(points, list):
            raise PlanError(f"{context}: points must be a list of objects")
        bind = data.get("bind") or {}
        if not isinstance(bind, dict):
            raise PlanError(f"{context}: bind must be an object")
        n_nodes = data.get("n_nodes")
        return SweepPlan(
            name=str(data.get("name", "sweep")),
            n_nodes=None if n_nodes is None else int(n_nodes),
            workload=WorkloadSpec.from_dict(_require(data, "workload", context)),
            algorithms=tuple(
                AlgorithmSpec.from_dict(item)
                for item in _require(data, "algorithms", context)
            ),
            points=tuple(dict(point) for point in points),
            bind=bind,
            config=RunConfig.from_dict(data.get("config") or {}),
        )
    if kind == "network":
        n_sources = data.get("n_sources")
        return NetworkPlan(
            name=str(data.get("name", "network")),
            traffic=TrafficSpec.from_dict(_require(data, "traffic", context)),
            algorithm=AlgorithmSpec.from_dict(_require(data, "algorithm", context)),
            config=RunConfig.from_dict(data.get("config") or {}),
            n_sources=None if n_sources is None else int(n_sources),
        )
    if kind == "traffic_sweep":
        points = _require(data, "points", context)
        if not isinstance(points, list):
            raise PlanError(f"{context}: points must be a list of objects")
        bind = data.get("bind") or {}
        if not isinstance(bind, dict):
            raise PlanError(f"{context}: bind must be an object")
        return TrafficSweepPlan(
            name=str(data.get("name", "traffic_sweep")),
            traffic=TrafficSpec.from_dict(_require(data, "traffic", context)),
            algorithms=tuple(
                AlgorithmSpec.from_dict(item)
                for item in _require(data, "algorithms", context)
            ),
            points=tuple(dict(point) for point in points),
            bind=bind,
            config=RunConfig.from_dict(data.get("config") or {}),
        )
    if kind == "experiment":
        stages_doc = data.get("stages") or []
        if not isinstance(stages_doc, list):
            raise PlanError(f"{context}: stages must be a list")
        stages = []
        for entry in stages_doc:
            if not isinstance(entry, dict) or "key" not in entry or "plan" not in entry:
                raise PlanError(
                    f"{context}: each stage needs 'key' and 'plan' keys, "
                    f"got {entry!r}"
                )
            stages.append((str(entry["key"]), plan_from_dict(entry["plan"])))
        config = data.get("config")
        params = data.get("params") or {}
        if not isinstance(params, dict):
            raise PlanError(f"{context}: params must be an object")
        return ExperimentPlan.create(
            name=str(_require(data, "name", context)),
            stages=tuple(stages),
            assembler=str(data.get("assembler", "tables")),
            params=params,
            config=None if config is None else RunConfig.from_dict(config),
        )
    raise PlanError(
        f"{context}: unknown plan type {kind!r}; expected one of "
        "'trial', 'sweep', 'network', 'traffic_sweep', 'experiment'"
    )


def dumps(plan: Plan, indent: int = 2) -> str:
    """Serialise ``plan`` to a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent, sort_keys=True)


def loads(text: str) -> Plan:
    """Parse a JSON string into a validated plan."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise PlanError(f"plan document is not valid JSON: {error}") from None
    return plan_from_dict(data)


def dump(plan: Plan, path: Union[str, Path]) -> Path:
    """Write ``plan`` to ``path`` as JSON and return the path."""
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    file_path.write_text(dumps(plan) + "\n")
    return file_path


def load(path: Union[str, Path]) -> Plan:
    """Read and validate the plan stored at ``path``."""
    file_path = Path(path)
    if not file_path.is_file():
        raise PlanError(f"plan file not found: {file_path}")
    return loads(file_path.read_text())


def golden_plan_names() -> List[str]:
    """Return the stem names of the shipped golden plans, sorted."""
    if not GOLDEN_PLAN_DIR.is_dir():
        return []
    return sorted(path.stem for path in GOLDEN_PLAN_DIR.glob("*.json"))


def load_golden_plan(name: str) -> Plan:
    """Load a shipped golden plan by stem name (``"q1"`` … ``"smoke"``)."""
    path = GOLDEN_PLAN_DIR / f"{name}.json"
    if not path.is_file():
        raise PlanError(
            f"unknown golden plan {name!r}; shipped plans: {golden_plan_names()}"
        )
    return load(path)


def validate_golden_plans() -> List[str]:
    """Load (and thereby schema-validate) every shipped golden plan.

    Used by the CI plan-smoke job; returns the validated names so the log
    shows what was covered.
    """
    names = golden_plan_names()
    if not names:
        raise PlanError(f"no golden plans found under {GOLDEN_PLAN_DIR}")
    for name in names:
        load_golden_plan(name)
    return names
