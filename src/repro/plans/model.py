"""Immutable experiment-plan objects: specs all the way down.

This module completes the declarative layer started by
:class:`repro.workloads.spec.WorkloadSpec` (PR 2) and
:class:`repro.algorithms.registry.AlgorithmSpec`: every knob of an experiment
run — what to serve, on what tree, how many trials, how to parallelise —
lives in a frozen, JSON round-trippable plan object, validated against the
algorithm and workload registries *at construction*.  Experiments become
shareable artifacts instead of imperative code:

* :class:`RunConfig` — the run-shape half (trials, requests per trial, seed
  policy, worker processes, streaming chunk size, serve backend, record
  mode); the bundle that used to be threaded keyword-by-keyword through
  ``TrialRunner`` → ``ParameterSweep`` → q1–q5 → CLI.
* :class:`TrialPlan` — one multi-trial comparison: a workload template, a
  tuple of algorithm specs, a tree size and a config.
* :class:`SweepPlan` — a parameter sweep: a list of points, a binding from
  point keys to workload-template parameters, algorithms and a config.
* :class:`NetworkPlan` — one multi-source network scenario: a
  :class:`~repro.network.traffic.TrafficSpec` (per-source workload specs +
  interleaving policy), the tree algorithm every source runs, and a config
  whose ``n_requests`` counts requests *per source*.
* :class:`TrafficSweepPlan` — the network twin of :class:`SweepPlan`: a
  traffic-spec template, points, and a binding from point keys onto traffic
  fields (``n_sources``, ``interleaving``, ``weights``, per-source workload
  parameters via ``workload.<name>``), compared across algorithms.
* :class:`ExperimentPlan` — a named composition: sub-plans (trial, sweep,
  network or nested experiment) plus a registered *assembler* that turns
  stage results into the figure-specific output (difference tables,
  histograms, per-source cost reports, ...).

Plans never hold RNG state or request data; executing one
(:func:`repro.plans.run`) derives all seeds from ``config.base_seed`` exactly
as the imperative runners always did, so a plan re-run — today, on another
machine, after a JSON round-trip — reproduces results bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.algorithms.registry import AlgorithmSpec
from repro.core import backend as _backend
from repro.dist.protocol import check_executor
from repro.exceptions import ExperimentError, PlanError, WorkloadError
from repro.network.traffic import TrafficSpec
from repro.sim.parallel import check_n_jobs
from repro.workloads.base import check_chunk_size
from repro.workloads.spec import (
    WorkloadSpec,
    check_kind,
    check_universe,
    freeze_params,
)

__all__ = [
    "RunConfig",
    "TrialPlan",
    "SweepPlan",
    "NetworkPlan",
    "TrafficSweepPlan",
    "ExperimentPlan",
    "Plan",
    "plan_with_overrides",
]


# plan params freeze through the spec layer's canonical convention, so spec
# and plan equality/hashing stay bit-compatible
_freeze_params = freeze_params


@dataclass(frozen=True)
class RunConfig:
    """The run-shape of an experiment: everything that is not *what* to run.

    Attributes
    ----------
    n_requests:
        Requests per trial.
    n_trials:
        Number of independent trials.
    base_seed:
        Root of the seed policy.  Trial ``i`` derives its workload seed as
        ``base_seed + i``, its placement seed as ``base_seed + 10_000 + i``
        and its algorithm seed as ``base_seed + 20_000 + i`` — the exact
        derivation :class:`repro.sim.runner.TrialRunner` has always used, so
        a plan pins results by pinning one integer.
    keep_records:
        Record mode: whether per-request cost records are retained
        (memory-heavy at paper scale).
    n_jobs:
        Worker processes for the (trial, algorithm) fan-out; ``1`` = serial,
        negative = all CPUs.  A throughput knob only — results are
        bit-identical for every value.
    chunk_size:
        Streaming chunk size for spec-shipped workloads (``None`` = default);
        a memory/batching knob only, never a semantics knob.
    backend:
        Serve backend: ``"array"``, ``"python"`` or ``None``/``"auto"``.
        Validated as a *name* here; availability (``"array"`` needs NumPy for
        its vectorised path) is checked when the plan runs, so plans authored
        on one machine still load on another.
    worker_timeout:
        Stall detector of the parallel fan-out, in seconds: if no payload
        completes within this window the pool is presumed hung, its workers
        are terminated and the unfinished payloads retried (see
        :func:`repro.sim.parallel.map_ordered`).  ``None`` (default)
        disables the detector.  A robustness knob only — results are
        bit-identical for every value.
    max_retries:
        Retry budget of the resilient executor: per-payload resubmissions
        after a transient worker exception, and pool-rebuild rounds after a
        worker death or stall (after which execution degrades to in-process
        serial).  A robustness knob only, never a results knob.
    cache_dir:
        Checkpoint-store directory for crash-safe resumable campaigns: when
        set, every completed trial result is persisted (content-addressed,
        atomic write-then-rename) as it arrives, and ``repro.run(plan,
        resume=True)`` skips trials whose verified entries already exist.
        ``None`` (default) disables checkpointing.
    executor:
        Remote executor address for distributed multi-host execution:
        ``"tcp://HOST:PORT[,HOST:PORT...][?lease=SECONDS&heartbeat=
        SECONDS]"`` names the worker-daemon fleet (``repro worker --listen
        ...``) payloads are leased to (see :mod:`repro.dist`).  ``None``
        (default) runs locally.  Validated as an *address format* here;
        reachability is the coordinator's business at run time, and an
        unreachable fleet degrades to local execution rather than failing.
        A placement knob only — results are byte-identical wherever the
        payloads land.
    """

    n_requests: int = 10_000
    n_trials: int = 3
    base_seed: int = 0
    keep_records: bool = False
    n_jobs: int = 1
    chunk_size: Optional[int] = None
    backend: Optional[str] = None
    worker_timeout: Optional[float] = None
    max_retries: int = 2
    cache_dir: Optional[str] = None
    executor: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_trials <= 0:
            raise PlanError(f"n_trials must be positive, got {self.n_trials}")
        if self.n_requests < 0:
            raise PlanError(
                f"n_requests must be non-negative, got {self.n_requests}"
            )
        try:
            check_n_jobs(self.n_jobs)
            if self.chunk_size is not None:
                check_chunk_size(int(self.chunk_size))
        except (ExperimentError, WorkloadError) as error:
            # plan documents fail with plan-level errors, whatever layer the
            # delegated validator lives in
            raise PlanError(str(error)) from None
        _backend.resolve_backend(self.backend)  # name check only
        if self.worker_timeout is not None and not self.worker_timeout > 0:
            raise PlanError(
                f"worker_timeout must be positive (seconds) or None, got "
                f"{self.worker_timeout!r}"
            )
        if not isinstance(self.max_retries, int) or isinstance(
            self.max_retries, bool
        ) or self.max_retries < 0:
            raise PlanError(
                f"max_retries must be a non-negative integer, got "
                f"{self.max_retries!r}"
            )
        if self.cache_dir is not None and (
            not isinstance(self.cache_dir, str) or not self.cache_dir
        ):
            raise PlanError(
                f"cache_dir must be a non-empty path string or None, got "
                f"{self.cache_dir!r}"
            )
        if self.executor is not None:
            try:
                check_executor(self.executor)
            except ExperimentError as error:
                raise PlanError(str(error)) from None

    def check_runnable(self) -> "RunConfig":
        """Validate environment-dependent choices right before execution."""
        _backend.require_backend_available(self.backend)
        return self

    def with_overrides(
        self,
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
        backend: Optional[str] = None,
        n_trials: Optional[int] = None,
        n_requests: Optional[int] = None,
        worker_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        cache_dir: Optional[str] = None,
        executor: Optional[str] = None,
    ) -> "RunConfig":
        """Return a copy with the given (non-``None``) knobs replaced."""
        updates: Dict[str, object] = {}
        if n_jobs is not None:
            updates["n_jobs"] = n_jobs
        if chunk_size is not None:
            updates["chunk_size"] = chunk_size
        if backend is not None:
            updates["backend"] = backend
        if n_trials is not None:
            updates["n_trials"] = n_trials
        if n_requests is not None:
            updates["n_requests"] = n_requests
        if worker_timeout is not None:
            updates["worker_timeout"] = worker_timeout
        if max_retries is not None:
            updates["max_retries"] = max_retries
        if cache_dir is not None:
            updates["cache_dir"] = cache_dir
        if executor is not None:
            updates["executor"] = executor
        return replace(self, **updates) if updates else self

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly representation."""
        return {
            "n_requests": self.n_requests,
            "n_trials": self.n_trials,
            "base_seed": self.base_seed,
            "keep_records": self.keep_records,
            "n_jobs": self.n_jobs,
            "chunk_size": self.chunk_size,
            "backend": self.backend,
            "worker_timeout": self.worker_timeout,
            "max_retries": self.max_retries,
            "cache_dir": self.cache_dir,
            "executor": self.executor,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunConfig":
        """Rebuild a config from :meth:`to_dict` output (or equivalent JSON)."""
        if not isinstance(data, dict):
            raise PlanError(f"not a run-config document: {data!r}")
        known = {
            "n_requests",
            "n_trials",
            "base_seed",
            "keep_records",
            "n_jobs",
            "chunk_size",
            "backend",
            "worker_timeout",
            "max_retries",
            "cache_dir",
            "executor",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise PlanError(f"unknown run-config keys: {unknown}")
        return cls(**data)


def _coerce_algorithms(
    algorithms: object, owner: str
) -> Tuple[AlgorithmSpec, ...]:
    """Normalise an algorithms field to a tuple of validated specs."""
    if isinstance(algorithms, (str, AlgorithmSpec)):
        algorithms = (algorithms,)
    try:
        specs = tuple(AlgorithmSpec.coerce(item) for item in algorithms)
    except TypeError:
        raise PlanError(
            f"{owner}: algorithms must be an iterable of names/specs, "
            f"got {algorithms!r}"
        ) from None
    if not specs:
        raise PlanError(f"{owner}: a plan needs at least one algorithm")
    seen: Dict[str, AlgorithmSpec] = {}
    for spec in specs:
        if spec.name in seen:
            raise PlanError(
                f"{owner}: duplicate algorithm {spec.name!r}; registry names "
                "must be unique within one plan"
            )
        seen[spec.name] = spec
    return specs


def _check_workload_template(
    workload: object, n_nodes: Optional[int], owner: str
) -> WorkloadSpec:
    """Validate a workload template against the registry and the tree size."""
    if not isinstance(workload, WorkloadSpec):
        raise PlanError(
            f"{owner}: workload must be a WorkloadSpec, got {workload!r}"
        )
    check_kind(workload.kind)  # names the bad key and lists registered kinds
    if n_nodes is None:
        return workload
    try:
        # the spec layer's shared universe check (also used by TrafficSpec)
        return check_universe(workload, n_nodes, owner)
    except WorkloadError as error:
        # plan documents fail with plan-level errors (same convention as
        # RunConfig delegating to the n_jobs/chunk-size validators)
        raise PlanError(str(error)) from None


@dataclass(frozen=True)
class TrialPlan:
    """One multi-trial (workload × algorithms) comparison, as data.

    ``workload`` is a seedless *template*: trial ``i`` runs on
    ``workload.with_seed(config.base_seed + i)``, so all algorithms of a
    trial see the same stream and the whole plan is reproducible from
    ``config.base_seed`` alone.
    """

    n_nodes: int
    workload: WorkloadSpec
    algorithms: Tuple[AlgorithmSpec, ...]
    config: RunConfig = RunConfig()
    name: str = "trial"

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise PlanError(f"n_nodes must be positive, got {self.n_nodes}")
        object.__setattr__(
            self, "algorithms", _coerce_algorithms(self.algorithms, self._owner)
        )
        _check_workload_template(self.workload, self.n_nodes, self._owner)
        if not isinstance(self.config, RunConfig):
            raise PlanError(f"{self._owner}: config must be a RunConfig")

    @property
    def _owner(self) -> str:
        return f"trial plan {self.name!r}"

    def algorithm_names(self) -> List[str]:
        """Return the registry names of the planned algorithms, in order."""
        return [spec.name for spec in self.algorithms]


@dataclass(frozen=True)
class SweepPlan:
    """A parameter sweep over points, as data.

    ``points`` is a tuple of frozen parameter points; ``bind`` maps point
    keys onto workload-template parameter names (e.g. ``p ->
    repeat_probability``), so the sweep stays declarative: the workload for a
    point is the template with the bound parameters replaced and the
    per-trial seed stamped on.  Unbound point keys (like ``n_nodes``, which
    overrides the tree size per point) are structural and never reach the
    workload constructor.
    """

    workload: WorkloadSpec
    algorithms: Tuple[AlgorithmSpec, ...]
    points: Tuple[Tuple[Tuple[str, object], ...], ...]
    bind: Tuple[Tuple[str, str], ...] = ()
    n_nodes: Optional[int] = None
    config: RunConfig = RunConfig()
    name: str = "sweep"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "algorithms", _coerce_algorithms(self.algorithms, self._owner)
        )
        points = self.points
        try:
            frozen_points = tuple(
                point if isinstance(point, tuple) else _freeze_params(dict(point))
                for point in points
            )
        except (TypeError, ValueError):
            raise PlanError(
                f"{self._owner}: points must be mappings of parameter values, "
                f"got {points!r}"
            ) from None
        if not frozen_points:
            raise PlanError(f"{self._owner}: a sweep needs at least one point")
        object.__setattr__(self, "points", frozen_points)
        bind = self.bind
        if isinstance(bind, dict):
            bind = tuple(sorted(bind.items()))
        object.__setattr__(self, "bind", tuple(tuple(pair) for pair in bind))
        for point_key, param in self.bind:
            if not isinstance(point_key, str) or not isinstance(param, str):
                raise PlanError(
                    f"{self._owner}: bind entries must map point keys to "
                    f"workload parameter names, got {(point_key, param)!r}"
                )
        # Cross-validate bind against points *at construction*, so a typo'd
        # binding cannot pass eager validation and then fail (or silently
        # sweep nothing) mid-run.  ``n_nodes`` is the one structural point
        # key (it overrides the tree size per point, never a workload param).
        point_keys = {key for point in self.points for key, _value in point}
        bound_keys = {key for key, _param in self.bind}
        dangling = sorted(bound_keys - point_keys)
        if dangling:
            raise PlanError(
                f"{self._owner}: bind keys {dangling} appear in no sweep "
                f"point; point keys are {sorted(point_keys)}"
            )
        unbound = sorted(point_keys - bound_keys - {"n_nodes"})
        if unbound:
            raise PlanError(
                f"{self._owner}: point keys {unbound} are not bound to any "
                "workload parameter — add them to bind (the structural "
                "'n_nodes' key is the only exception)"
            )
        _check_workload_template(self.workload, None, self._owner)
        if self.n_nodes is not None and self.n_nodes <= 0:
            raise PlanError(f"n_nodes must be positive, got {self.n_nodes}")
        if not isinstance(self.config, RunConfig):
            raise PlanError(f"{self._owner}: config must be a RunConfig")

    @property
    def _owner(self) -> str:
        return f"sweep plan {self.name!r}"

    def point_dicts(self) -> List[Dict[str, object]]:
        """Return the sweep points as plain dictionaries, in order."""
        return [dict(point) for point in self.points]

    def bind_dict(self) -> Dict[str, str]:
        """Return the point-key → workload-parameter binding as a dict."""
        return dict(self.bind)

    def algorithm_names(self) -> List[str]:
        """Return the registry names of the planned algorithms, in order."""
        return [spec.name for spec in self.algorithms]


@dataclass(frozen=True)
class NetworkPlan:
    """One multi-source network scenario, as data.

    The network twin of :class:`TrialPlan`: ``traffic`` is a
    :class:`~repro.network.traffic.TrafficSpec` *template* (per-source
    workload specs, interleaving policy, weights) whose seeds are stamped per
    trial — trial ``i`` runs on ``traffic.with_seed(config.base_seed + i)``
    over a fresh :class:`~repro.network.multi_source.MultiSourceNetwork`
    whose base seed derives from the trial index alone (striding past the
    per-source seed window, see
    :data:`repro.plans.execute.NETWORK_TRIAL_SEED_STRIDE`), so the whole
    scenario reproduces from ``config.base_seed`` alone, at every
    ``n_jobs``, with no seed stream shared between trials or sources.

    ``config.n_requests`` counts requests *per source* (the trace totals
    ``n_sources × n_requests``); ``n_sources`` is derived from the traffic
    spec when omitted and cross-checked against it when given.
    """

    traffic: TrafficSpec
    algorithm: AlgorithmSpec
    config: RunConfig = RunConfig()
    n_sources: Optional[int] = None
    name: str = "network"

    def __post_init__(self) -> None:
        if not isinstance(self.traffic, TrafficSpec):
            raise PlanError(
                f"{self._owner}: traffic must be a TrafficSpec, got "
                f"{self.traffic!r}"
            )
        # unknown names keep their eager AlgorithmError (bad key + registry
        # listing), matching TrialPlan's validation conventions
        object.__setattr__(self, "algorithm", AlgorithmSpec.coerce(self.algorithm))
        declared = len(self.traffic.sources)
        if self.n_sources is None:
            object.__setattr__(self, "n_sources", declared)
        elif self.n_sources != declared:
            raise PlanError(
                f"{self._owner}: n_sources is {self.n_sources} but the "
                f"traffic spec declares {declared} sources"
            )
        if not isinstance(self.config, RunConfig):
            raise PlanError(f"{self._owner}: config must be a RunConfig")
        if self.config.keep_records:
            # per-request records would live and die inside the worker-side
            # source trees — all memory cost, no observable output; fail
            # eagerly instead of silently paying for nothing at paper scale
            raise PlanError(
                f"{self._owner}: keep_records is not supported for network "
                "plans (per-request records never leave the worker's source "
                "trees); network results are per-source totals"
            )

    @property
    def _owner(self) -> str:
        return f"network plan {self.name!r}"

    @property
    def n_nodes(self) -> int:
        """Number of network nodes (taken from the traffic spec)."""
        return self.traffic.n_nodes

    def source_ids(self) -> List[int]:
        """Return the planned source identifiers, ascending."""
        return self.traffic.source_ids()


#: The traffic fields a :class:`TrafficSweepPlan` binding may target besides
#: the per-source workload parameters (``workload.<name>``).
TRAFFIC_BIND_TARGETS = ("n_sources", "interleaving", "weights")


def _as_weight_mapping(value: object, owner: str) -> Dict[int, float]:
    """Coerce a bound ``weights`` point value into ``{source: weight}``.

    Accepts plain mappings and the frozen/thawed pair forms a point value
    takes after :func:`freeze_params` or a JSON round-trip (tuples of pairs,
    lists of two-element lists) — all of which must bind identically.
    """
    if isinstance(value, dict):
        pairs = value.items()
    elif isinstance(value, (list, tuple)):
        pairs = value
    else:
        raise PlanError(
            f"{owner}: a 'weights' binding needs a source-to-weight mapping, "
            f"got {value!r}"
        )
    try:
        return {int(source): float(weight) for source, weight in pairs}
    except (TypeError, ValueError):
        raise PlanError(
            f"{owner}: a 'weights' binding needs a source-to-weight mapping, "
            f"got {value!r}"
        ) from None


@dataclass(frozen=True)
class TrafficSweepPlan:
    """A sweep over traffic parameters, as data.

    The network twin of :class:`SweepPlan`: ``traffic`` is a
    :class:`~repro.network.traffic.TrafficSpec` *template* and ``bind`` maps
    point keys onto traffic fields —

    * ``n_sources`` — resize the source set: the bound point value becomes
      the number of sources (identifiers ``0 .. k-1``), each new source
      taking the workload (and explicit weight) of the template source at
      the same position modulo the template's source count;
    * ``interleaving`` — replace the merge policy (one of
      :data:`~repro.network.traffic.INTERLEAVINGS`);
    * ``weights`` — replace the per-source weight mapping outright;
    * ``workload.<name>`` — override parameter ``<name>`` on *every*
      source's workload spec (e.g. ``workload.exponent`` for a Zipf skew
      sweep).

    Every point is bound *at construction* (:meth:`bound_traffic`), so a
    point that resizes past ``n_nodes``, names an unknown interleaving or
    breaks a workload's universe fails eagerly, never mid-run.  Unlike
    :class:`NetworkPlan` the plan compares several ``algorithms``: all of
    them serve the same per-trial traffic (seeds derive from the trial index
    alone), so differences between rows are never confounded by traffic
    noise.  ``config.n_requests`` counts requests *per source*.
    """

    traffic: TrafficSpec
    algorithms: Tuple[AlgorithmSpec, ...]
    points: Tuple[Tuple[Tuple[str, object], ...], ...]
    bind: Tuple[Tuple[str, str], ...] = ()
    config: RunConfig = RunConfig()
    name: str = "traffic_sweep"

    def __post_init__(self) -> None:
        if not isinstance(self.traffic, TrafficSpec):
            raise PlanError(
                f"{self._owner}: traffic must be a TrafficSpec, got "
                f"{self.traffic!r}"
            )
        object.__setattr__(
            self, "algorithms", _coerce_algorithms(self.algorithms, self._owner)
        )
        points = self.points
        try:
            frozen_points = tuple(
                point if isinstance(point, tuple) else _freeze_params(dict(point))
                for point in points
            )
        except (TypeError, ValueError):
            raise PlanError(
                f"{self._owner}: points must be mappings of parameter values, "
                f"got {points!r}"
            ) from None
        if not frozen_points:
            raise PlanError(f"{self._owner}: a sweep needs at least one point")
        object.__setattr__(self, "points", frozen_points)
        bind = self.bind
        if isinstance(bind, dict):
            bind = tuple(sorted(bind.items()))
        object.__setattr__(self, "bind", tuple(tuple(pair) for pair in bind))
        for point_key, target in self.bind:
            if not isinstance(point_key, str) or not isinstance(target, str):
                raise PlanError(
                    f"{self._owner}: bind entries must map point keys to "
                    f"traffic field names, got {(point_key, target)!r}"
                )
            if target not in TRAFFIC_BIND_TARGETS and not (
                target.startswith("workload.") and len(target) > len("workload.")
            ):
                raise PlanError(
                    f"{self._owner}: bind target {target!r} is not a traffic "
                    f"field; expected one of {list(TRAFFIC_BIND_TARGETS)} or "
                    "'workload.<parameter>'"
                )
        # Cross-validate bind against points at construction, exactly like
        # SweepPlan: dangling bind keys and unbound point keys are both
        # authoring errors that must not survive eager validation.
        point_keys = {key for point in self.points for key, _value in point}
        bound_keys = {key for key, _target in self.bind}
        dangling = sorted(bound_keys - point_keys)
        if dangling:
            raise PlanError(
                f"{self._owner}: bind keys {dangling} appear in no sweep "
                f"point; point keys are {sorted(point_keys)}"
            )
        unbound = sorted(point_keys - bound_keys)
        if unbound:
            raise PlanError(
                f"{self._owner}: point keys {unbound} are not bound to any "
                "traffic field — add them to bind"
            )
        if not isinstance(self.config, RunConfig):
            raise PlanError(f"{self._owner}: config must be a RunConfig")
        if self.config.keep_records:
            raise PlanError(
                f"{self._owner}: keep_records is not supported for traffic "
                "sweeps (per-request records never leave the worker's source "
                "trees); results are per-source totals"
            )
        for point in self.point_dicts():
            self.bound_traffic(point)  # eager: every point must bind cleanly

    @property
    def _owner(self) -> str:
        return f"traffic sweep plan {self.name!r}"

    @property
    def n_nodes(self) -> int:
        """Number of network nodes (taken from the traffic template)."""
        return self.traffic.n_nodes

    def point_dicts(self) -> List[Dict[str, object]]:
        """Return the sweep points as plain dictionaries, in order."""
        return [dict(point) for point in self.points]

    def bind_dict(self) -> Dict[str, str]:
        """Return the point-key → traffic-field binding as a dict."""
        return dict(self.bind)

    def algorithm_names(self) -> List[str]:
        """Return the registry names of the planned algorithms, in order."""
        return [spec.name for spec in self.algorithms]

    def bound_traffic(self, point: Dict[str, object]) -> TrafficSpec:
        """Return the traffic spec of one sweep point (template + bindings).

        Binding order is fixed — resize first, then interleaving, then the
        explicit weight mapping (which therefore wins over resized weights),
        then the per-source workload overrides — so the result is a pure
        function of (template, point), independent of point-key order.
        """
        bind = self.bind_dict()
        template = self.traffic
        sources = list(template.sources)
        weights = template.weight_dict()
        interleaving = template.interleaving
        workload_overrides: Dict[str, object] = {}
        n_sources: Optional[int] = None
        explicit_weights: Optional[Dict[int, float]] = None
        for key, value in point.items():
            target = bind[key]
            if target == "n_sources":
                n_sources = int(value)
            elif target == "interleaving":
                interleaving = str(value)
            elif target == "weights":
                explicit_weights = _as_weight_mapping(value, self._owner)
            else:
                workload_overrides[target[len("workload."):]] = value
        if n_sources is not None:
            if n_sources <= 0:
                raise PlanError(
                    f"{self._owner}: n_sources must be positive, got {n_sources}"
                )
            template_specs = [spec for _source, spec in sources]
            template_weights = [
                weights.get(source) for source, _spec in sources
            ]
            count = len(template_specs)
            sources = [
                (index, template_specs[index % count])
                for index in range(n_sources)
            ]
            weights = {
                index: template_weights[index % count]
                for index in range(n_sources)
                if template_weights[index % count] is not None
            }
        if explicit_weights is not None:
            weights = explicit_weights
        if workload_overrides:
            rebound = []
            for source, spec in sources:
                params = spec.param_dict()
                params.update(workload_overrides)
                rebound.append(
                    (source, WorkloadSpec.create(spec.kind, seed=spec.seed, **params))
                )
            sources = rebound
        try:
            return TrafficSpec.create(
                n_nodes=template.n_nodes,
                source_workloads=dict(sources),
                interleaving=interleaving,
                weights=weights or None,
                seed=template.seed,
            )
        except WorkloadError as error:
            # plan documents fail with plan-level errors naming the point
            raise PlanError(
                f"{self._owner}: point {point!r} does not bind into a valid "
                f"traffic spec: {error}"
            ) from None


@dataclass(frozen=True)
class ExperimentPlan:
    """A named composition of sub-plans plus a result assembler.

    ``stages`` is an ordered tuple of ``(key, plan)`` pairs — each plan a
    :class:`TrialPlan`, :class:`SweepPlan`, :class:`NetworkPlan`,
    :class:`TrafficSweepPlan` or nested :class:`ExperimentPlan`.
    After all stages ran, the registered ``assembler`` (see
    :func:`repro.plans.execute.register_assembler`) combines their results
    into the experiment's output: the built-in ``"table"``/``"tables"``
    assemblers pass results through; the q1–q5 modules register the
    figure-specific ones (difference tables, wireframe grids, histograms).
    Assembler-only experiments (no stages) describe runs whose payload
    structure is bespoke — e.g. the Q4 histogram's paired payloads — through
    ``params`` and ``config`` alone.
    """

    name: str
    stages: Tuple[Tuple[str, "Plan"], ...] = ()
    assembler: str = "tables"
    params: Tuple[Tuple[str, object], ...] = ()
    config: Optional[RunConfig] = None

    def __post_init__(self) -> None:
        stages = self.stages
        if isinstance(stages, dict):
            stages = tuple(stages.items())
        try:
            stages = tuple((str(key), plan) for key, plan in stages)
        except (TypeError, ValueError):
            raise PlanError(
                f"{self._owner}: stages must be (key, plan) pairs, got {stages!r}"
            ) from None
        keys = [key for key, _ in stages]
        if len(set(keys)) != len(keys):
            raise PlanError(f"{self._owner}: duplicate stage keys in {keys}")
        for key, plan in stages:
            if not isinstance(
                plan,
                (TrialPlan, SweepPlan, NetworkPlan, TrafficSweepPlan, ExperimentPlan),
            ):
                raise PlanError(
                    f"{self._owner}: stage {key!r} is not a plan object: {plan!r}"
                )
        object.__setattr__(self, "stages", stages)
        params = self.params
        if isinstance(params, dict):
            params = _freeze_params(params)
        object.__setattr__(self, "params", tuple(params))
        if not isinstance(self.assembler, str) or not self.assembler:
            raise PlanError(f"{self._owner}: assembler must be a non-empty name")
        if self.config is not None and not isinstance(self.config, RunConfig):
            raise PlanError(f"{self._owner}: config must be a RunConfig or None")

    @property
    def _owner(self) -> str:
        return f"experiment plan {self.name!r}"

    def param_dict(self) -> Dict[str, object]:
        """Return the assembler parameters as a plain dictionary."""
        return dict(self.params)

    @classmethod
    def create(
        cls,
        name: str,
        stages: object = (),
        assembler: str = "tables",
        params: Optional[Dict[str, object]] = None,
        config: Optional[RunConfig] = None,
    ) -> "ExperimentPlan":
        """Build an experiment plan from plain mappings (frozen on entry)."""
        return cls(
            name=name,
            stages=stages,
            assembler=assembler,
            params=_freeze_params(params or {}),
            config=config,
        )


Plan = Union[TrialPlan, SweepPlan, NetworkPlan, TrafficSweepPlan, ExperimentPlan]


def plan_with_overrides(
    plan: Plan,
    n_jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
    n_trials: Optional[int] = None,
    n_requests: Optional[int] = None,
    worker_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
) -> Plan:
    """Return ``plan`` with run-shape knobs overridden throughout the tree.

    The CLI's override semantics: a flag given on the command line wins over
    whatever the plan document says, recursively — every ``RunConfig`` of
    every nested stage is replaced.  ``None`` means "keep the plan's value".
    Besides the perf knobs (``n_jobs``/``chunk_size``/``backend``, which
    never change results) the run *size* can be overridden too
    (``n_trials``/``n_requests`` — the CLI's ``--trials``/``--requests``),
    e.g. to smoke-test a paper-scale plan document at toy scale, and so can
    the resilience knobs (``worker_timeout``/``max_retries``/``cache_dir``/
    ``executor`` — the CLI's ``--max-retries``/``--cache-dir``/
    ``--executor``), which are robustness knobs only and never change
    results either.
    """
    overrides = (
        n_jobs,
        chunk_size,
        backend,
        n_trials,
        n_requests,
        worker_timeout,
        max_retries,
        cache_dir,
        executor,
    )
    if all(value is None for value in overrides):
        return plan
    if isinstance(plan, (TrialPlan, SweepPlan, NetworkPlan, TrafficSweepPlan)):
        return replace(plan, config=plan.config.with_overrides(*overrides))
    stages = tuple(
        (key, plan_with_overrides(sub, *overrides)) for key, sub in plan.stages
    )
    config = plan.config
    if config is not None:
        config = config.with_overrides(*overrides)
    return replace(plan, stages=stages, config=config)
