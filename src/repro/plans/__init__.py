"""Declarative experiment plans: specs all the way down, one ``run()``.

This package turns an experiment's entire configuration into immutable,
JSON round-trippable data:

* :class:`~repro.plans.model.RunConfig` — run shape (trials, requests, seed
  policy, ``n_jobs``, ``chunk_size``, ``backend``, record mode);
* :class:`~repro.plans.model.TrialPlan` /
  :class:`~repro.plans.model.SweepPlan` /
  :class:`~repro.plans.model.ExperimentPlan` — composable descriptions of
  what to run, validated against the algorithm and workload registries at
  construction;
* :func:`run` — the one entrypoint executing any plan through the existing
  runner/sweep machinery, bit-identically to the imperative API;
* :func:`load` / :func:`dump` (and ``loads``/``dumps``) — the JSON document
  format, plus the shipped golden plans for q1–q5
  (:func:`load_golden_plan`).

Quickstart::

    import repro
    from repro.experiments import build_q2_plan

    plan = build_q2_plan(scale="tiny")        # an ExperimentPlan (pure data)
    repro.plans.dump(plan, "q2.json")          # share it
    table = repro.run(repro.plans.load("q2.json"))   # run it anywhere

``repro.plans.execute`` (and therefore :func:`run`) is loaded lazily so the
low-level simulation modules can import the plan *model* without dragging in
the experiment layer.
"""

from __future__ import annotations

from repro.plans.io import (
    GOLDEN_PLAN_DIR,
    dump,
    dumps,
    golden_plan_names,
    load,
    load_golden_plan,
    loads,
    plan_from_dict,
    plan_to_dict,
    validate_golden_plans,
)
from repro.plans.model import (
    ExperimentPlan,
    NetworkPlan,
    Plan,
    RunConfig,
    SweepPlan,
    TrafficSweepPlan,
    TrialPlan,
    plan_with_overrides,
)

__all__ = [
    "ExperimentPlan",
    "GOLDEN_PLAN_DIR",
    "NetworkPlan",
    "Plan",
    "RunConfig",
    "StageResult",
    "SweepPlan",
    "TrafficSweepPlan",
    "TrialPlan",
    "dump",
    "dumps",
    "golden_plan_names",
    "last_run_stats",
    "load",
    "load_golden_plan",
    "loads",
    "plan_from_dict",
    "plan_to_dict",
    "plan_with_overrides",
    "register_assembler",
    "run",
    "validate_golden_plans",
]

#: Names resolved lazily from :mod:`repro.plans.execute` (PEP 562) so that
#: importing the plan model from low-level modules (``repro.sim.sweep``)
#: cannot create an import cycle through the executor.
_EXECUTE_NAMES = {
    "run",
    "last_run_stats",
    "register_assembler",
    "registered_assemblers",
    "StageResult",
}


def __getattr__(name: str):
    if name in _EXECUTE_NAMES:
        from repro.plans import execute

        return getattr(execute, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _EXECUTE_NAMES)
