"""Plan execution: one entrypoint dispatching to the existing machinery.

:func:`run` is the public face (re-exported as ``repro.run``): it takes any
plan object — :class:`~repro.plans.model.TrialPlan`,
:class:`~repro.plans.model.SweepPlan` or
:class:`~repro.plans.model.ExperimentPlan` — validates that the environment
can satisfy it (backend availability), and dispatches to the runner/sweep
infrastructure that the imperative API has always used.  Nothing about the
execution semantics is new: a plan run is bit-identical to the equivalent
hand-written ``TrialRunner``/``ParameterSweep`` code, pinned by the
golden-plan equivalence tests.

Experiment plans additionally go through an *assembler*: a registered
function that turns the executed stages into the experiment's output (the
generic ``"table"``/``"tables"`` assemblers live here; the figure-specific
ones are registered by the :mod:`repro.experiments` modules at import time
and resolved lazily, mirroring the workload-kind registry).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.exceptions import PlanError
from repro.plans.model import (
    ExperimentPlan,
    NetworkPlan,
    Plan,
    SweepPlan,
    TrafficSweepPlan,
    TrialPlan,
    plan_with_overrides,
)
from repro.resilience.context import (
    ExecutionContext,
    ResilienceStats,
    activate_context,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.store import ResultStore
from repro.sim.results import ResultTable, summarise_values
from repro.sim.runner import (
    AggregatedOutcome,
    TrafficSource,
    TrialOutcome,
    TrialPayload,
    TrialRunner,
    execute_payloads,
)
from repro.sim.sweep import ParameterSweep
from repro.workloads.spec import DEFAULT_CHUNK_SIZE, WorkloadSpec

__all__ = [
    "StageResult",
    "last_run_stats",
    "register_assembler",
    "registered_assemblers",
    "run",
]

#: Columns of the table a bare :class:`TrialPlan` produces.
TRIAL_TABLE_COLUMNS = [
    "algorithm",
    "mean_access_cost",
    "mean_adjustment_cost",
    "mean_total_cost",
    "n_trials",
]

#: Trial stride of the network base seed shipped in network payloads.
#: :class:`~repro.network.multi_source.MultiSourceNetwork` derives per-source
#: seeds as ``base + source`` (placement) and ``base + 100_000 + source``
#: (algorithm), so consecutive trials must be spaced further apart than the
#: largest such offset or trial ``i``'s source ``s + 1`` would reuse trial
#: ``i + 1``'s source-``s`` randomness and the "independent" trials would
#: correlate.  One million clears the offsets of any realistic tree
#: (``100_000 + n_nodes`` with ``n_nodes`` up to ~900k).
NETWORK_TRIAL_SEED_STRIDE = 1_000_000

#: Columns of the per-source table a :class:`NetworkPlan` produces.  The
#: ``source`` column holds node identifiers plus one final ``"total"``
#: aggregate row; costs are per-request means over the plan's trials.
NETWORK_TABLE_COLUMNS = [
    "source",
    "n_requests",
    "mean_access_cost",
    "mean_adjustment_cost",
    "mean_total_cost",
    "n_trials",
]

#: Columns of the per-source cost table shared by the live serve engine
#: (:meth:`repro.serve.engine.ServeEngine.cost_table`) and the
#: ``replay_totals`` assembler below.  Totals are exact integers (never
#: per-request means), so the live table and its replay compare bit-for-bit.
REPLAY_TABLE_COLUMNS = [
    "source",
    "n_requests",
    "total_access_cost",
    "total_adjustment_cost",
    "total_cost",
]


@dataclass
class StageResult:
    """What one executed stage hands to the enclosing assembler.

    ``result`` is the stage's public output (what :func:`run` would have
    returned for the stage's plan alone); ``table`` is that output when it is
    a :class:`~repro.sim.results.ResultTable`; ``aggregated`` carries the
    per-algorithm :class:`~repro.sim.runner.AggregatedOutcome` map for trial
    stages, so assemblers (e.g. the Q1 difference table) work from the exact
    aggregates instead of re-parsing rendered rows; ``outcomes`` carries the
    raw per-trial outcome map for trial stages, so assemblers that need
    exact integer totals (e.g. ``replay_totals``) never reconstruct them
    from floating-point means.
    """

    key: str
    plan: Plan
    result: object
    table: Optional[ResultTable] = None
    aggregated: Optional[Dict[str, AggregatedOutcome]] = None
    outcomes: Optional[Dict[str, List["TrialOutcome"]]] = None


#: Registered experiment assemblers: name -> fn(plan, stages) -> result.
_ASSEMBLERS: Dict[str, Callable[[ExperimentPlan, List[StageResult]], object]] = {}


def register_assembler(name: str):
    """Decorator registering an experiment assembler under ``name``."""

    def decorate(fn):
        _ASSEMBLERS[name] = fn
        return fn

    return decorate


def registered_assemblers() -> List[str]:
    """Return the sorted names of all registered assemblers."""
    _ensure_experiment_assemblers()
    return sorted(_ASSEMBLERS)


def _ensure_experiment_assemblers() -> None:
    """Import the experiment package once so its assemblers are registered."""
    import repro.experiments  # noqa: F401  (imports register the assemblers)


def _assembler(name: str):
    fn = _ASSEMBLERS.get(name)
    if fn is None:
        _ensure_experiment_assemblers()
        fn = _ASSEMBLERS.get(name)
    if fn is None:
        raise PlanError(
            f"unknown assembler {name!r}; registered assemblers: "
            f"{sorted(_ASSEMBLERS)}"
        )
    return fn


@register_assembler("table")
def _assemble_single_table(plan: ExperimentPlan, stages: List[StageResult]) -> object:
    """Pass through the single stage's result."""
    if len(stages) != 1:
        raise PlanError(
            f"assembler 'table' expects exactly one stage, plan {plan.name!r} "
            f"has {len(stages)}"
        )
    return stages[0].result


@register_assembler("tables")
def _assemble_tables(plan: ExperimentPlan, stages: List[StageResult]) -> object:
    """Return the stage results keyed by stage name (the q1/q4/q5 shape)."""
    return {stage.key: stage.result for stage in stages}


@register_assembler("trace_costs")
def _assemble_trace_costs(plan: ExperimentPlan, stages: List[StageResult]) -> object:
    """Merge network-stage tables into one per-source route-cost report.

    Every stage must be a :class:`~repro.plans.model.NetworkPlan`; the output
    table carries one row per (stage, source) plus each stage's ``"total"``
    aggregate row, labelled with the stage key and the stage's algorithm so
    multi-scenario experiments (e.g. the shipped ``multisource`` golden plan)
    read as one comparison.
    """
    if not stages:
        raise PlanError(
            f"assembler 'trace_costs' needs at least one network stage, "
            f"plan {plan.name!r} has none"
        )
    table = ResultTable(
        name=plan.name, columns=["scenario", "algorithm"] + NETWORK_TABLE_COLUMNS
    )
    for stage in stages:
        if not isinstance(stage.plan, NetworkPlan) or stage.table is None:
            raise PlanError(
                f"assembler 'trace_costs' expects network-plan stages, stage "
                f"{stage.key!r} of plan {plan.name!r} is {type(stage.plan).__name__}"
            )
        for row in stage.table.rows:
            table.add_row(
                scenario=stage.key,
                algorithm=stage.plan.algorithm.name,
                **row,
            )
    return table


@register_assembler("replay_totals")
def _assemble_replay_totals(plan: ExperimentPlan, stages: List[StageResult]) -> object:
    """Merge per-source replay stages into one exact-total cost table.

    The assembler of the plans :func:`repro.serve.replay.build_replay_plan`
    produces: every stage is a single-algorithm, single-trial
    :class:`~repro.plans.model.TrialPlan` replaying one source's recorded
    fixed sequence, keyed by the source name.  The output is the live
    engine's cost table, rebuilt offline: one row per source with *integer*
    totals straight from the stage's :class:`~repro.algorithms.base.RunResult`
    (never reconstructed from per-request means, which would not round-trip
    through IEEE floats), plus a ``"total"`` aggregate row.
    """
    table = ResultTable(name=plan.name, columns=list(REPLAY_TABLE_COLUMNS))
    totals = {"n_requests": 0, "access": 0, "adjustment": 0}
    for stage in stages:
        if not isinstance(stage.plan, TrialPlan) or not stage.outcomes:
            raise PlanError(
                f"assembler 'replay_totals' expects trial-plan stages with "
                f"outcomes, stage {stage.key!r} of plan {plan.name!r} is "
                f"{type(stage.plan).__name__}"
            )
        trials = [
            outcome for outcomes in stage.outcomes.values() for outcome in outcomes
        ]
        if len(trials) != 1:
            raise PlanError(
                f"assembler 'replay_totals': stage {stage.key!r} of plan "
                f"{plan.name!r} ran {len(trials)} trials, expected exactly 1"
            )
        result = trials[0].result
        table.add_row(
            source=stage.key,
            n_requests=result.n_requests,
            total_access_cost=result.total_access_cost,
            total_adjustment_cost=result.total_adjustment_cost,
            total_cost=result.total_cost,
        )
        totals["n_requests"] += result.n_requests
        totals["access"] += result.total_access_cost
        totals["adjustment"] += result.total_adjustment_cost
    table.add_row(
        source="total",
        n_requests=totals["n_requests"],
        total_access_cost=totals["access"],
        total_adjustment_cost=totals["adjustment"],
        total_cost=totals["access"] + totals["adjustment"],
    )
    return table


def _check_runnable(plan: Plan) -> None:
    """Validate environment-dependent plan choices before any payload exists."""
    if isinstance(plan, (TrialPlan, SweepPlan, NetworkPlan, TrafficSweepPlan)):
        plan.config.check_runnable()
        return
    if plan.config is not None:
        plan.config.check_runnable()
    for _key, sub in plan.stages:
        _check_runnable(sub)


def _execute_trial_plan(plan: TrialPlan, key: str = "") -> StageResult:
    runner = TrialRunner(n_nodes=plan.n_nodes, config=plan.config)
    names = plan.algorithm_names()
    algorithm_kwargs = {
        spec.name: spec.param_dict() for spec in plan.algorithms if spec.params
    }
    workload: WorkloadSpec = plan.workload

    def factory(seed: int) -> WorkloadSpec:
        return workload.with_seed(seed)

    outcomes = runner.run(names, factory, algorithm_kwargs or None)
    aggregated = TrialRunner.aggregate(outcomes)
    table = ResultTable(name=plan.name, columns=list(TRIAL_TABLE_COLUMNS))
    for name in names:
        summary = aggregated[name]
        table.add_row(
            algorithm=name,
            mean_access_cost=summary.mean_access_cost,
            mean_adjustment_cost=summary.mean_adjustment_cost,
            mean_total_cost=summary.mean_total_cost,
            n_trials=summary.n_trials,
        )
    return StageResult(
        key=key,
        plan=plan,
        result=table,
        table=table,
        aggregated=aggregated,
        outcomes=outcomes,
    )


def _execute_sweep_plan(plan: SweepPlan, key: str = "") -> StageResult:
    config = plan.config
    bind = plan.bind_dict()
    template = plan.workload
    base_params = template.param_dict()

    def factory(point: Dict[str, object], seed: int) -> WorkloadSpec:
        params = dict(base_params)
        for point_key, value in point.items():
            target = bind.get(point_key)
            if target is not None:
                params[target] = value
        return WorkloadSpec.create(template.kind, seed=seed, **params)

    algorithm_kwargs = {
        spec.name: spec.param_dict() for spec in plan.algorithms if spec.params
    }
    sweep = ParameterSweep(
        points=plan.point_dicts(),
        workload_factory=factory,
        algorithms=plan.algorithm_names(),
        n_nodes=plan.n_nodes,
        algorithm_kwargs=algorithm_kwargs or None,
        config=config,
    )
    table = sweep.run(table_name=plan.name)
    return StageResult(key=key, plan=plan, result=table, table=table)


def build_network_payloads(plan: NetworkPlan) -> List[TrialPayload]:
    """Build one spec-only payload per trial of a network plan.

    The network counterpart of :meth:`TrialRunner.build_payloads`: trial
    ``i`` ships the traffic template re-seeded with ``base_seed + i``
    (stamping the interleaving and every per-source workload seed, see
    :meth:`~repro.network.traffic.TrafficSpec.with_seed`) and the network
    base seed ``base_seed + 10_000 + i * NETWORK_TRIAL_SEED_STRIDE`` in the
    payload's ``placement_seed`` slot — a trial-index-only derivation like
    the single-source runners', with the stride keeping the per-source seed
    windows of different trials disjoint.  Payloads are therefore
    independent of where and in which order they execute, and nothing is
    generated here: the parent process never holds a trace.
    """
    config = plan.config
    chunk = DEFAULT_CHUNK_SIZE if config.chunk_size is None else config.chunk_size
    payloads: List[TrialPayload] = []
    for trial in range(config.n_trials):
        payloads.append(
            TrialPayload(
                algorithm=plan.algorithm,
                source=TrafficSource(
                    traffic=plan.traffic.with_seed(config.base_seed + trial),
                    requests_per_source=config.n_requests,
                    chunk_size=chunk,
                ),
                n_nodes=plan.traffic.n_nodes,
                placement_seed=config.base_seed
                + 10_000
                + trial * NETWORK_TRIAL_SEED_STRIDE,
                algorithm_seed=None,
                keep_records=config.keep_records,
                trial=trial,
                backend=config.backend,
            )
        )
    return payloads


def _execute_network_plan(plan: NetworkPlan, key: str = "") -> StageResult:
    payloads = build_network_payloads(plan)
    config = plan.config
    results = execute_payloads(
        payloads,
        config.n_jobs,
        worker_timeout=config.worker_timeout,
        retry=RetryPolicy.for_config(config),
        cache_dir=config.cache_dir,
        executor=config.executor,
    )
    table = ResultTable(name=plan.name, columns=list(NETWORK_TABLE_COLUMNS))
    n_trials = len(results)
    per_trial_columns = [result.metadata["per_source"] for result in results]
    sources = per_trial_columns[0]["source"] if per_trial_columns else []
    for index, source in enumerate(sources):
        requests = int(per_trial_columns[0]["n_requests"][index])
        means = {
            column: summarise_values(
                [
                    trial_columns[column][index] / max(1, trial_columns["n_requests"][index])
                    for trial_columns in per_trial_columns
                ]
            )["mean"]
            for column in ("total_access_cost", "total_adjustment_cost", "total_cost")
        }
        table.add_row(
            source=int(source),
            n_requests=requests,
            mean_access_cost=means["total_access_cost"],
            mean_adjustment_cost=means["total_adjustment_cost"],
            mean_total_cost=means["total_cost"],
            n_trials=n_trials,
        )
    aggregate = {
        field: summarise_values(
            [
                getattr(result, f"average_{field}_cost")
                for result in results
            ]
        )["mean"]
        for field in ("access", "adjustment", "total")
    }
    table.add_row(
        source="total",
        n_requests=results[0].n_requests if results else 0,
        mean_access_cost=aggregate["access"],
        mean_adjustment_cost=aggregate["adjustment"],
        mean_total_cost=aggregate["total"],
        n_trials=n_trials,
    )
    return StageResult(key=key, plan=plan, result=table, table=table)


def build_traffic_sweep_payloads(plan: TrafficSweepPlan) -> List[TrialPayload]:
    """Build the flat payload pool of a traffic sweep, in canonical order.

    Order is (point, algorithm, trial) — point-major so the table below can
    regroup by position.  Every payload of a trial ships the *same* re-seeded
    traffic (seeds derive from the trial index alone, exactly like
    :func:`build_network_payloads`), so all points and algorithms fan out
    through one :func:`~repro.sim.runner.execute_payloads` call and the
    comparison across algorithms is never confounded by traffic noise.
    """
    config = plan.config
    chunk = DEFAULT_CHUNK_SIZE if config.chunk_size is None else config.chunk_size
    payloads: List[TrialPayload] = []
    for point_index, point in enumerate(plan.point_dicts()):
        bound = plan.bound_traffic(point)
        for algorithm in plan.algorithms:
            for trial in range(config.n_trials):
                payloads.append(
                    TrialPayload(
                        algorithm=algorithm,
                        source=TrafficSource(
                            traffic=bound.with_seed(config.base_seed + trial),
                            requests_per_source=config.n_requests,
                            chunk_size=chunk,
                        ),
                        n_nodes=bound.n_nodes,
                        placement_seed=config.base_seed
                        + 10_000
                        + trial * NETWORK_TRIAL_SEED_STRIDE,
                        algorithm_seed=None,
                        keep_records=config.keep_records,
                        trial=trial,
                        metadata={"point": point_index},
                        backend=config.backend,
                    )
                )
    return payloads


def _execute_traffic_sweep_plan(plan: TrafficSweepPlan, key: str = "") -> StageResult:
    payloads = build_traffic_sweep_payloads(plan)
    config = plan.config
    results = execute_payloads(
        payloads,
        config.n_jobs,
        worker_timeout=config.worker_timeout,
        retry=RetryPolicy.for_config(config),
        cache_dir=config.cache_dir,
        executor=config.executor,
    )
    points = plan.point_dicts()
    point_columns = sorted({key for point in points for key in point})
    # a point may legitimately bind a key named "n_sources"; the fixed
    # column then reports the same bound value, so the point key wins
    fixed_columns = [
        column
        for column in (
            "algorithm",
            "n_sources",
            "mean_access_cost",
            "mean_adjustment_cost",
            "mean_total_cost",
            "n_trials",
        )
        if column not in point_columns
    ]
    table = ResultTable(name=plan.name, columns=point_columns + fixed_columns)
    names = plan.algorithm_names()
    n_trials = config.n_trials
    cursor = 0
    for point in points:
        bound = plan.bound_traffic(point)
        for name in names:
            trials = results[cursor : cursor + n_trials]
            cursor += n_trials
            means = {
                field: summarise_values(
                    [getattr(result, f"average_{field}_cost") for result in trials]
                )["mean"]
                for field in ("access", "adjustment", "total")
            }
            row = {column: point.get(column) for column in point_columns}
            row.update(
                algorithm=name,
                n_sources=len(bound.sources),
                mean_access_cost=means["access"],
                mean_adjustment_cost=means["adjustment"],
                mean_total_cost=means["total"],
                n_trials=n_trials,
            )
            table.add_row(**{column: row[column] for column in table.columns})
    return StageResult(key=key, plan=plan, result=table, table=table)


@register_assembler("traffic_sweep")
def _assemble_traffic_sweep(plan: ExperimentPlan, stages: List[StageResult]) -> object:
    """Merge traffic-sweep stage tables into one labelled comparison.

    The sweep twin of ``trace_costs``: every stage must be a
    :class:`~repro.plans.model.TrafficSweepPlan` and all stages must sweep
    the same point keys; the output carries one row per (stage, point,
    algorithm), labelled with the stage key.
    """
    if not stages:
        raise PlanError(
            f"assembler 'traffic_sweep' needs at least one traffic-sweep "
            f"stage, plan {plan.name!r} has none"
        )
    columns = None
    table = None
    for stage in stages:
        if not isinstance(stage.plan, TrafficSweepPlan) or stage.table is None:
            raise PlanError(
                f"assembler 'traffic_sweep' expects traffic-sweep stages, "
                f"stage {stage.key!r} of plan {plan.name!r} is "
                f"{type(stage.plan).__name__}"
            )
        if columns is None:
            columns = list(stage.table.columns)
            table = ResultTable(name=plan.name, columns=["scenario"] + columns)
        elif list(stage.table.columns) != columns:
            raise PlanError(
                f"assembler 'traffic_sweep': stage {stage.key!r} sweeps "
                f"columns {stage.table.columns}, expected {columns}"
            )
        for row in stage.table.rows:
            table.add_row(scenario=stage.key, **row)
    return table


def _execute_experiment_plan(plan: ExperimentPlan, key: str = "") -> StageResult:
    stages = [_execute(sub, stage_key) for stage_key, sub in plan.stages]
    result = _assembler(plan.assembler)(plan, stages)
    table = result if isinstance(result, ResultTable) else None
    return StageResult(key=key, plan=plan, result=result, table=table)


def _execute(plan: Plan, key: str = "") -> StageResult:
    if isinstance(plan, TrialPlan):
        return _execute_trial_plan(plan, key)
    if isinstance(plan, SweepPlan):
        return _execute_sweep_plan(plan, key)
    if isinstance(plan, NetworkPlan):
        return _execute_network_plan(plan, key)
    if isinstance(plan, TrafficSweepPlan):
        return _execute_traffic_sweep_plan(plan, key)
    if isinstance(plan, ExperimentPlan):
        return _execute_experiment_plan(plan, key)
    raise PlanError(f"not a plan object: {plan!r}")


#: Stats of the most recent :func:`run` call in this process (see
#: :func:`last_run_stats`).
_last_stats: Optional[ResilienceStats] = None


def last_run_stats() -> Optional[ResilienceStats]:
    """Return the resilience counters of the most recent :func:`run` call.

    ``None`` until the first plan run of the process.  The counters —
    payloads executed, cache hits, checkpoint writes, retries, pool rebuilds,
    degradation — are what resume tests and campaign logs introspect:
    "re-running with ``resume=True`` executed only the missing trials" is an
    assertion on ``last_run_stats().executed``.
    """
    return _last_stats


def _plan_uses_cache(plan: Plan) -> bool:
    """True when any stage config of ``plan`` names a ``cache_dir``."""
    if isinstance(plan, (TrialPlan, SweepPlan, NetworkPlan, TrafficSweepPlan)):
        return plan.config.cache_dir is not None
    if plan.config is not None and plan.config.cache_dir is not None:
        return True
    return any(_plan_uses_cache(sub) for _key, sub in plan.stages)


def run(
    plan: Plan,
    *,
    cache: Optional[Union[ResultStore, str, Path]] = None,
    resume: bool = False,
    executor: Optional[str] = None,
) -> object:
    """Execute ``plan`` and return its result.

    The one public entrypoint of the declarative layer (``repro.run``):

    * a :class:`TrialPlan` returns a :class:`~repro.sim.results.ResultTable`
      with one row per algorithm (mean per-request costs over the trials);
    * a :class:`SweepPlan` returns the sweep's table (one row per point ×
      algorithm), exactly as :class:`~repro.sim.sweep.ParameterSweep` built
      it;
    * a :class:`NetworkPlan` returns a per-source route-cost table (one row
      per source plus a ``"total"`` aggregate row, per-request means over
      the trials), streamed through spec-shipped multi-source payloads;
    * a :class:`TrafficSweepPlan` returns a table with one row per point ×
      algorithm (aggregate per-request means over the trials), every point's
      traffic bound from the template at payload-build time;
    * an :class:`ExperimentPlan` returns whatever its assembler produces —
      a table, a ``{stage key: result}`` dict (q1/q4/q5), or the Q4
      ``(histogram, summary)`` pair.

    ``cache`` attaches a checkpoint store to the whole run — a
    :class:`~repro.resilience.ResultStore` or a directory path — overriding
    any per-stage ``config.cache_dir``; when a store is active every
    completed trial is persisted as it finishes (crash-safe, atomic).  With
    ``resume=True``, trials whose verified entry already exists are served
    from the store instead of re-executed; results are bit-identical either
    way because every trial is a pure function of its payload content.
    Corrupted or truncated entries are detected, logged and re-run — never
    fatal.  :func:`last_run_stats` exposes the counters afterwards.

    ``executor`` dispatches every stage's payloads to a remote worker fleet
    (``"tcp://host:port[,host:port...]"``; see :mod:`repro.dist`) instead of
    the local process pool, overriding any per-stage ``config.executor``.
    Results are byte-identical to local execution — the fleet degrades to
    the local pool, then to in-process serial, if workers are lost.

    Environment checks (backend availability) run first, so an unsatisfiable
    plan fails with the dedicated error before anything is served.
    """
    global _last_stats
    if executor is not None:
        plan = plan_with_overrides(plan, executor=executor)
    _check_runnable(plan)
    store: Optional[ResultStore] = None
    if cache is not None:
        store = cache if isinstance(cache, ResultStore) else ResultStore(cache)
    if resume and store is None and not _plan_uses_cache(plan):
        raise PlanError(
            "resume=True needs a checkpoint store: pass cache=... or set "
            "cache_dir on the plan's RunConfig"
        )
    context = ExecutionContext(store=store, resume=resume)
    with activate_context(context):
        result = _execute(plan).result
    _last_stats = context.stats
    return result
