"""Wire protocol of the distributed executor: frames, codecs, addresses.

The protocol is deliberately minimal — length-prefixed JSON frames over a
plain TCP stream — because everything that crosses the wire is already a
spec with a canonical dictionary form: :class:`~repro.algorithms.registry.
AlgorithmSpec`, :class:`~repro.workloads.spec.WorkloadSpec`,
:class:`~repro.network.traffic.TrafficSpec`, :class:`~repro.workloads.
adversarial.AdversarySpec`, :class:`~repro.resilience.FaultSpec` and the
:class:`~repro.algorithms.base.RunResult` codec of the checkpoint store.
A payload therefore serialises in bytes, not megabytes, and a worker on any
host rebuilds exactly the objects the parent would have built.

Frame format: an 8-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Every frame is one message object with a ``"type"``
key; the conversation is strictly coordinator-driven:

================  =========================  =================================
message           direction                  meaning
================  =========================  =================================
``hello``         coordinator → worker       protocol handshake (version)
``welcome``       worker → coordinator       handshake reply (version, pid)
``lease``         coordinator → worker       one payload, leased until deadline
``heartbeat``     worker → coordinator       still computing; renew the lease
``result``        worker → coordinator       verified completion (key + result)
``error``         worker → coordinator       execution raised (retryable)
``shutdown``      coordinator → worker       end the session politely
================  =========================  =================================

Lease semantics live entirely on the coordinator: the worker just promises
to keep heartbeating while it computes.  Any gap longer than the lease
timeout — worker crash, hang, network partition — expires the lease and the
payload is requeued for another worker; a late ``result`` for an expired
lease is resolved idempotently by content key (first verified completion
wins, duplicates are dropped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlencode, urlsplit, urlunsplit

from repro.algorithms.registry import AlgorithmSpec
from repro.dist.framing import (  # noqa: F401 - shared-framing re-exports
    MAX_FRAME as _MAX_FRAME,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.exceptions import ExperimentError
from repro.network.traffic import TrafficSpec
from repro.resilience.faults import FaultSpec
from repro.sim.runner import (
    AdversarySource,
    SequenceSource,
    SpecSource,
    TrafficSource,
    TrialPayload,
)
from repro.workloads.adversarial import AdversarySpec
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "ExecutorSpec",
    "ProtocolError",
    "check_executor",
    "compose_executor_address",
    "payload_from_dict",
    "payload_to_dict",
    "recv_frame",
    "send_frame",
]

#: Version stamped into the handshake; mismatched peers refuse the session.
PROTOCOL_VERSION = 1

#: Seconds a lease stays valid without a heartbeat before it expires.
DEFAULT_LEASE_TIMEOUT = 30.0

#: Seconds between worker heartbeats while a payload is computing.  Kept a
#: small fraction of the lease timeout so one dropped heartbeat never
#: expires a healthy lease.
DEFAULT_HEARTBEAT_INTERVAL = 1.0

# Framing (length prefix, codec, cap, ProtocolError) lives in
# repro.dist.framing, shared with the live-serve daemon; the names above are
# re-exported here so existing imports keep working.


# ----------------------------------------------------------- payload codec

_SOURCE_CODECS = {
    "spec": (
        SpecSource,
        lambda s: {
            "spec": s.spec.to_dict(),
            "n_requests": s.n_requests,
            "chunk_size": s.chunk_size,
            "shared": s.shared,
        },
        lambda d: SpecSource(
            spec=WorkloadSpec.from_dict(d["spec"]),
            n_requests=int(d["n_requests"]),
            chunk_size=int(d["chunk_size"]),
            shared=bool(d["shared"]),
        ),
    ),
    "sequence": (
        SequenceSource,
        lambda s: {"sequence": list(s.sequence)},
        lambda d: SequenceSource(sequence=tuple(int(x) for x in d["sequence"])),
    ),
    "traffic": (
        TrafficSource,
        lambda s: {
            "traffic": s.traffic.to_dict(),
            "requests_per_source": s.requests_per_source,
            "chunk_size": s.chunk_size,
        },
        lambda d: TrafficSource(
            traffic=TrafficSpec.from_dict(d["traffic"]),
            requests_per_source=int(d["requests_per_source"]),
            chunk_size=int(d["chunk_size"]),
        ),
    ),
    "adversary": (
        AdversarySource,
        lambda s: {"adversary": s.adversary.to_dict(), "n_requests": s.n_requests},
        lambda d: AdversarySource(
            adversary=AdversarySpec.from_dict(d["adversary"]),
            n_requests=int(d["n_requests"]),
        ),
    ),
}


def payload_to_dict(payload: TrialPayload) -> Dict[str, object]:
    """JSON-friendly form of a :class:`~repro.sim.runner.TrialPayload`.

    Specs all the way down: every half of the payload already has a
    canonical dictionary form, so the document round-trips bit-exactly
    through :func:`payload_from_dict` (pinned by the protocol tests).
    """
    for kind, (cls, encode, _decode) in _SOURCE_CODECS.items():
        if isinstance(payload.source, cls):
            source_doc: Dict[str, object] = {"type": kind, **encode(payload.source)}
            break
    else:
        raise ProtocolError(f"unknown workload source type: {payload.source!r}")
    return {
        "algorithm": payload.algorithm.to_dict(),
        "source": source_doc,
        "n_nodes": payload.n_nodes,
        "placement_seed": payload.placement_seed,
        "algorithm_seed": payload.algorithm_seed,
        "keep_records": payload.keep_records,
        "trial": payload.trial,
        "metadata": payload.metadata,
        "backend": payload.backend,
        "fault": None if payload.fault is None else payload.fault.to_dict(),
    }


def payload_from_dict(data: Dict[str, object]) -> TrialPayload:
    """Rebuild a payload from :func:`payload_to_dict` output."""
    if not isinstance(data, dict):
        raise ProtocolError(f"not a payload document: {data!r}")
    source_doc = data.get("source")
    if not isinstance(source_doc, dict) or "type" not in source_doc:
        raise ProtocolError(f"payload document has no workload source: {data!r}")
    codec = _SOURCE_CODECS.get(source_doc["type"])
    if codec is None:
        raise ProtocolError(f"unknown workload source kind {source_doc['type']!r}")
    fault = data.get("fault")
    return TrialPayload(
        algorithm=AlgorithmSpec.from_dict(data["algorithm"]),
        source=codec[2](source_doc),
        n_nodes=int(data["n_nodes"]),
        placement_seed=None
        if data.get("placement_seed") is None
        else int(data["placement_seed"]),
        algorithm_seed=None
        if data.get("algorithm_seed") is None
        else int(data["algorithm_seed"]),
        keep_records=bool(data["keep_records"]),
        trial=int(data["trial"]),
        metadata=dict(data.get("metadata") or {}),
        backend=data.get("backend"),
        fault=None if fault is None else FaultSpec.from_dict(fault),
    )


# ------------------------------------------------------- executor addresses


@dataclass(frozen=True)
class ExecutorSpec:
    """Parsed form of an executor address string.

    The string format — carried verbatim in ``RunConfig.executor`` so plans
    stay JSON round-trippable — is::

        tcp://HOST:PORT[,HOST:PORT...][?lease=SECONDS&heartbeat=SECONDS]

    ``workers`` lists the daemon addresses the coordinator will connect to;
    ``lease_timeout`` is how long a lease survives without a heartbeat;
    ``heartbeat_interval`` is the cadence the coordinator asks workers to
    heartbeat at (shipped inside each ``lease`` message, so the fleet needs
    no configuration of its own).
    """

    workers: Tuple[Tuple[str, int], ...]
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL

    def __post_init__(self) -> None:
        if not self.workers:
            raise ExperimentError("executor address lists no workers")
        if not self.lease_timeout > 0:
            raise ExperimentError(
                f"lease timeout must be positive, got {self.lease_timeout!r}"
            )
        if not self.heartbeat_interval > 0:
            raise ExperimentError(
                f"heartbeat interval must be positive, got "
                f"{self.heartbeat_interval!r}"
            )

    @classmethod
    def parse(cls, address: str) -> "ExecutorSpec":
        """Parse an executor address string, validating scheme and ports."""
        if not isinstance(address, str) or not address:
            raise ExperimentError(f"not an executor address: {address!r}")
        split = urlsplit(address)
        if split.scheme != "tcp":
            raise ExperimentError(
                f"unsupported executor scheme {split.scheme!r} in {address!r}; "
                "only 'tcp://host:port[,host:port...]' is supported"
            )
        workers = []
        for entry in (split.netloc or "").split(","):
            host, _, port = entry.rpartition(":")
            if not host or not port.isdigit():
                raise ExperimentError(
                    f"bad worker address {entry!r} in {address!r}; expected "
                    "HOST:PORT"
                )
            workers.append((host, int(port)))
        options = parse_qs(split.query)
        unknown = sorted(set(options) - {"lease", "heartbeat"})
        if unknown:
            raise ExperimentError(
                f"unknown executor options {unknown} in {address!r}; "
                "supported: lease, heartbeat"
            )

        def last_float(name: str, default: float) -> float:
            values = options.get(name)
            if not values:
                return default
            try:
                return float(values[-1])
            except ValueError:
                raise ExperimentError(
                    f"executor option {name}={values[-1]!r} is not a number"
                ) from None

        return cls(
            workers=tuple(workers),
            lease_timeout=last_float("lease", DEFAULT_LEASE_TIMEOUT),
            heartbeat_interval=last_float("heartbeat", DEFAULT_HEARTBEAT_INTERVAL),
        )


def compose_executor_address(
    address: Optional[str],
    lease: Optional[float] = None,
    heartbeat: Optional[float] = None,
) -> Optional[str]:
    """Fold first-class ``--lease``/``--heartbeat`` values into an address.

    The CLI exposes the executor query parameters as real flags; this folds
    them back into the canonical query-string form (flag wins over any value
    already in the query string) so the composed address stays a plain
    string in ``RunConfig.executor`` and plans stay JSON round-trippable.
    Validation errors name the offending field.
    """
    if lease is None and heartbeat is None:
        return address
    if address is None:
        flags = [
            f"--{name}"
            for name, value in (("lease", lease), ("heartbeat", heartbeat))
            if value is not None
        ]
        raise ExperimentError(
            f"{'/'.join(flags)} configure the remote executor and need "
            "--executor tcp://HOST:PORT[,...] to apply to"
        )
    for name, value in (("lease", lease), ("heartbeat", heartbeat)):
        if value is not None and not value > 0:
            raise ExperimentError(
                f"executor option {name}={value!r} must be a positive number "
                "of seconds"
            )
    split = urlsplit(address)
    options = {
        name: values[-1] for name, values in parse_qs(split.query).items()
    }
    if lease is not None:
        options["lease"] = repr(float(lease))
    if heartbeat is not None:
        options["heartbeat"] = repr(float(heartbeat))
    composed = urlunsplit(
        (split.scheme, split.netloc, split.path, urlencode(options), "")
    )
    ExecutorSpec.parse(composed)
    return composed


def check_executor(address: Optional[str]) -> Optional[str]:
    """Eagerly validate an executor address (``None`` passes through).

    Plan documents are validated at construction, possibly on a machine that
    cannot reach the fleet — so only the address format is checked, never
    connectivity (exactly like ``check_n_jobs`` never checks the CPU count).
    """
    if address is not None:
        ExecutorSpec.parse(address)
    return address
