"""Lease-based coordinator: dispatch payloads to worker daemons, survive loss.

:class:`DistributedExecutor` is the scheduling half of ``repro.run(plan,
executor="tcp://...")``.  It owns no execution semantics of its own — every
result byte is produced by the same trial body that serial runs use — so its
entire job is *placement under failure*:

* **leases** — each pending payload is leased to exactly one worker with a
  deadline; any frame from that worker (heartbeat or result) renews it.  A
  deadline passing with no frame — worker crash, hang, network partition —
  expires the lease: the connection is dropped, the worker leaves the fleet
  and the payload is requeued for another worker.
* **verification** — a ``result`` frame is accepted only if the worker's
  claimed content key equals :func:`~repro.resilience.store.payload_key`
  recomputed from the coordinator's own copy of the payload, and the result
  document round-trips through the checkpoint-store codec.  Duplicate
  completions (lease races) resolve idempotently by key: the first verified
  result wins, later ones are counted and dropped.
* **retries** — a worker-reported execution error requeues the payload under
  the run's :class:`~repro.resilience.RetryPolicy` (seeded-jitter backoff);
  exhausting the budget fails the run with the worker's error.
* **degradation** — payloads still unfinished when the whole fleet is gone
  fall back through :func:`repro.sim.parallel.map_ordered`: local process
  pool first, in-process serial as the always-correct last resort.  Results
  are pure functions of payload content, so every rung of the ladder is
  byte-identical.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
import warnings
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.algorithms.base import RunResult
from repro.dist.protocol import (
    PROTOCOL_VERSION,
    ExecutorSpec,
    ProtocolError,
    payload_to_dict,
    recv_frame,
    send_frame,
)
from repro.exceptions import ExperimentError
from repro.resilience.retry import RetryPolicy
from repro.resilience.store import payload_key, result_from_dict
from repro.sim.parallel import map_ordered
from repro.sim.runner import TrialPayload, _execute_trial
from repro.telemetry.registry import MetricsRegistry, default_registry
from repro.telemetry.trace import Tracer, default_tracer, span_id

__all__ = ["DistributedExecutor", "run_distributed"]

logger = logging.getLogger("repro.dist")

#: Seconds allowed for the TCP connect + handshake of one worker.
_CONNECT_TIMEOUT = 5.0

#: Granularity of the coordinator's receive loop: small enough to notice an
#: expired deadline promptly, without busy-waiting.
_POLL_TIMEOUT = 0.25


def _count(stats: Optional[object], name: str, amount: int = 1) -> None:
    """Bump a duck-typed counter (``ResilienceStats`` or anything like it)."""
    if stats is not None:
        setattr(stats, name, getattr(stats, name) + amount)


class DistributedExecutor:
    """One fan-out pass over a remote worker fleet.

    The executor is single-use: :meth:`run` leases the given payloads across
    the fleet and returns ``(results, leftover)`` where ``results`` is a
    payload-ordered list with ``None`` holes for anything the fleet did not
    finish and ``leftover`` lists those unfinished indices — the caller
    (:func:`run_distributed`) degrades them to local execution.
    """

    def __init__(
        self,
        spec: ExecutorSpec,
        *,
        retry: Optional[RetryPolicy] = None,
        stats: Optional[object] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.spec = spec
        self.policy = RetryPolicy() if retry is None else retry
        self.stats = stats
        self._lock = threading.Lock()
        self._queue: deque = deque()
        self._attempts: Dict[int, int] = {}
        self._results: List[Optional[RunResult]] = []
        self._finished: List[bool] = []
        self._keys: List[str] = []
        self._payloads: Sequence[TrialPayload] = ()
        self._on_result: Optional[Callable[[int, RunResult], None]] = None
        self._failure: Optional[BaseException] = None
        self._abort = threading.Event()
        self._lease_counter = 0
        self._enqueued: Dict[int, float] = {}
        self.metrics_registry = registry if registry is not None else default_registry()
        self.tracer = tracer if tracer is not None else default_tracer()
        reg = self.metrics_registry
        self._m_leases = reg.counter(
            "repro_dist_leases_total", "Leases granted to workers."
        )
        self._m_renewals = reg.counter(
            "repro_dist_lease_renewals_total",
            "Lease deadline renewals (any frame received on an active lease).",
        )
        self._m_expiries = reg.counter(
            "repro_dist_lease_expiries_total",
            "Leases that expired without a frame before the deadline.",
        )
        self._m_requeues = reg.counter(
            "repro_dist_requeues_total",
            "Payloads requeued after an expiry, error retry, or lost worker.",
        )
        self._m_duplicates = reg.counter(
            "repro_dist_duplicate_drops_total",
            "Duplicate remote completions dropped idempotently.",
        )
        self._m_in_flight = reg.gauge(
            "repro_dist_in_flight",
            "Leases currently held, per worker.",
            labels=("worker",),
        )
        self._m_heartbeat_rtt = reg.histogram(
            "repro_dist_heartbeat_rtt_seconds",
            "Gap between frames on an active lease, as seen by the coordinator.",
        )
        self._m_queue_wait = reg.histogram(
            "repro_dist_queue_wait_seconds",
            "Time a payload waits in the dispatch queue before a lease grant.",
        )

    # ------------------------------------------------------------ dispatch

    def run(
        self,
        payloads: Sequence[TrialPayload],
        on_result: Optional[Callable[[int, RunResult], None]] = None,
    ) -> Tuple[List[Optional[RunResult]], List[int]]:
        """Lease every payload across the fleet; return results + leftovers."""
        self._payloads = payloads
        self._results = [None] * len(payloads)
        self._finished = [False] * len(payloads)
        self._keys = [payload_key(payload) for payload in payloads]
        self._queue = deque(range(len(payloads)))
        now = time.perf_counter()
        self._enqueued = {index: now for index in range(len(payloads))}
        self._attempts = {}
        self._on_result = on_result
        if not payloads:
            return self._results, []
        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(host, port),
                name=f"repro-dist-{host}:{port}",
                daemon=True,
            )
            for host, port in self.spec.workers
        ]
        for thread in threads:
            thread.start()
        try:
            for thread in threads:
                while thread.is_alive():
                    thread.join(timeout=0.5)
        except (KeyboardInterrupt, SystemExit):
            self._abort.set()
            for thread in threads:
                thread.join(timeout=5.0)
            raise
        if self._failure is not None:
            raise self._failure
        leftover = [index for index, ok in enumerate(self._finished) if not ok]
        return self._results, leftover

    def _next_index(self) -> Optional[int]:
        with self._lock:
            if self._queue:
                return self._queue.popleft()
        return None

    def _all_done(self) -> bool:
        with self._lock:
            return all(self._finished)

    def _requeue(self, index: int) -> None:
        with self._lock:
            self._queue.append(index)
            self._enqueued[index] = time.perf_counter()
        self._m_requeues.inc()

    def _record(self, index: int, lease_id: int, message: dict) -> bool:
        """Verify and record one ``result`` frame; False if dropped.

        Acceptance requires the worker's claimed content key to equal the
        coordinator-side recomputation for that payload — a cheap end-to-end
        check that the worker rebuilt (and ran) exactly what it was leased.
        """
        if message.get("key") != self._keys[index]:
            raise ProtocolError(
                f"worker returned content key {message.get('key')!r} for "
                f"payload {index}, expected {self._keys[index]!r} — refusing "
                "the result"
            )
        result = result_from_dict(message.get("result"))
        with self._lock:
            if self._finished[index]:
                _count(self.stats, "duplicate_results")
                self._m_duplicates.inc()
                logger.info(
                    "dist: duplicate completion for payload %d (lease %d) "
                    "dropped idempotently",
                    index,
                    lease_id,
                )
                return False
            self._results[index] = result
            self._finished[index] = True
            _count(self.stats, "executed")
            _count(self.stats, "remote_executed")
            hook = self._on_result
        if hook is not None:
            hook(index, result)
        return True

    # -------------------------------------------------------- worker loop

    def _worker_loop(self, host: str, port: int) -> None:
        """One fleet member: lease, await frames, renew or expire."""
        label = f"{host}:{port}"
        try:
            connection = socket.create_connection(
                (host, port), timeout=_CONNECT_TIMEOUT
            )
        except OSError as error:
            logger.warning("dist: worker %s unreachable (%s)", label, error)
            _count(self.stats, "workers_lost")
            return
        index: Optional[int] = None
        try:
            send_frame(connection, {"type": "hello", "protocol": PROTOCOL_VERSION})
            connection.settimeout(_CONNECT_TIMEOUT)
            welcome = recv_frame(connection)
            if (
                welcome.get("type") != "welcome"
                or welcome.get("protocol") != PROTOCOL_VERSION
            ):
                raise ProtocolError(f"bad handshake from worker {label}: {welcome!r}")
            connection.settimeout(_POLL_TIMEOUT)
            while not self._abort.is_set() and self._failure is None:
                index = self._next_index()
                if index is None:
                    if self._all_done():
                        self._shutdown(connection)
                        return
                    # the queue is empty but a peer still holds a lease: its
                    # expiry may requeue the payload, so idle — don't retire
                    time.sleep(_POLL_TIMEOUT)
                    continue
                if not self._serve_lease(connection, label, index):
                    return  # lease expired or link broke: _serve_lease requeued
                index = None
        except (ConnectionError, socket.timeout, OSError, ProtocolError) as error:
            logger.warning("dist: worker %s lost (%s)", label, error)
            _count(self.stats, "workers_lost")
            if index is not None and not self._finished[index]:
                self._requeue(index)
        finally:
            try:
                connection.close()
            except OSError:
                pass

    def _serve_lease(self, connection: socket.socket, label: str, index: int) -> bool:
        """Lease payload ``index`` to this worker; True to keep the worker.

        Returns ``False`` when the worker must leave the fleet (expired
        lease); connection-level failures propagate to :meth:`_worker_loop`,
        which requeues and retires the worker the same way.
        """
        with self._lock:
            self._lease_counter += 1
            lease_id = self._lease_counter
            enqueued_at = self._enqueued.pop(index, None)
        granted = time.perf_counter()
        granted_wall = time.time()
        if enqueued_at is not None:
            self._m_queue_wait.observe(granted - enqueued_at)
        self._m_leases.inc()
        self._m_in_flight.set(1, worker=label)
        try:
            send_frame(
                connection,
                {
                    "type": "lease",
                    "lease_id": lease_id,
                    "heartbeat": self.spec.heartbeat_interval,
                    "payload": payload_to_dict(self._payloads[index]),
                },
            )
            deadline = time.monotonic() + self.spec.lease_timeout
            last_frame = time.perf_counter()
            while not self._abort.is_set():
                try:
                    message = recv_frame(connection)
                except socket.timeout:
                    if time.monotonic() > deadline:
                        logger.warning(
                            "dist: lease %d on worker %s expired (payload %d); "
                            "requeueing and dropping the worker",
                            lease_id,
                            label,
                            index,
                        )
                        _count(self.stats, "lease_expiries")
                        _count(self.stats, "workers_lost")
                        self._m_expiries.inc()
                        self._requeue(index)
                        return False
                    continue
                deadline = time.monotonic() + self.spec.lease_timeout
                now = time.perf_counter()
                self._m_heartbeat_rtt.observe(now - last_frame)
                last_frame = now
                self._m_renewals.inc()
                kind = message.get("type")
                if kind == "heartbeat":
                    continue
                if kind == "result":
                    if self._record(index, lease_id, message):
                        duration = time.perf_counter() - granted
                        self.tracer.record(
                            "dist.lease",
                            span_id("payload", self._keys[index]),
                            start=granted_wall,
                            duration=duration,
                            lease_id=lease_id,
                            worker=label,
                            payload=index,
                        )
                    return True
                if kind == "error":
                    return self._handle_error(label, index, message)
                raise ProtocolError(
                    f"unexpected message {kind!r} from worker {label}"
                )
            return False
        finally:
            self._m_in_flight.set(0, worker=label)

    def _handle_error(self, label: str, index: int, message: dict) -> bool:
        """A worker reported an execution error: retry or fail the run."""
        attempt = self._attempts.get(index, 0) + 1
        self._attempts[index] = attempt
        if attempt > self.policy.max_retries:
            failure = ExperimentError(
                f"payload {index} failed on worker {label} after "
                f"{self.policy.max_retries} retries: {message.get('error')}"
            )
            with self._lock:
                if self._failure is None:
                    self._failure = failure
            return True
        _count(self.stats, "retries")
        delay = self.policy.delay(attempt, token=index)
        logger.warning(
            "dist: payload %d failed on worker %s (%s); retry %d/%d in %.3fs",
            index,
            label,
            message.get("error"),
            attempt,
            self.policy.max_retries,
            delay,
        )
        if delay > 0:
            time.sleep(delay)
        self._requeue(index)
        return True

    def _shutdown(self, connection: socket.socket) -> None:
        try:
            send_frame(connection, {"type": "shutdown"})
        except OSError:  # pragma: no cover - worker already gone
            pass


def run_distributed(
    payloads: Sequence[TrialPayload],
    executor: Union[str, ExecutorSpec],
    *,
    n_jobs: Optional[int] = 1,
    worker_timeout: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    on_result: Optional[Callable[[int, RunResult], None]] = None,
    stats: Optional[object] = None,
) -> List[RunResult]:
    """Execute payloads on a remote fleet, degrading locally as needed.

    The distributed rung of the executor ladder behind
    :func:`repro.sim.runner.execute_payloads`.  Whatever the fleet leaves
    unfinished — unreachable workers, a partition that empties the fleet
    mid-campaign — is executed through :func:`~repro.sim.parallel.
    map_ordered` (local process pool, then in-process serial), so the call
    always returns a complete, payload-ordered result list and the output is
    byte-identical to a serial run regardless of where each payload landed.
    """
    spec = executor if isinstance(executor, ExecutorSpec) else ExecutorSpec.parse(executor)
    coordinator = DistributedExecutor(spec, retry=retry, stats=stats)
    results, leftover = coordinator.run(payloads, on_result)
    if leftover:
        warnings.warn(
            f"distributed executor lost its worker fleet with {len(leftover)} "
            f"payloads unfinished; degrading to local execution "
            f"(n_jobs={n_jobs})",
            RuntimeWarning,
            stacklevel=2,
        )
        logger.warning(
            "dist: fleet exhausted; degrading %d payloads to local execution",
            len(leftover),
        )
        if stats is not None:
            stats.degraded_remote = True

        def local_hook(position: int, result: RunResult) -> None:
            if on_result is not None:
                on_result(leftover[position], result)

        local = map_ordered(
            _execute_trial,
            [payloads[index] for index in leftover],
            n_jobs,
            worker_timeout=worker_timeout,
            retry=retry,
            on_result=local_hook if on_result is not None else None,
            stats=stats,
        )
        for position, index in enumerate(leftover):
            results[index] = local[position]
    return results  # type: ignore[return-value]
