"""Distributed multi-host execution: lease-based dispatch over TCP.

The resilience layer (PR 6) made trial execution location-independent:
payloads are pure content — specs only, seeds derived from the trial index —
and results are content-keyed, self-verifying :class:`repro.resilience.
ResultStore` entries.  This package exploits that property to spread a
campaign over long-lived worker daemons on other hosts:

* :mod:`repro.dist.protocol` — the wire format: length-prefixed JSON frames,
  the payload/result codecs (every field is already a spec with a
  ``to_dict``/``from_dict`` pair), and :class:`ExecutorSpec`, the parsed form
  of an executor address string (``tcp://host:port,host:port?lease=30``);
* :mod:`repro.dist.worker` — the worker daemon (``repro worker --listen
  tcp://0.0.0.0:PORT``): accepts one coordinator at a time, executes leased
  payloads in a background thread while the connection thread keeps
  heartbeating, and reports results (or injected worker-level faults);
* :mod:`repro.dist.coordinator` — the lease-based scheduler behind
  ``repro.run(plan, executor=...)``: each payload is leased to one worker
  with a deadline, heartbeats renew the deadline, an expired lease (worker
  crash, hang or partition) requeues the payload for another worker, and
  duplicate completions from lease races resolve idempotently by content
  key.  When the whole fleet is lost the run *degrades* — remote fleet →
  local process pool → in-process serial — through the same
  :func:`repro.sim.parallel.map_ordered` seam the resilient executor already
  uses, so results are byte-identical wherever they are computed.
"""

from __future__ import annotations

from repro.dist.coordinator import DistributedExecutor, run_distributed
from repro.dist.protocol import (
    ExecutorSpec,
    payload_from_dict,
    payload_to_dict,
    recv_frame,
    send_frame,
)
from repro.dist.worker import WorkerServer, run_worker

__all__ = [
    "DistributedExecutor",
    "ExecutorSpec",
    "WorkerServer",
    "payload_from_dict",
    "payload_to_dict",
    "recv_frame",
    "run_distributed",
    "run_worker",
    "send_frame",
]
