"""The worker daemon of the distributed executor.

``repro worker --listen tcp://0.0.0.0:PORT`` runs one long-lived daemon that
serves one coordinator session at a time: it answers the protocol handshake,
executes leased payloads through the exact same
:func:`repro.sim.runner._execute_trial` body the process-pool workers run,
and keeps the lease alive by heartbeating while it computes.  Execution
happens on a background thread so the connection thread can keep its
heartbeat cadence however long a trial takes; all socket writes stay on the
connection thread, so frames never interleave.

Results are self-verifying: each ``result`` frame carries the payload's
content key (:func:`repro.resilience.store.payload_key`, recomputed here
from the payload the worker actually rebuilt) alongside the
:func:`~repro.resilience.store.result_to_dict` document.  The coordinator
recomputes the key from *its* copy of the payload before accepting, so a
protocol mixup — a result attached to the wrong lease, a worker rebuilding
a different payload than it was sent — is detected, never silently merged.

Worker-level fault injection (see :mod:`repro.resilience.faults`): payloads
may carry a :class:`~repro.resilience.FaultSpec` whose mode targets the
*daemon* rather than the trial — ``worker_crash`` kills the whole process,
``worker_hang`` stops the heartbeat past any lease timeout, and
``worker_partition`` drops the connection abruptly.  Trigger budgets live in
arm files exactly like the pool-level modes, so "kill one worker, then let
the retried payload complete" is deterministic across the daemon deaths it
causes.
"""

from __future__ import annotations

import logging
import os
import signal
import socket
import threading
import time
from typing import Optional

from repro.dist.framing import parse_listen_address  # noqa: F401 - re-export
from repro.dist.protocol import (
    PROTOCOL_VERSION,
    DEFAULT_HEARTBEAT_INTERVAL,
    ProtocolError,
    payload_from_dict,
    recv_frame,
    send_frame,
)
from repro.resilience.faults import WORKER_FAULT_MODES
from repro.resilience.store import payload_key, result_to_dict
from repro.sim.runner import _execute_trial, _shared_chunks_cache
from repro.telemetry.export import metrics_frame, start_metrics_server
from repro.telemetry.registry import MetricsRegistry, default_registry
from repro.telemetry.trace import Tracer, default_tracer, span_id

__all__ = ["WorkerServer", "parse_listen_address", "run_worker"]

logger = logging.getLogger("repro.dist")

#: How often the accept loop wakes up to check the stop flag (seconds).
_ACCEPT_POLL = 0.2


def _execute_in_thread(payload, box: dict, done: threading.Event) -> None:
    """Background execution body: fill ``box`` with the outcome, then signal."""
    try:
        box["result"] = _execute_trial(payload)
    except BaseException as error:  # noqa: BLE001 - reported to the coordinator
        box["error"] = error
    finally:
        done.set()


class _SessionClosed(Exception):
    """Internal: the current coordinator session must end (worker survives)."""


class WorkerServer:
    """A worker daemon: listens for a coordinator and serves leases.

    Usable as a long-running process (:func:`run_worker`, the ``repro
    worker`` CLI) or embedded in-process for tests (``start()``/``stop()``
    run the accept loop on a background thread).  ``port=0`` binds an
    ephemeral port; :attr:`address` reports the bound endpoint either way.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ProtocolError(
                f"heartbeat interval must be positive, got {heartbeat_interval}"
            )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self._listener.settimeout(_ACCEPT_POLL)
        self.host, self.port = self._listener.getsockname()[:2]
        #: Heartbeat cadence used when a lease frame doesn't carry its own
        #: (``repro worker --heartbeat``); coordinator-specified cadence wins.
        self.heartbeat_interval = float(heartbeat_interval)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Sessions served and payloads completed (introspected by tests).
        self.sessions = 0
        self.completed = 0
        self.metrics_registry = registry if registry is not None else default_registry()
        self.tracer = tracer if tracer is not None else default_tracer()
        reg = self.metrics_registry
        self._m_sessions = reg.counter(
            "repro_worker_sessions_total", "Coordinator sessions accepted."
        )
        self._m_leases = reg.counter(
            "repro_worker_leases_total", "Leases received for execution."
        )
        self._m_results = reg.counter(
            "repro_worker_results_total", "Lease results delivered."
        )
        self._m_errors = reg.counter(
            "repro_worker_errors_total", "Leases that raised during execution."
        )
        self._m_heartbeats = reg.counter(
            "repro_worker_heartbeats_total", "Heartbeat frames sent mid-lease."
        )
        self._m_lease_seconds = reg.histogram(
            "repro_worker_lease_seconds",
            "Wall time from lease receipt to result (or error) sent.",
        )

    @property
    def address(self) -> str:
        """The bound endpoint as an executor-address component."""
        return f"tcp://{self.host}:{self.port}"

    # ----------------------------------------------------------- lifecycle

    def serve_forever(self) -> None:
        """Accept coordinator sessions until :meth:`stop` is called."""
        try:
            while not self._stop.is_set():
                try:
                    connection, peer = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed under us (stop())
                self.sessions += 1
                self._m_sessions.inc()
                try:
                    self._serve_session(connection, peer)
                except _SessionClosed:
                    pass
                except (ConnectionError, socket.timeout, OSError) as error:
                    logger.info("worker %s: session ended (%s)", self.address, error)
                except ProtocolError as error:
                    logger.warning(
                        "worker %s: protocol violation (%s)", self.address, error
                    )
                finally:
                    try:
                        connection.close()
                    except OSError:
                        pass
                    _shared_chunks_cache.clear()
        finally:
            try:
                self._listener.close()
            except OSError:
                pass

    def start(self) -> "WorkerServer":
        """Run the accept loop on a daemon thread (test embedding)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name=f"repro-worker-{self.port}", daemon=True
        )
        self._thread.start()
        return self

    def request_stop(self) -> None:
        """Ask the daemon to drain: finish the in-flight lease, then exit.

        Safe to call from a signal handler: it only flips the stop flag and
        closes the listener.  The flag is observed between frames (the
        ``_recv`` poll) and between sessions (the accept loop) — never
        inside :meth:`_serve_lease` — so a payload that is mid-execution
        keeps heartbeating to completion and its ``result`` frame still
        reaches the coordinator before the session ends.
        """
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def stop(self) -> None:
        """Stop accepting and close the listener (idempotent)."""
        self.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -------------------------------------------------------- one session

    def _serve_session(self, connection: socket.socket, peer) -> None:
        """Serve one coordinator until shutdown, disconnect or stop()."""
        connection.settimeout(_ACCEPT_POLL)
        hello = self._recv(connection)
        if hello.get("type") != "hello" or hello.get("protocol") != PROTOCOL_VERSION:
            send_frame(
                connection,
                {"type": "error", "error": f"protocol mismatch: {hello!r}"},
            )
            raise ProtocolError(f"bad handshake from {peer}: {hello!r}")
        send_frame(
            connection,
            {"type": "welcome", "protocol": PROTOCOL_VERSION, "pid": os.getpid()},
        )
        logger.info("worker %s: coordinator %s connected", self.address, peer)
        while True:
            message = self._recv(connection)
            kind = message.get("type")
            if kind == "shutdown":
                raise _SessionClosed
            if kind == "metrics":
                send_frame(
                    connection,
                    metrics_frame(
                        self.metrics_registry,
                        self.tracer,
                        include_trace=bool(message.get("trace")),
                    ),
                )
                continue
            if kind != "lease":
                raise ProtocolError(f"unexpected message {kind!r} from {peer}")
            self._serve_lease(connection, message)

    def _recv(self, connection: socket.socket):
        """Receive one frame, waking periodically to honour stop()."""
        while True:
            if self._stop.is_set():
                raise _SessionClosed
            try:
                return recv_frame(connection)
            except socket.timeout:
                continue

    def _serve_lease(self, connection: socket.socket, message: dict) -> None:
        """Execute one leased payload, heartbeating until the result is out."""
        lease_id = message.get("lease_id")
        payload = payload_from_dict(message.get("payload"))
        heartbeat = float(message.get("heartbeat") or self.heartbeat_interval)
        self._maybe_inject_worker_fault(connection, payload)
        self._m_leases.inc()
        started = time.perf_counter()
        started_wall = time.time()
        key = payload_key(payload)
        box: dict = {}
        done = threading.Event()
        executor = threading.Thread(
            target=_execute_in_thread,
            args=(payload, box, done),
            name=f"repro-worker-exec-{lease_id}",
            daemon=True,
        )
        executor.start()
        while not done.wait(timeout=heartbeat):
            send_frame(connection, {"type": "heartbeat", "lease_id": lease_id})
            self._m_heartbeats.inc()
        if "error" in box:
            self._m_errors.inc()
            self._m_lease_seconds.observe(time.perf_counter() - started)
            send_frame(
                connection,
                {
                    "type": "error",
                    "lease_id": lease_id,
                    "error": repr(box["error"]),
                },
            )
            return
        result = box["result"]
        send_frame(
            connection,
            {
                "type": "result",
                "lease_id": lease_id,
                "key": key,
                "result": result_to_dict(result),
            },
        )
        self.completed += 1
        self._m_results.inc()
        duration = time.perf_counter() - started
        self._m_lease_seconds.observe(duration)
        self.tracer.record(
            "worker.lease",
            span_id("payload", key),
            start=started_wall,
            duration=duration,
            lease_id=lease_id,
            trial=payload.trial,
            algorithm=payload.algorithm_name,
        )

    def _maybe_inject_worker_fault(
        self, connection: socket.socket, payload
    ) -> None:
        """Fire a worker-level fault if the payload arms one with budget left.

        These modes target the daemon itself, so they are handled here — on
        the connection thread, before any execution starts — rather than in
        :func:`repro.resilience.faults.maybe_inject` (which runs them as
        no-ops, keeping local pool and serial re-execution clean).
        """
        fault = payload.fault
        if (
            fault is None
            or fault.mode not in WORKER_FAULT_MODES
            or payload.trial not in fault.trials
            or not fault._claim_trigger(payload.trial, payload.algorithm_name)
        ):
            return
        logger.warning(
            "worker %s: injected fault %r firing (trial %d, %s)",
            self.address,
            fault.mode,
            payload.trial,
            payload.algorithm_name,
        )
        if fault.mode == "worker_crash":
            os._exit(21)
        if fault.mode == "worker_hang":
            # sleep on the connection thread: heartbeats stop, the lease
            # expires coordinator-side, the payload is requeued elsewhere
            time.sleep(fault.hang_seconds)
            raise _SessionClosed
        # worker_partition: drop the connection abruptly (simulated netsplit)
        # but keep the daemon alive for a later session
        try:
            connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        raise _SessionClosed


def run_worker(
    listen: str,
    metrics: Optional[str] = None,
    heartbeat: float = DEFAULT_HEARTBEAT_INTERVAL,
) -> int:
    """Run one worker daemon until interrupted (the ``repro worker`` body).

    Prints the bound endpoint (``worker listening on tcp://host:port``) once
    the listener is up, so launch scripts can wait for readiness and recover
    the port when ``:0`` asked for an ephemeral one.  ``metrics``
    (``tcp://HOST:PORT``) mounts the Prometheus/JSON metrics endpoint;
    ``heartbeat`` sets the default cadence for leases that don't carry one.

    SIGTERM and SIGINT both drain rather than kill: the in-flight lease (if
    any) finishes executing and its result is delivered, then the daemon
    exits 0 printing ``worker drained``.  Coordinators therefore never see a
    lease expire just because the fleet was being rotated.
    """
    host, port = parse_listen_address(listen)
    server = WorkerServer(host, port, heartbeat_interval=heartbeat)
    endpoint = start_metrics_server(
        metrics, server.metrics_registry, server.tracer
    )
    if endpoint is not None:
        print(f"metrics listening on {endpoint.url}", flush=True)

    def _drain(signum: int, _frame: object) -> None:
        print(f"worker draining on {signal.Signals(signum).name}", flush=True)
        server.request_stop()

    # handlers go in before the readiness banner: a supervisor that signals
    # the moment it sees the banner must always hit the drain path
    previous = {
        sig: signal.signal(sig, _drain) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    print(f"worker listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.stop()
        if endpoint is not None:
            endpoint.stop()
    print(f"worker drained ({server.completed} leases completed)", flush=True)
    return 0
