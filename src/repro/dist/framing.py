"""Shared wire framing for every repro daemon (``dist`` and ``serve``).

Both long-lived daemons — the distributed-executor worker
(:mod:`repro.dist.worker`) and the live traffic endpoint
(:mod:`repro.serve.server`) — speak the same byte-level protocol: an 8-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON, one
message object per frame, every message a dict with a ``"type"`` key.  This
module is the single home of that framing so the two daemons cannot drift:
the blocking-socket codec used by ``dist`` and the asyncio codec used by
``serve`` share one encoder, one decoder, one length cap and one error
type.

The message-level conversations differ (lease-driven for ``dist``,
session-driven for ``serve``) and stay in their own packages; only the
bytes-on-the-wire layer lives here.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Dict, Tuple

from repro.exceptions import ExperimentError

__all__ = [
    "MAX_FRAME",
    "ProtocolError",
    "decode_frame_body",
    "encode_frame",
    "parse_listen_address",
    "read_frame",
    "recv_frame",
    "send_frame",
    "write_frame",
]

_LENGTH = struct.Struct(">Q")

#: Upper bound on a single frame (1 GiB) — a corrupted length prefix must
#: fail loudly instead of attempting a multi-exabyte allocation.
MAX_FRAME = 1 << 30


class ProtocolError(ExperimentError):
    """Raised when a peer violates a repro daemon wire protocol."""


# --------------------------------------------------------- shared envelope


def encode_frame(message: Dict[str, object]) -> bytes:
    """Serialise one message into its on-the-wire frame (length + JSON)."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return _LENGTH.pack(len(body)) + body


def decode_frame_body(body: bytes) -> Dict[str, object]:
    """Decode a frame body into a message, enforcing the envelope shape."""
    message = json.loads(body.decode("utf-8"))
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"not a protocol message: {message!r}")
    return message


def _check_length(length: int) -> int:
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds the {MAX_FRAME}-byte cap")
    return length


# ------------------------------------------------- blocking-socket codec


def send_frame(sock: socket.socket, message: Dict[str, object]) -> None:
    """Send one length-prefixed JSON frame."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Dict[str, object]:
    """Receive one frame; raises ``ConnectionError``/``socket.timeout``."""
    length = _check_length(_LENGTH.unpack(_recv_exact(sock, _LENGTH.size))[0])
    return decode_frame_body(_recv_exact(sock, length))


# ------------------------------------------------------------ asyncio codec


async def read_frame(reader: asyncio.StreamReader) -> Dict[str, object]:
    """Receive one frame from an asyncio stream.

    Raises ``asyncio.IncompleteReadError`` when the peer closes mid-frame
    (a clean EOF before any length byte surfaces the same way, with an
    empty partial read — callers treat it as disconnect).
    """
    header = await reader.readexactly(_LENGTH.size)
    length = _check_length(_LENGTH.unpack(header)[0])
    return decode_frame_body(await reader.readexactly(length))


async def write_frame(
    writer: asyncio.StreamWriter, message: Dict[str, object]
) -> None:
    """Send one frame on an asyncio stream and drain the transport."""
    writer.write(encode_frame(message))
    await writer.drain()


# --------------------------------------------------------- listen addresses


def parse_listen_address(address: str) -> Tuple[str, int]:
    """Parse a ``tcp://host:port`` listen address (single endpoint)."""
    prefix = "tcp://"
    if not isinstance(address, str) or not address.startswith(prefix):
        raise ExperimentError(
            f"daemon listen address must look like tcp://HOST:PORT, got {address!r}"
        )
    host, _, port = address[len(prefix) :].rpartition(":")
    if not host or not port.isdigit():
        raise ExperimentError(
            f"daemon listen address must look like tcp://HOST:PORT, got {address!r}"
        )
    return host, int(port)
