#!/usr/bin/env python3
"""Quickstart: build a self-adjusting tree, serve a workload, inspect the costs.

This example walks through the public API in the order a new user would meet
it:

1. generate a request sequence with controllable locality,
2. build the paper's algorithms on a tree of matching size,
3. serve the sequence and compare access / adjustment costs,
4. check the costs against the working-set lower bound.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    PAPER_ALGORITHMS,
    CombinedLocalityWorkload,
    make_algorithm,
    working_set_bound,
)
from repro.analysis.bounds import compute_lower_bounds, empirical_competitive_ratio
from repro.experiments.plotting import bar_chart
from repro.sim.results import ResultTable

N_NODES = 1_023  # a complete binary tree of depth 9
N_REQUESTS = 20_000


def main() -> None:
    # 1. A workload with both spatial (Zipf a = 1.6) and temporal (p = 0.6) locality.
    workload = CombinedLocalityWorkload(
        n_elements=N_NODES, zipf_exponent=1.6, repeat_probability=0.6, seed=1
    )
    sequence = workload.generate(N_REQUESTS)
    print(f"Generated {len(sequence)} requests over {N_NODES} elements.")
    print(f"Working-set lower bound: {working_set_bound(sequence):,.0f} cost units\n")

    # 2./3. Run every algorithm from the paper on the same sequence and the same
    # random initial placement (placement_seed) - exactly the evaluation setup.
    table = ResultTable(
        name="quickstart",
        columns=["algorithm", "access", "adjustment", "total", "vs_ws_bound"],
    )
    bounds = compute_lower_bounds(N_NODES, sequence)
    totals = {}
    for name in PAPER_ALGORITHMS:
        algorithm = make_algorithm(
            name, n_nodes=N_NODES, placement_seed=7, seed=11, keep_records=False
        )
        result = algorithm.run(sequence)
        totals[name] = result.average_total_cost
        table.add_row(
            algorithm=name,
            access=result.average_access_cost,
            adjustment=result.average_adjustment_cost,
            total=result.average_total_cost,
            vs_ws_bound=empirical_competitive_ratio(result, sequence, bounds),
        )

    print(table.format_text())
    print()
    print(bar_chart("average total cost per request", totals, unit=" cost/req"))
    print()
    best = min(totals, key=totals.get)
    print(f"Cheapest algorithm on this workload: {best} ({totals[best]:.2f} cost/request)")


if __name__ == "__main__":
    main()
