#!/usr/bin/env python3
"""Corpus pipeline: from raw text to Figure 6/7-style results.

Shows the full Q5 pipeline on the deterministic synthetic corpus (or on any
text files you pass on the command line, e.g. the real Canterbury-corpus books
if you have them):

1. slide a three-letter window over the text to obtain a request sequence,
2. place the sequence on the complexity map (temporal / non-temporal
   complexity, Figure 6),
3. run all six algorithms on the sequence and compare costs (Figure 7).

The synthetic pipeline is a shipped golden plan — without arguments this
script is equivalent to::

    repro run corpus

With file arguments it builds the same plan over file-backed ``corpus``
workload specs instead (such plans only run where the files exist, so they
are not shipped as goldens).

Run with::

    python examples/corpus_pipeline.py [book1.txt book2.txt ...]
"""

from __future__ import annotations

import sys

import repro
from repro.experiments import build_corpus_pipeline_plan
from repro.plans import load_golden_plan


def main(paths) -> None:
    if paths:
        plan = build_corpus_pipeline_plan(paths=paths)
    else:
        plan = load_golden_plan("corpus")
    tables = repro.run(plan)

    print("=== Figure 6: complexity map ===")
    print(tables["complexity_map"].format_text())
    print()

    print("=== Figure 7: algorithm costs per dataset ===")
    print(tables["corpus_costs"].format_text())
    print(
        "\nAs in the paper: Rotor-Push and Random-Push behave almost identically,"
        "\ntheir access cost approaches the static optimum's, and because the text"
        "\nhas only moderate locality the adjustment cost remains visible."
    )


if __name__ == "__main__":
    main(sys.argv[1:])
