#!/usr/bin/env python3
"""Corpus pipeline: from raw text to Figure 6/7-style results.

Shows the full Q5 pipeline on the deterministic synthetic corpus (or on any
text files you pass on the command line, e.g. the real Canterbury-corpus books
if you have them):

1. slide a three-letter window over the text to obtain a request sequence,
2. place the sequence on the complexity map (temporal / non-temporal
   complexity, Figure 6),
3. run all six algorithms on the sequence and compare costs (Figure 7).

Run with::

    python examples/corpus_pipeline.py [book1.txt book2.txt ...]
"""

from __future__ import annotations

import sys

from repro.algorithms import PAPER_ALGORITHMS
from repro.analysis.complexity_map import trace_complexity
from repro.analysis.entropy import locality_summary
from repro.sim.engine import simulate
from repro.sim.results import ResultTable
from repro.workloads.corpus import CorpusWorkload, synthetic_corpus_workloads

MAX_REQUESTS = 30_000  # cap per book so the example stays fast


def load_workloads(paths):
    if paths:
        return [CorpusWorkload.from_file(path) for path in paths]
    return synthetic_corpus_workloads(n_books=3, scale=0.15)


def main(paths) -> None:
    workloads = load_workloads(paths)

    print("=== Figure 6: complexity map ===")
    map_table = ResultTable(
        name="complexity_map",
        columns=["dataset", "requests", "distinct_triples", "temporal", "non_temporal", "entropy"],
    )
    for workload in workloads:
        sequence = workload.full_sequence()
        point = trace_complexity(sequence, universe_size=workload.n_distinct)
        stats = locality_summary(sequence)
        map_table.add_row(
            dataset=workload.title,
            requests=len(sequence),
            distinct_triples=workload.n_distinct,
            temporal=point.temporal_complexity,
            non_temporal=point.non_temporal_complexity,
            entropy=stats["entropy_bits"],
        )
    print(map_table.format_text())
    print()

    print("=== Figure 7: algorithm costs per dataset ===")
    cost_table = ResultTable(
        name="corpus_costs",
        columns=["dataset", "algorithm", "access", "adjustment", "total"],
    )
    for workload in workloads:
        sequence = workload.full_sequence()[:MAX_REQUESTS]
        for name in PAPER_ALGORITHMS:
            result = simulate(
                name,
                sequence,
                n_nodes=workload.n_elements,
                placement_seed=1,
                seed=2,
                keep_records=False,
            )
            cost_table.add_row(
                dataset=workload.title,
                algorithm=name,
                access=result.average_access_cost,
                adjustment=result.average_adjustment_cost,
                total=result.average_total_cost,
            )
    print(cost_table.format_text())
    print(
        "\nAs in the paper: Rotor-Push and Random-Push behave almost identically,"
        "\ntheir access cost approaches the static optimum's, and because the text"
        "\nhas only moderate locality the adjustment cost remains visible."
    )


if __name__ == "__main__":
    main(sys.argv[1:])
